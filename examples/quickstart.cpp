// Quickstart: the smallest complete Photon program.
//
// Two ranks register buffers, exchange descriptors out of band, and rank 0
// writes a message into rank 1's memory with put_with_completion. Rank 0
// learns its source buffer is reusable via the *local* id; rank 1 learns the
// data has landed via the *remote* id — no receive was ever posted.
//
//   $ ./quickstart
#include <cstdio>
#include <cstring>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"

using namespace photon;

int main() {
  fabric::FabricConfig fcfg;
  fcfg.nranks = 2;  // threads-as-ranks harness; wire model on by default
  runtime::Cluster cluster(fcfg);

  cluster.run([](runtime::Env& env) {
    // Collective construction: allocates/registers ledgers + eager rings and
    // exchanges their descriptors (the PMI step of the real library).
    core::Photon ph(env.nic, env.bootstrap, core::Config{});

    // Register an application buffer and publish it to all peers.
    char buf[256] = {};
    auto desc = ph.register_buffer(buf, sizeof(buf)).value();
    auto peers = ph.exchange_descriptors(desc);

    if (env.rank == 0) {
      std::snprintf(buf, sizeof(buf), "hello from rank 0 via RDMA");
      // One-sided write into rank 1's buffer. local_id=1: tells us when our
      // buffer is reusable. remote_id=2: tells rank 1 data has arrived.
      ph.put_with_completion(/*dst=*/1, core::local_slice(desc, 0, 64),
                             core::slice(peers[1], 0, 64),
                             /*local_id=*/1, /*remote_id=*/2);
      core::LocalComplete lc;
      ph.wait_local(lc);
      std::printf("[rank 0] local completion id=%llu (buffer reusable) at "
                  "t=%llu ns virtual\n",
                  static_cast<unsigned long long>(lc.id),
                  static_cast<unsigned long long>(ph.clock().now()));
    } else {
      // The target simply probes: no posted receive, no tag matching.
      core::ProbeEvent ev;
      ph.wait_event(ev);
      std::printf("[rank 1] remote completion id=%llu from rank %u: \"%s\" at "
                  "t=%llu ns virtual\n",
                  static_cast<unsigned long long>(ev.id), ev.peer, buf,
                  static_cast<unsigned long long>(ph.clock().now()));
    }

    // A zero-byte PWC works as a pure remote doorbell; use it as an ack.
    if (env.rank == 1) {
      ph.signal(0, /*remote_id=*/99);
    } else {
      core::ProbeEvent ev;
      ph.wait_event(ev);
      std::printf("[rank 0] doorbell id=%llu received\n",
                  static_cast<unsigned long long>(ev.id));
    }
    env.bootstrap.barrier(env.rank);
  });

  std::puts("quickstart: OK");
  return 0;
}
