// Halo exchange: the motivating stencil workload for one-sided RMA.
//
// A 2-D Jacobi heat iteration on a Px x Py rank grid. Each iteration, every
// rank writes its boundary rows/columns directly into its neighbors' ghost
// regions with put_with_completion — the classic "neighbor update without
// receiver involvement" pattern — then waits for the four matching remote
// ids before computing. Numerics are verified against a single-rank
// reference at the end.
//
//   $ ./halo_exchange [iters]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "coll/communicator.hpp"
#include "core/photon.hpp"
#include "runtime/cluster.hpp"

using namespace photon;

namespace {

constexpr std::uint32_t kPx = 2, kPy = 2;
constexpr std::size_t kNx = 32, kNy = 32;  // interior cells per rank

// Local grid with a one-cell ghost border: (kNx+2) x (kNy+2), row-major.
struct Grid {
  std::vector<double> cells;
  Grid() : cells((kNx + 2) * (kNy + 2), 0.0) {}
  double& at(std::size_t x, std::size_t y) { return cells[y * (kNx + 2) + x]; }
  double at(std::size_t x, std::size_t y) const {
    return cells[y * (kNx + 2) + x];
  }
};

double initial(std::size_t gx, std::size_t gy) {
  // A smooth bump plus a hot corner.
  const double fx = static_cast<double>(gx) / (kPx * kNx);
  const double fy = static_cast<double>(gy) / (kPy * kNy);
  return std::sin(3.1 * fx) * std::cos(2.7 * fy) + (gx < 4 && gy < 4 ? 5.0 : 0.0);
}

/// Serial reference: whole domain on one grid.
std::vector<double> reference(int iters) {
  const std::size_t W = kPx * kNx + 2, H = kPy * kNy + 2;
  std::vector<double> a(W * H, 0.0), b(W * H, 0.0);
  for (std::size_t y = 1; y + 1 < H; ++y)
    for (std::size_t x = 1; x + 1 < W; ++x)
      a[y * W + x] = initial(x - 1, y - 1);
  for (int it = 0; it < iters; ++it) {
    for (std::size_t y = 1; y + 1 < H; ++y)
      for (std::size_t x = 1; x + 1 < W; ++x)
        b[y * W + x] = 0.25 * (a[y * W + x - 1] + a[y * W + x + 1] +
                               a[(y - 1) * W + x] + a[(y + 1) * W + x]);
    std::swap(a, b);
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 50;

  fabric::FabricConfig fcfg;
  fcfg.nranks = kPx * kPy;
  runtime::Cluster cluster(fcfg);

  std::vector<double> max_err_per_rank(fcfg.nranks, 0.0);

  cluster.run([&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);

    const std::uint32_t cx = env.rank % kPx, cy = env.rank / kPx;
    Grid cur, nxt;
    for (std::size_t y = 1; y <= kNy; ++y)
      for (std::size_t x = 1; x <= kNx; ++x)
        cur.at(x, y) = initial(cx * kNx + x - 1, cy * kNy + y - 1);

    // Ghost staging: contiguous registered strips per direction — outgoing
    // boundary copies plus parity-double-buffered landing slots (a neighbor
    // may run one iteration ahead; even/odd iterations land in different
    // slots so an un-read strip is never overwritten).
    // Layout: [4 out][4 in (even iters)][4 in (odd iters)]
    const std::size_t strip = std::max(kNx, kNy);
    std::vector<double> halo(12 * strip, 0.0);
    auto hdesc = ph.register_buffer(halo.data(), halo.size() * sizeof(double))
                     .value();
    auto peers = ph.exchange_descriptors(hdesc);

    const std::uint32_t west = cx == 0 ? UINT32_MAX : env.rank - 1;
    const std::uint32_t east = cx == kPx - 1 ? UINT32_MAX : env.rank + 1;
    const std::uint32_t north = cy == 0 ? UINT32_MAX : env.rank - kPx;
    const std::uint32_t south = cy == kPy - 1 ? UINT32_MAX : env.rank + kPx;

    auto out_off = [&](int dir) { return dir * strip * sizeof(double); };
    auto in_off = [&](int dir, int it) {
      return (4 + 4 * (it & 1) + dir) * strip * sizeof(double);
    };
    enum { W, E, N, S };
    std::unordered_map<int, int> arrived;  // iteration -> strips seen

    comm.barrier();
    // A fast neighbor's first push may have raced the barrier and been
    // stashed by the communicator; reclaim those events.
    for (auto& ev : comm.take_foreign_events())
      ++arrived[static_cast<int>(ev.id >> 8)];

    for (int it = 0; it < iters; ++it) {
      // Pack boundaries into outgoing strips.
      for (std::size_t y = 1; y <= kNy; ++y) {
        halo[W * strip + y - 1] = cur.at(1, y);
        halo[E * strip + y - 1] = cur.at(kNx, y);
      }
      for (std::size_t x = 1; x <= kNx; ++x) {
        halo[N * strip + x - 1] = cur.at(x, 1);
        halo[S * strip + x - 1] = cur.at(x, kNy);
      }

      // One-sided pushes: my W strip lands in my west neighbor's E-in slot.
      struct Push {
        std::uint32_t nbr;
        int out_dir, in_dir;
      } pushes[] = {{west, W, E}, {east, E, W}, {north, N, S}, {south, S, N}};
      int expected = 0;
      for (const Push& p : pushes) {
        if (p.nbr == UINT32_MAX) continue;
        const std::uint64_t rid =
            (static_cast<std::uint64_t>(it) << 8) | p.in_dir;
        ph.put_with_completion(
            p.nbr,
            core::local_slice(hdesc, out_off(p.out_dir), strip * sizeof(double)),
            core::slice(peers[p.nbr], in_off(p.in_dir, it),
                        strip * sizeof(double)),
            std::nullopt, rid);
        ++expected;
      }
      // Wait for the neighbors' strips for *this* iteration (ids carry the
      // iteration); a fast neighbor may already deliver it+1 strips, which
      // are stashed for the next round.
      while (arrived[it] < expected) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev) != Status::Ok)
          throw std::runtime_error("halo wait failed");
        ++arrived[static_cast<int>(ev.id >> 8)];
      }
      arrived.erase(it);

      // Unpack ghosts.
      const std::size_t inb = (4 + 4 * (it & 1)) * strip;
      for (std::size_t y = 1; y <= kNy; ++y) {
        if (west != UINT32_MAX) cur.at(0, y) = halo[inb + W * strip + y - 1];
        if (east != UINT32_MAX)
          cur.at(kNx + 1, y) = halo[inb + E * strip + y - 1];
      }
      for (std::size_t x = 1; x <= kNx; ++x) {
        if (north != UINT32_MAX) cur.at(x, 0) = halo[inb + N * strip + x - 1];
        if (south != UINT32_MAX)
          cur.at(x, kNy + 1) = halo[inb + S * strip + x - 1];
      }

      // Jacobi sweep; charge the compute to virtual time (2 ns/cell-op).
      for (std::size_t y = 1; y <= kNy; ++y)
        for (std::size_t x = 1; x <= kNx; ++x)
          nxt.at(x, y) = 0.25 * (cur.at(x - 1, y) + cur.at(x + 1, y) +
                                 cur.at(x, y - 1) + cur.at(x, y + 1));
      env.clock().add(kNx * kNy * 2);
      std::swap(cur, nxt);
      // Neighbor-synchronized by the halo waits; no global barrier needed.
    }

    comm.barrier();

    // Verify against the serial reference.
    auto ref = reference(iters);
    const std::size_t W2 = kPx * kNx + 2;
    double max_err = 0.0;
    for (std::size_t y = 1; y <= kNy; ++y)
      for (std::size_t x = 1; x <= kNx; ++x) {
        const std::size_t gx = cx * kNx + x, gy = cy * kNy + y;
        max_err = std::max(max_err,
                           std::abs(cur.at(x, y) - ref[gy * W2 + gx]));
      }
    max_err_per_rank[env.rank] = max_err;
    std::printf("[rank %u] %d iters, max |err| vs serial = %.3e, vtime=%llu ns\n",
                env.rank, iters, max_err,
                static_cast<unsigned long long>(env.clock().now()));
    env.bootstrap.barrier(env.rank);
  });

  double worst = 0.0;
  for (double e : max_err_per_rank) worst = std::max(worst, e);
  if (worst > 1e-12) {
    std::printf("halo_exchange: FAILED (err=%.3e)\n", worst);
    return 1;
  }
  std::puts("halo_exchange: OK (bitwise-matching Jacobi across 4 ranks)");
  return 0;
}
