// Distributed BFS over the parcel runtime — the irregular graph workload
// that motivates message-driven runtimes (HPX-5, AM++) and, underneath
// them, RMA middleware.
//
// The graph is a deterministic synthetic small-world graph partitioned by
// vertex id. Each BFS wavefront travels as parcels: visiting a vertex
// spawns "relax" parcels at the owners of its neighbors. Termination uses
// a two-phase counting scheme on rank 0 (messages sent vs received —
// detected with remote fetch-adds, another RMA use). The result is checked
// against a serial BFS.
//
//   $ ./bfs_parcels [vertices]
#include <cstdio>
#include <cstring>
#include <queue>

#include "parcels/parcel_engine.hpp"
#include "runtime/cluster.hpp"
#include "util/rng.hpp"

using namespace photon;
using parcels::Context;
using parcels::HandlerId;
using parcels::HandlerRegistry;
using parcels::ParcelEngine;

namespace {

constexpr std::uint32_t kRanks = 4;

/// Deterministic graph: ring + seeded chords (small-world-ish).
std::vector<std::uint32_t> neighbors(std::uint32_t v, std::uint32_t n) {
  std::vector<std::uint32_t> out;
  out.push_back((v + 1) % n);
  out.push_back((v + n - 1) % n);
  util::SplitMix64 sm(v * 2654435761u + 7);
  for (int k = 0; k < 3; ++k) {
    const auto u = static_cast<std::uint32_t>(sm.next() % n);
    if (u != v) out.push_back(u);
  }
  return out;
}

std::vector<std::uint32_t> serial_bfs(std::uint32_t n, std::uint32_t src) {
  std::vector<std::uint32_t> dist(n, UINT32_MAX);
  std::queue<std::uint32_t> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const std::uint32_t v = q.front();
    q.pop();
    for (auto u : neighbors(v, n)) {
      if (dist[u] == UINT32_MAX) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

struct Relax {
  std::uint32_t vertex;
  std::uint32_t dist;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4000;
  const std::uint32_t src = 0;

  fabric::FabricConfig fcfg;
  fcfg.nranks = kRanks;
  runtime::Cluster cluster(fcfg);

  std::vector<std::vector<std::uint32_t>> dist_shards(kRanks);
  std::vector<std::uint64_t> vtimes(kRanks, 0);

  cluster.run([&](runtime::Env& env) {
    HandlerRegistry reg;
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    parcels::PhotonTransport tr(ph);
    ParcelEngine eng(tr, reg);

    auto owner = [&](std::uint32_t v) {
      return static_cast<fabric::Rank>(v % kRanks);
    };
    // Local distance table for owned vertices.
    std::vector<std::uint32_t>& dist = dist_shards[env.rank];
    dist.assign((n + kRanks - 1) / kRanks, UINT32_MAX);
    auto slot = [&](std::uint32_t v) { return v / kRanks; };

    // Global termination counters live on rank 0, updated via remote
    // fetch-add (sent on spawn, received on dispatch): BFS is quiescent
    // when sent == received and no handler is running.
    std::vector<std::uint64_t> counters(2, 0);  // [0]=sent, [1]=received
    auto cdesc = ph.register_buffer(counters.data(), 16).value();
    auto cpeers = ph.exchange_descriptors(cdesc);
    auto bump = [&](int which) {
      fabric::Completion c;
      while (env.nic.post_fetch_add(
                 0, {cpeers[0].addr + static_cast<std::uint64_t>(which) * 8,
                     cpeers[0].rkey},
                 1, 0) == Status::QueueFull) {
        (void)env.nic.poll_send(c);
      }
      // Consume the completion lazily; a small outstanding count is fine.
      (void)env.nic.poll_send(c);
    };

    bool stopped = false;
    HandlerId relax = 0;
    const HandlerId stop_h = reg.add([&](Context&) { stopped = true; });
    relax = reg.add([&](Context& ctx) {
      Relax r;
      std::memcpy(&r, ctx.args().data(), sizeof(r));
      if (dist[slot(r.vertex)] > r.dist) {
        dist[slot(r.vertex)] = r.dist;
        for (auto u : neighbors(r.vertex, n)) {
          Relax next{u, r.dist + 1};
          bump(0);
          ctx.spawn(owner(u), relax,
                    std::as_bytes(std::span<const Relax, 1>(&next, 1)));
        }
      }
      // Acknowledge receipt only after all children are accounted for:
      // sent == received then implies global quiescence (no mid-handler
      // window where the counters can transiently agree).
      bump(1);
    });

    env.bootstrap.barrier(env.rank);
    const std::uint64_t t0 = env.clock().now();

    if (owner(src) == env.rank) {
      Relax r{src, 0};
      bump(0);
      eng.send(owner(src), relax,
               std::as_bytes(std::span<const Relax, 1>(&r, 1)));
    }

    if (env.rank == 0) {
      // Quiescence: counters equal and stable across a settle window.
      auto sent = [&] {
        return std::atomic_ref<std::uint64_t>(counters[0])
            .load(std::memory_order_acquire);
      };
      auto recvd = [&] {
        return std::atomic_ref<std::uint64_t>(counters[1])
            .load(std::memory_order_acquire);
      };
      std::uint64_t stable = 0, last_sent = ~0ull;
      if (!eng.run_until([&] {
            const std::uint64_t s = sent();
            if (s != 0 && s == recvd() && s == last_sent) {
              if (++stable >= 3) return true;
            } else {
              stable = 0;
            }
            last_sent = s;
            return false;
          }))
        throw std::runtime_error("BFS did not quiesce");
      for (fabric::Rank d = 1; d < kRanks; ++d) eng.send(d, stop_h, {});
    } else {
      if (!eng.run_until([&] { return stopped; }))
        throw std::runtime_error("worker never stopped");
    }
    vtimes[env.rank] = env.clock().now() - t0;
    env.bootstrap.barrier(env.rank);
  });

  // Verify against serial BFS.
  auto ref = serial_bfs(n, src);
  std::uint64_t mismatches = 0;
  std::uint32_t reached = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t got = dist_shards[v % kRanks][v / kRanks];
    if (got != ref[v]) ++mismatches;
    if (got != UINT32_MAX) ++reached;
  }
  std::uint64_t vt = 0;
  for (auto t : vtimes) vt = std::max(vt, t);
  std::printf("bfs_parcels: %u vertices, %u reached, %llu mismatches, "
              "virtual time %.2f ms\n",
              n, reached, static_cast<unsigned long long>(mismatches),
              static_cast<double>(vt) / 1e6);
  if (mismatches != 0) {
    std::puts("bfs_parcels: FAILED");
    return 1;
  }
  std::puts("bfs_parcels: OK (distributed BFS matches serial reference)");
  return 0;
}
