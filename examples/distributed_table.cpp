// Distributed counter table over remote atomics (GUPS-flavoured).
//
// Every rank owns a shard of a global table of 64-bit counters. Ranks issue
// random fetch-add updates directly against remote shards (no request/reply
// message, no target CPU involvement) and CAS-claim "ownership" cells —
// exactly the irregular-access pattern the paper motivates RMA middleware
// with. The run cross-checks the global sum against the number of updates
// issued.
//
//   $ ./distributed_table [updates_per_rank]
#include <cstdio>
#include <vector>

#include "benchsupport/workloads.hpp"
#include "coll/communicator.hpp"
#include "core/photon.hpp"
#include "runtime/cluster.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::size_t updates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint32_t kSlots = 1024;  // counters per shard

  fabric::FabricConfig fcfg;
  fcfg.nranks = kRanks;
  runtime::Cluster cluster(fcfg);

  std::vector<std::uint64_t> claimed_by(kRanks, 0);

  cluster.run([&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);

    // The shard lives in registered memory; peers address it via rkey.
    std::vector<std::uint64_t> shard(kSlots, 0);
    auto desc =
        ph.register_buffer(shard.data(), shard.size() * sizeof(std::uint64_t))
            .value();
    auto shards = ph.exchange_descriptors(desc);

    comm.barrier();

    // Phase 1: random fetch-adds against the global table.
    auto stream = benchsupport::gups_stream(updates, kRanks, kSlots,
                                            /*seed=*/1000 + env.rank);
    std::size_t outstanding = 0;
    fabric::Completion c;
    for (const auto& u : stream) {
      const fabric::RemoteRef cell{
          shards[u.rank].addr + u.slot * sizeof(std::uint64_t),
          shards[u.rank].rkey};
      while (env.nic.post_fetch_add(u.rank, cell, 1, 0) ==
             Status::QueueFull) {
        if (env.nic.poll_send(c) == Status::Ok) --outstanding;
      }
      ++outstanding;
      // Keep a modest window so completions don't pile up.
      while (outstanding > 256) {
        if (env.nic.wait_send(c, 1'000'000'000ULL) != Status::Ok) break;
        --outstanding;
      }
    }
    while (outstanding > 0) {
      if (env.nic.wait_send(c, 1'000'000'000ULL) != Status::Ok)
        throw std::runtime_error("drain failed");
      --outstanding;
    }

    comm.barrier();

    // Verify: global sum of all shards == total updates issued.
    std::uint64_t local_sum = 0;
    for (auto v : shard) local_sum += v;
    const std::uint64_t global_sum =
        comm.allreduce_one(local_sum, coll::ReduceOp::kSum);
    if (global_sum != static_cast<std::uint64_t>(updates) * kRanks)
      throw std::runtime_error("update count mismatch");

    // Phase 2: CAS-claim cells on rank 0's shard; exactly one winner each.
    constexpr std::uint32_t kClaims = 64;
    std::uint64_t wins = 0;
    for (std::uint32_t i = 0; i < kClaims; ++i) {
      const fabric::RemoteRef cell{shards[0].addr + i * sizeof(std::uint64_t),
                                   shards[0].rkey};
      // Claim value: rank+1000 over whatever phase 1 left there — read it
      // first, then CAS from that exact value so losers see a mismatch.
      std::uint64_t seen = 0;
      {
        // A tiny helper read via remote get-with-completion.
        std::uint64_t tmp = 0;
        auto t = ph.register_buffer(&tmp, sizeof(tmp)).value();
        auto rq = ph.try_get_with_completion(
            0, core::local_mut_slice(t, 0, 8),
            core::RemoteSlice{cell.addr, 8, cell.rkey}, 1, std::nullopt);
        if (rq != Status::Ok) throw std::runtime_error("get failed");
        core::LocalComplete lc;
        if (ph.wait_local(lc) != Status::Ok)
          throw std::runtime_error("get wait failed");
        seen = tmp;
        ph.unregister_buffer(t);
      }
      if (seen >= 1000) continue;  // already claimed by a faster rank
      if (env.nic.post_compare_swap(0, cell, seen, 1000 + env.rank, 7) !=
          Status::Ok)
        throw std::runtime_error("cas post failed");
      if (env.nic.wait_send(c, 1'000'000'000ULL) != Status::Ok)
        throw std::runtime_error("cas wait failed");
      if (c.result == seen) ++wins;  // we swapped it
    }
    claimed_by[env.rank] = wins;

    comm.barrier();
    std::printf("[rank %u] issued %zu updates, won %llu claims, vtime=%llu ns\n",
                env.rank, updates, static_cast<unsigned long long>(wins),
                static_cast<unsigned long long>(env.clock().now()));
    env.bootstrap.barrier(env.rank);
  });

  std::uint64_t total_claims = 0;
  for (auto w : claimed_by) total_claims += w;
  std::printf("distributed_table: %llu/64 cells claimed exactly once\n",
              static_cast<unsigned long long>(total_claims));
  if (total_claims > 64) {
    std::puts("distributed_table: FAILED (double-claim)");
    return 1;
  }
  std::puts("distributed_table: OK");
  return 0;
}
