// Active-message (parcel) runtime integration — the paper's raison d'être.
//
// A miniature HPX-5-style scenario: rank 0 spawns a tree of "fib" tasks
// across the cluster; each task either computes at a leaf or spawns two
// children on neighboring ranks and folds their replies through
// continuations. The same program runs on BOTH transports (Photon PWC and
// the two-sided baseline) and reports virtual-time totals — the middleware
// swap a runtime system would make.
//
//   $ ./parcel_pingpong [n]
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "parcels/parcel_engine.hpp"
#include "runtime/cluster.hpp"

using namespace photon;
using parcels::Context;
using parcels::HandlerId;
using parcels::HandlerRegistry;
using parcels::ParcelEngine;

namespace {

struct FibArgs {
  std::uint64_t n;
  std::uint64_t home;   ///< rank awaiting the result
  std::uint64_t token;  ///< continuation slot on `home`
};

struct FibReply {
  std::uint64_t value;
  std::uint64_t token;
};

struct Continuation {
  int pending = 0;
  std::uint64_t sum = 0;
  bool is_root = false;
  std::uint64_t parent_home = 0;
  std::uint64_t parent_token = 0;
};

std::uint64_t fib_serial(std::uint64_t n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

/// Runs the distributed fib on every rank; returns the result on rank 0.
/// Handlers capture this frame, and the frame outlives all dispatching:
/// workers serve inside this function until rank 0's stop parcel arrives.
std::uint64_t fib_program(runtime::Env& env, ParcelEngine& eng,
                          HandlerRegistry& reg, std::uint64_t n) {
  std::unordered_map<std::uint64_t, Continuation> conts;
  std::uint64_t next_token = 1;
  std::uint64_t root_result = ~0ull;
  bool root_done = false;
  bool stopped = false;

  const HandlerId stop = reg.add([&](Context&) { stopped = true; });

  HandlerId fib = 0, reply = 0;
  reply = reg.add([&](Context& ctx) {
    FibReply r;
    std::memcpy(&r, ctx.args().data(), sizeof(r));
    Continuation& c = conts.at(r.token);
    c.sum += r.value;
    if (--c.pending == 0) {
      if (c.is_root) {
        root_result = c.sum;
        root_done = true;
      } else {
        FibReply up{c.sum, c.parent_token};
        ctx.spawn(static_cast<fabric::Rank>(c.parent_home), reply,
                  std::as_bytes(std::span(&up, 1)));
      }
      conts.erase(r.token);
    }
  });

  fib = reg.add([&](Context& ctx) {
    FibArgs a;
    std::memcpy(&a, ctx.args().data(), sizeof(a));
    if (a.n < 10) {  // sequential cutoff
      env.clock().add(50 * (a.n + 1));  // model leaf compute
      FibReply r{fib_serial(a.n), a.token};
      ctx.spawn(static_cast<fabric::Rank>(a.home), reply,
                std::as_bytes(std::span(&r, 1)));
      return;
    }
    const std::uint64_t token = next_token++;
    Continuation c;
    c.pending = 2;
    c.parent_home = a.home;
    c.parent_token = a.token;
    conts.emplace(token, c);
    FibArgs l{a.n - 1, ctx.rank(), token};
    FibArgs r{a.n - 2, ctx.rank(), token};
    ctx.spawn((ctx.rank() + 1) % ctx.size(), fib,
              std::as_bytes(std::span(&l, 1)));
    ctx.spawn((ctx.rank() + 2) % ctx.size(), fib,
              std::as_bytes(std::span(&r, 1)));
  });

  env.bootstrap.barrier(env.rank);

  if (env.rank == 0) {
    const std::uint64_t token = next_token++;
    Continuation root;
    root.pending = 2;
    root.is_root = true;
    conts.emplace(token, root);
    FibArgs l{n - 1, 0, token};
    FibArgs r{n - 2, 0, token};
    eng.send(1 % env.size, fib, std::as_bytes(std::span(&l, 1)));
    eng.send(2 % env.size, fib, std::as_bytes(std::span(&r, 1)));
    if (!eng.run_until([&] { return root_done; }))
      throw std::runtime_error("fib did not converge");
    for (fabric::Rank d = 1; d < env.size; ++d) eng.send(d, stop, {});
  } else {
    if (!eng.run_until([&] { return stopped; }))
      throw std::runtime_error("worker never saw stop");
  }
  env.bootstrap.barrier(env.rank);
  return root_result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const std::uint64_t expect = fib_serial(n);

  for (int use_photon = 1; use_photon >= 0; --use_photon) {
    fabric::FabricConfig fcfg;
    fcfg.nranks = 4;
    runtime::Cluster cluster(fcfg);
    std::uint64_t result = 0, vtime = 0, parcels_total = 0;
    std::mutex agg;

    cluster.run([&](runtime::Env& env) {
      HandlerRegistry reg;
      auto run = [&](ParcelEngine& eng) {
        const std::uint64_t r = fib_program(env, eng, reg, n);
        std::lock_guard<std::mutex> lock(agg);
        if (env.rank == 0) {
          result = r;
          vtime = env.clock().now();
        }
        parcels_total += eng.stats().dispatched;
      };
      if (use_photon) {
        core::Photon ph(env.nic, env.bootstrap, core::Config{});
        parcels::PhotonTransport tr(ph);
        ParcelEngine eng(tr, reg);
        run(eng);
      } else {
        msg::Engine me(env.nic, env.bootstrap, msg::Config{});
        parcels::MsgTransport tr(me);
        ParcelEngine eng(tr, reg);
        run(eng);
      }
    });

    std::printf(
        "[%s] fib(%llu) = %llu (expect %llu), %llu parcels — virtual time "
        "%llu ns\n",
        use_photon ? "photon   " : "two-sided",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(result),
        static_cast<unsigned long long>(expect),
        static_cast<unsigned long long>(parcels_total),
        static_cast<unsigned long long>(vtime));
    if (result != expect) {
      std::puts("parcel_pingpong: FAILED");
      return 1;
    }
  }
  std::puts("parcel_pingpong: OK");
  return 0;
}
