#!/usr/bin/env bash
# Lint gate for the Photon reproduction.
#
# Preferred mode: clang-tidy (config in .clang-tidy) over every library
# translation unit in src/, using a compile_commands.json build tree.
# Fallback mode (toolchain without clang-tidy, e.g. the g++-only CI image):
# a -Werror strict-warning GCC build of the whole tree, which keeps the
# "no warnings anywhere" invariant enforceable everywhere.
#
#   tools/run_lint.sh [build-dir]    # default: build-lint
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-lint}"

# Warning set for the fallback (and for clang-tidy's compile flags). These are
# the flags the library and test sources are required to be clean under.
strict_flags="-Werror -Wall -Wextra -Wpedantic -Wshadow -Wnon-virtual-dtor"
strict_flags+=" -Wcast-align -Woverloaded-virtual -Wunused -Wdouble-promotion"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== lint: clang-tidy mode =="
  cmake -B "$build" -S "$repo" -DPHOTON_CHECK=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t sources < <(find "$repo/src" -name '*.cpp' | sort)
  clang-tidy -p "$build" --quiet "${sources[@]}"
  echo "clang-tidy clean on ${#sources[@]} translation units"
else
  echo "== lint: strict-warning fallback (clang-tidy not installed) =="
  cmake -B "$build" -S "$repo" -DPHOTON_CHECK=ON \
    -DCMAKE_CXX_FLAGS="$strict_flags" >/dev/null
  cmake --build "$build" -j"$(nproc)" >/dev/null
  echo "strict-warning build clean ($strict_flags)"
fi
echo "lint passed"
