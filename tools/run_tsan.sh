#!/usr/bin/env bash
# Second ctest configuration: ThreadSanitizer pass over the progress-path
# concurrency tests (the completion queue's lock/atomic fast paths and the
# multi-threaded core stress suite). Uses its own build tree so the normal
# build stays sanitizer-free.
#
#   tools/run_tsan.sh [build-dir]    # default: build-tsan
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-tsan}"

cmake -B "$build" -S "$repo" -DPHOTON_SANITIZE=thread
cmake --build "$build" --target fabric_cq_test core_stress_test -j"$(nproc)"

# TSan's runtime aborts on the first data race (halt_on_error) so a race is
# a hard test failure, not a log line. tools/tsan.supp exempts the modeled
# RMA data-plane copies, which race by design.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$repo/tools/tsan.supp"
ctest --test-dir "$build" --output-on-failure -R 'CompletionQueueVt|PhotonStress' \
  || { echo "TSan configuration FAILED" >&2; exit 1; }
echo "TSan configuration passed"
