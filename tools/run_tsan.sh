#!/usr/bin/env bash
# Back-compat shim: the TSan pass is now one leg of the sanitizer matrix.
# See tools/run_sanitizers.sh for the full ASan/UBSan/TSan set.
set -euo pipefail
exec "$(cd "$(dirname "$0")" && pwd)/run_sanitizers.sh" thread
