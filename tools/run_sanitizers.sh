#!/usr/bin/env bash
# Sanitizer matrix: builds and tests the stack under ASan, UBSan, and TSan,
# one build tree per runtime (PHOTON_SANITIZE wires the flags in CMake).
#
# address/undefined run the full ctest suite with PHOTON_CHECK=ON, so the
# shadow-state checker itself is exercised under both runtimes. thread runs
# the progress-path concurrency suites (the rest of the test matrix is
# single-threaded-per-rank by construction and adds nothing but runtime);
# tools/tsan.supp exempts the modeled RMA data-plane copies, which race by
# design.
#
#   tools/run_sanitizers.sh [address] [undefined] [thread]   # default: all
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
legs=("$@")
[ ${#legs[@]} -eq 0 ] && legs=(address undefined thread)

fail=0
for leg in "${legs[@]}"; do
  build="$repo/build-$leg"
  echo "== sanitizer leg: $leg =="
  if ! cmake -B "$build" -S "$repo" -DPHOTON_SANITIZE="$leg" \
       -DPHOTON_CHECK=ON >/dev/null; then
    echo "LEG $leg FAILED (configure)"; fail=1; continue
  fi
  if ! cmake --build "$build" -j"$(nproc)" >/dev/null; then
    echo "LEG $leg FAILED (build)"; fail=1; continue
  fi
  filter=()
  case "$leg" in
    address)
      # The gtest/benchmark runtimes hold allocations to exit; only real
      # heap corruption should fail the leg.
      export ASAN_OPTIONS="detect_leaks=0:halt_on_error=1" ;;
    undefined)
      export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" ;;
    thread)
      export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$repo/tools/tsan.supp"
      filter=(-R 'CompletionQueueVt|PhotonStress|FaultInjector|LatencyHistogram|MetricsRegistry|TelemetryEndToEnd|RecoverySoak') ;;
  esac
  if ctest --test-dir "$build" --output-on-failure "${filter[@]}" >/dev/null 2>&1; then
    echo "LEG $leg PASSED"
  else
    echo "LEG $leg FAILED (ctest)"; fail=1
  fi
done

[ $fail -eq 0 ] && echo "sanitizer matrix passed"
exit $fail
