#!/usr/bin/env bash
# Full tier-2 CI matrix for the Photon reproduction. One line of PASS/FAIL
# per leg at the end; nonzero exit if any leg failed.
#
# Legs:
#   release   - default build (PHOTON_CHECK=OFF), full ctest suite
#   check     - PHOTON_CHECK=ON build (shadow-state sanitizer), full ctest
#   address   - ASan build + full ctest          (tools/run_sanitizers.sh)
#   undefined - UBSan build + full ctest         (tools/run_sanitizers.sh)
#   thread    - TSan build + concurrency suites  (tools/run_sanitizers.sh)
#   soak      - PHOTON_CHECK=ON build; msg/parcels/collective/stress suites
#               over a seeded lossy wire (1% loss, 0.5% corruption) so every
#               payload crosses the retransmission + CRC + dedup machinery
#               with the shadow-state sanitizer watching; then a link-flap
#               pass driving the recovery suites (scripted down/up outages,
#               epoch fencing, shrink/rejoin) under the same sanitizer
#   perf      - Release build; run every bench binary, collect BENCH_*.json,
#               gate the virtual-time metrics against the committed seed
#               baseline (bench/baselines) with tools/perf_gate.sh
#   lint      - clang-tidy or strict-warning GCC (tools/run_lint.sh)
#
#   tools/ci.sh [leg...]   # default: all legs
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
legs=("$@")
[ ${#legs[@]} -eq 0 ] && legs=(release check address undefined thread soak perf lint)

# Data-path suites exercised by the fault-injection soak. Deliberately
# excludes the fault/resilience unit tests, whose exact-count assertions
# assume a quiet wire underneath their scripted faults.
soak_suites='^[A-Za-z/]*(MsgEngine|MsgProperty|ParcelEngine|ParcelParity|ParcelProperty|TransportSweep|SizeThreshold|BodySizeSweep|Collectives|CollProperty|RankCountSweep|BcastSizeSweep|ReduceScatter|Scatter|PerPeerProbe|CreditSweep|PhotonStress)\.'

# Link-flap scenario: the recovery suites script their own down/up outage
# windows (Fabric::kill/revive) around mixed put/get/parcel traffic, so the
# reconnect/fence/resync path runs with the shadow-state sanitizer armed.
# Run on a quiet wire: their exact-count assertions (stale-epoch drops,
# recovery totals) assume the only faults are the scripted ones.
flap_suites='^[A-Za-z/]*(NicRecovery|CoreRecovery|CollShrinkRejoin|RecoverySoak|PeerHealthProperty)\.'

run_soak_leg() {
  local build="$repo/build-ci-soak"
  cmake -B "$build" -S "$repo" -DPHOTON_CHECK=ON >/dev/null &&
    cmake --build "$build" -j"$(nproc)" >/dev/null &&
    PHOTON_CHECK=1 PHOTON_WIRE_DROP=0.01 PHOTON_WIRE_CORRUPT=0.005 \
      PHOTON_WIRE_SEED=0xC1 \
      ctest --test-dir "$build" -R "$soak_suites" \
        -E 'VirtualTimeGrowsLogarithmically' \
        --output-on-failure >/dev/null 2>&1 &&
    PHOTON_CHECK=1 \
      ctest --test-dir "$build" -R "$flap_suites" \
        --output-on-failure >/dev/null 2>&1
  # The excluded test asserts the clean-wire LogGP timing curve, which
  # retransmission backoff legitimately perturbs; everything else (data
  # integrity, protocol state, checker) must hold under loss.
}

run_perf_leg() {
  local build="$repo/build-ci-perf"
  local out="$build/bench-reports"
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null &&
    cmake --build "$build" -j"$(nproc)" >/dev/null || return 1
  rm -rf "$out" && mkdir -p "$out"
  local b
  for b in "$build"/bench/bench_*; do
    [ -x "$b" ] || continue
    PHOTON_BENCH_DIR="$out" "$b" >/dev/null 2>&1 ||
      { echo "perf: $(basename "$b") exited nonzero" >&2; return 1; }
  done
  # All gated metrics are virtual-time quantities (deterministic per build),
  # so the default tight tolerance applies.
  "$repo/tools/perf_gate.sh" "$repo/bench/baselines" "$out"
}

declare -A result

run_ctest_leg() {  # name, extra cmake flags...
  local name="$1"; shift
  local build="$repo/build-ci-$name"
  cmake -B "$build" -S "$repo" "$@" >/dev/null &&
    cmake --build "$build" -j"$(nproc)" >/dev/null &&
    ctest --test-dir "$build" --output-on-failure >/dev/null 2>&1
}

for leg in "${legs[@]}"; do
  echo "== ci leg: $leg =="
  case "$leg" in
    release)   run_ctest_leg release -DPHOTON_CHECK=OFF ;;
    check)     run_ctest_leg check -DPHOTON_CHECK=ON ;;
    address|undefined|thread)
               "$repo/tools/run_sanitizers.sh" "$leg" ;;
    soak)      run_soak_leg ;;
    perf)      run_perf_leg ;;
    lint)      "$repo/tools/run_lint.sh" ;;
    *)         echo "unknown leg: $leg" >&2; false ;;
  esac
  result[$leg]=$?
done

echo
fail=0
for leg in "${legs[@]}"; do
  if [ "${result[$leg]}" -eq 0 ]; then
    echo "CI $leg: PASS"
  else
    echo "CI $leg: FAIL"; fail=1
  fi
done
exit $fail
