#!/usr/bin/env bash
# Full tier-2 CI matrix for the Photon reproduction. One line of PASS/FAIL
# per leg at the end; nonzero exit if any leg failed.
#
# Legs:
#   release   - default build (PHOTON_CHECK=OFF), full ctest suite
#   check     - PHOTON_CHECK=ON build (shadow-state sanitizer), full ctest
#   address   - ASan build + full ctest          (tools/run_sanitizers.sh)
#   undefined - UBSan build + full ctest         (tools/run_sanitizers.sh)
#   thread    - TSan build + concurrency suites  (tools/run_sanitizers.sh)
#   lint      - clang-tidy or strict-warning GCC (tools/run_lint.sh)
#
#   tools/ci.sh [leg...]   # default: all legs
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
legs=("$@")
[ ${#legs[@]} -eq 0 ] && legs=(release check address undefined thread lint)

declare -A result

run_ctest_leg() {  # name, extra cmake flags...
  local name="$1"; shift
  local build="$repo/build-ci-$name"
  cmake -B "$build" -S "$repo" "$@" >/dev/null &&
    cmake --build "$build" -j"$(nproc)" >/dev/null &&
    ctest --test-dir "$build" --output-on-failure >/dev/null 2>&1
}

for leg in "${legs[@]}"; do
  echo "== ci leg: $leg =="
  case "$leg" in
    release)   run_ctest_leg release -DPHOTON_CHECK=OFF ;;
    check)     run_ctest_leg check -DPHOTON_CHECK=ON ;;
    address|undefined|thread)
               "$repo/tools/run_sanitizers.sh" "$leg" ;;
    lint)      "$repo/tools/run_lint.sh" ;;
    *)         echo "unknown leg: $leg" >&2; false ;;
  esac
  result[$leg]=$?
done

echo
fail=0
for leg in "${legs[@]}"; do
  if [ "${result[$leg]}" -eq 0 ]; then
    echo "CI $leg: PASS"
  else
    echo "CI $leg: FAIL"; fail=1
  fi
done
exit $fail
