#!/usr/bin/env bash
# Machine-readable perf-regression gate over BENCH_*.json reports.
#
#   tools/perf_gate.sh BASELINE_DIR CANDIDATE_DIR
#
# Both directories hold BENCH_<name>.json files written by the bench
# binaries (src/benchsupport/report.hpp). For every bench present in the
# baseline the gate diffs a fixed set of metrics against per-metric,
# direction-aware thresholds:
#
#   ops_per_sec          higher is better; FAIL below  (1 - TOL)
#   vlat.*.p50/p99/p999  lower  is better; FAIL above  (1 + TOL)
#   vlat.*.count, ops    exact op counts: FAIL on any drift (determinism)
#   resilience.*         exact totals:    FAIL on any drift — except the
#                        recovery counters (recoveries, stale_epoch_drops),
#                        which depend on scripted outage schedules rather
#                        than the steady-state data path: reported, never
#                        gated
#   metrics.wall_*       wall-clock host cost: reported, never gated
#
# A report with "deterministic": false (bench declared a real-concurrency
# retry loop) has its exact-match metrics gated with TOL instead.
#
# All gated values are *virtual-time* quantities, deterministic for a given
# build, so TOL defaults tight (2%). Override with PERF_GATE_TOL=0.05 etc.
# Prints one PASS/FAIL/INFO line per metric; exit 1 if anything FAILed.
set -uo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 BASELINE_DIR CANDIDATE_DIR" >&2
  exit 2
fi

base_dir="$1" cand_dir="$2" tol="${PERF_GATE_TOL:-0.02}"

exec python3 - "$base_dir" "$cand_dir" "$tol" <<'PYEOF'
import glob, json, os, sys

base_dir, cand_dir, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        return json.load(f)

def flat(report):
    """Metric name -> value, for the gated/reported subset."""
    out = {"ops_per_sec": report.get("ops_per_sec", 0.0),
           "ops": report.get("ops", 0)}
    for side in ("local", "remote"):
        h = report.get("vlat", {}).get(side, {})
        for k in ("count", "p50_ns", "p99_ns", "p999_ns"):
            out[f"vlat.{side}.{k}"] = h.get(k, 0)
    for k, v in report.get("resilience", {}).items():
        out[f"resilience.{k}"] = v
    for k, v in report.get("metrics", {}).items():
        out[f"metrics.{k}"] = v
    return out

fails = 0
rows = []

# Scripted-outage dependent totals: tracked in every report so a recovery
# regression is visible in CI logs, but never gated (benches run healthy
# fabrics, so drift here means a harness change, not a perf change).
REPORT_ONLY = {"resilience.recoveries", "resilience.stale_epoch_drops"}

def emit(status, bench, metric, base, cand, note=""):
    global fails
    if status == "FAIL":
        fails += 1
    rows.append((status, bench, metric, base, cand, note))

baselines = sorted(glob.glob(os.path.join(base_dir, "BENCH_*.json")))
if not baselines:
    print(f"perf_gate: no BENCH_*.json in {base_dir}", file=sys.stderr)
    sys.exit(2)

for bpath in baselines:
    name = os.path.basename(bpath)
    bench = name[len("BENCH_"):-len(".json")]
    cpath = os.path.join(cand_dir, name)
    if not os.path.exists(cpath):
        emit("FAIL", bench, "(report)", "present", "missing")
        continue
    braw, craw = load(bpath), load(cpath)
    exact = braw.get("deterministic", True) and craw.get("deterministic", True)
    b, c = flat(braw), flat(craw)
    for metric in sorted(set(b) | set(c)):
        bv, cv = b.get(metric), c.get(metric)
        if metric in REPORT_ONLY:
            emit("INFO", bench, metric,
                 "-" if bv is None else bv, "-" if cv is None else cv,
                 "recovery totals, report only")
            continue
        if bv is None or cv is None:
            emit("FAIL", bench, metric,
                 "-" if bv is None else bv, "-" if cv is None else cv,
                 "metric missing on one side")
            continue
        if metric.startswith("metrics.wall_"):
            emit("INFO", bench, metric, bv, cv, "wall clock, not gated")
        elif metric == "ops_per_sec":
            if bv > 0 and cv < bv * (1 - tol):
                emit("FAIL", bench, metric, bv, cv,
                     f"below baseline by >{tol:.0%}")
            else:
                emit("PASS", bench, metric, bv, cv)
        elif metric.startswith("vlat.") and metric.endswith(
                ("p50_ns", "p99_ns", "p999_ns")):
            if cv > bv * (1 + tol) and cv - bv > 1:
                emit("FAIL", bench, metric, bv, cv,
                     f"above baseline by >{tol:.0%}")
            else:
                emit("PASS", bench, metric, bv, cv)
        else:  # exact: ops, vlat counts, resilience totals, other metrics
            if exact:
                if bv != cv:
                    emit("FAIL", bench, metric, bv, cv, "exact-match drift")
                else:
                    emit("PASS", bench, metric, bv, cv)
            else:  # bench declared nondeterministic op counts
                if abs(cv - bv) > tol * max(abs(bv), abs(cv)):
                    emit("FAIL", bench, metric, bv, cv,
                         f"drift >{tol:.0%} (nondet bench)")
                else:
                    emit("PASS", bench, metric, bv, cv)

def fmt(v):
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)

wb = max((len(r[1]) for r in rows), default=5)
wm = max((len(r[2]) for r in rows), default=6)
for status, bench, metric, base, cand, note in rows:
    line = (f"{status:4s} {bench:<{wb}s} {metric:<{wm}s} "
            f"base={fmt(base):>12s} cand={fmt(cand):>12s}")
    if note:
        line += f"  ({note})"
    print(line)

n_pass = sum(1 for r in rows if r[0] == "PASS")
n_info = sum(1 for r in rows if r[0] == "INFO")
print(f"\nperf_gate: {n_pass} pass, {fails} fail, {n_info} info "
      f"(tol={tol:.0%}, {len(baselines)} benches)")
sys.exit(1 if fails else 0)
PYEOF
