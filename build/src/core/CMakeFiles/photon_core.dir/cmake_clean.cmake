file(REMOVE_RECURSE
  "CMakeFiles/photon_core.dir/photon.cpp.o"
  "CMakeFiles/photon_core.dir/photon.cpp.o.d"
  "libphoton_core.a"
  "libphoton_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
