file(REMOVE_RECURSE
  "CMakeFiles/photon_util.dir/histogram.cpp.o"
  "CMakeFiles/photon_util.dir/histogram.cpp.o.d"
  "CMakeFiles/photon_util.dir/log.cpp.o"
  "CMakeFiles/photon_util.dir/log.cpp.o.d"
  "CMakeFiles/photon_util.dir/status.cpp.o"
  "CMakeFiles/photon_util.dir/status.cpp.o.d"
  "CMakeFiles/photon_util.dir/timing.cpp.o"
  "CMakeFiles/photon_util.dir/timing.cpp.o.d"
  "CMakeFiles/photon_util.dir/trace.cpp.o"
  "CMakeFiles/photon_util.dir/trace.cpp.o.d"
  "libphoton_util.a"
  "libphoton_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
