file(REMOVE_RECURSE
  "CMakeFiles/photon_msg.dir/engine.cpp.o"
  "CMakeFiles/photon_msg.dir/engine.cpp.o.d"
  "libphoton_msg.a"
  "libphoton_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
