file(REMOVE_RECURSE
  "libphoton_msg.a"
)
