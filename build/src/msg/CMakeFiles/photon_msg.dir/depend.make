# Empty dependencies file for photon_msg.
# This may be replaced when dependencies are built.
