file(REMOVE_RECURSE
  "libphoton_coll.a"
)
