# Empty dependencies file for photon_coll.
# This may be replaced when dependencies are built.
