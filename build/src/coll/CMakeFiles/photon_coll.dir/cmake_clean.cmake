file(REMOVE_RECURSE
  "CMakeFiles/photon_coll.dir/communicator.cpp.o"
  "CMakeFiles/photon_coll.dir/communicator.cpp.o.d"
  "libphoton_coll.a"
  "libphoton_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
