# Empty compiler generated dependencies file for photon_fabric.
# This may be replaced when dependencies are built.
