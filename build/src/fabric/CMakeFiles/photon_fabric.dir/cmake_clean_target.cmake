file(REMOVE_RECURSE
  "libphoton_fabric.a"
)
