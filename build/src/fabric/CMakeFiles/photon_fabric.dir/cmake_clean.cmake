file(REMOVE_RECURSE
  "CMakeFiles/photon_fabric.dir/completion_queue.cpp.o"
  "CMakeFiles/photon_fabric.dir/completion_queue.cpp.o.d"
  "CMakeFiles/photon_fabric.dir/fabric.cpp.o"
  "CMakeFiles/photon_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/photon_fabric.dir/nic.cpp.o"
  "CMakeFiles/photon_fabric.dir/nic.cpp.o.d"
  "CMakeFiles/photon_fabric.dir/registry.cpp.o"
  "CMakeFiles/photon_fabric.dir/registry.cpp.o.d"
  "CMakeFiles/photon_fabric.dir/wire_model.cpp.o"
  "CMakeFiles/photon_fabric.dir/wire_model.cpp.o.d"
  "libphoton_fabric.a"
  "libphoton_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
