
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/completion_queue.cpp" "src/fabric/CMakeFiles/photon_fabric.dir/completion_queue.cpp.o" "gcc" "src/fabric/CMakeFiles/photon_fabric.dir/completion_queue.cpp.o.d"
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/photon_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/photon_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/nic.cpp" "src/fabric/CMakeFiles/photon_fabric.dir/nic.cpp.o" "gcc" "src/fabric/CMakeFiles/photon_fabric.dir/nic.cpp.o.d"
  "/root/repo/src/fabric/registry.cpp" "src/fabric/CMakeFiles/photon_fabric.dir/registry.cpp.o" "gcc" "src/fabric/CMakeFiles/photon_fabric.dir/registry.cpp.o.d"
  "/root/repo/src/fabric/wire_model.cpp" "src/fabric/CMakeFiles/photon_fabric.dir/wire_model.cpp.o" "gcc" "src/fabric/CMakeFiles/photon_fabric.dir/wire_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/photon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
