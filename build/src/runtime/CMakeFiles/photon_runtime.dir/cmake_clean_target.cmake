file(REMOVE_RECURSE
  "libphoton_runtime.a"
)
