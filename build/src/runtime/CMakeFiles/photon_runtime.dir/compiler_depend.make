# Empty compiler generated dependencies file for photon_runtime.
# This may be replaced when dependencies are built.
