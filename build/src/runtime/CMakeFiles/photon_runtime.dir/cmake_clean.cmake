file(REMOVE_RECURSE
  "CMakeFiles/photon_runtime.dir/bootstrap.cpp.o"
  "CMakeFiles/photon_runtime.dir/bootstrap.cpp.o.d"
  "CMakeFiles/photon_runtime.dir/cluster.cpp.o"
  "CMakeFiles/photon_runtime.dir/cluster.cpp.o.d"
  "libphoton_runtime.a"
  "libphoton_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
