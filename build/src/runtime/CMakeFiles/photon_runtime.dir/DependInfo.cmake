
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bootstrap.cpp" "src/runtime/CMakeFiles/photon_runtime.dir/bootstrap.cpp.o" "gcc" "src/runtime/CMakeFiles/photon_runtime.dir/bootstrap.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/photon_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/photon_runtime.dir/cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/photon_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
