# Empty dependencies file for photon_benchsupport.
# This may be replaced when dependencies are built.
