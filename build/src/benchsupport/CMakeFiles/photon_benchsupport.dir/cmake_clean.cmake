file(REMOVE_RECURSE
  "CMakeFiles/photon_benchsupport.dir/table.cpp.o"
  "CMakeFiles/photon_benchsupport.dir/table.cpp.o.d"
  "libphoton_benchsupport.a"
  "libphoton_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
