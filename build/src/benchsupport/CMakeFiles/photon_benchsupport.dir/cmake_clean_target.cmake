file(REMOVE_RECURSE
  "libphoton_benchsupport.a"
)
