# CMake generated Testfile for 
# Source directory: /root/repo/src/parcels
# Build directory: /root/repo/build/src/parcels
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
