file(REMOVE_RECURSE
  "libphoton_parcels.a"
)
