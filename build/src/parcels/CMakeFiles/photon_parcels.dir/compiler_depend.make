# Empty compiler generated dependencies file for photon_parcels.
# This may be replaced when dependencies are built.
