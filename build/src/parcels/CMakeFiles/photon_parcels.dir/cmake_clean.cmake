file(REMOVE_RECURSE
  "CMakeFiles/photon_parcels.dir/parcel_engine.cpp.o"
  "CMakeFiles/photon_parcels.dir/parcel_engine.cpp.o.d"
  "CMakeFiles/photon_parcels.dir/transport.cpp.o"
  "CMakeFiles/photon_parcels.dir/transport.cpp.o.d"
  "libphoton_parcels.a"
  "libphoton_parcels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_parcels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
