file(REMOVE_RECURSE
  "CMakeFiles/bench_parcels.dir/bench_parcels.cpp.o"
  "CMakeFiles/bench_parcels.dir/bench_parcels.cpp.o.d"
  "bench_parcels"
  "bench_parcels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parcels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
