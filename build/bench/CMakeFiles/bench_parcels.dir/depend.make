# Empty dependencies file for bench_parcels.
# This may be replaced when dependencies are built.
