file(REMOVE_RECURSE
  "CMakeFiles/bench_ledger.dir/bench_ledger.cpp.o"
  "CMakeFiles/bench_ledger.dir/bench_ledger.cpp.o.d"
  "bench_ledger"
  "bench_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
