file(REMOVE_RECURSE
  "CMakeFiles/bench_halo_app.dir/bench_halo_app.cpp.o"
  "CMakeFiles/bench_halo_app.dir/bench_halo_app.cpp.o.d"
  "bench_halo_app"
  "bench_halo_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halo_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
