# Empty dependencies file for bench_halo_app.
# This may be replaced when dependencies are built.
