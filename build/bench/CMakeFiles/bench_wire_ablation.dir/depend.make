# Empty dependencies file for bench_wire_ablation.
# This may be replaced when dependencies are built.
