file(REMOVE_RECURSE
  "CMakeFiles/bench_msgrate.dir/bench_msgrate.cpp.o"
  "CMakeFiles/bench_msgrate.dir/bench_msgrate.cpp.o.d"
  "bench_msgrate"
  "bench_msgrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msgrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
