file(REMOVE_RECURSE
  "CMakeFiles/bench_bcast_ablation.dir/bench_bcast_ablation.cpp.o"
  "CMakeFiles/bench_bcast_ablation.dir/bench_bcast_ablation.cpp.o.d"
  "bench_bcast_ablation"
  "bench_bcast_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bcast_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
