# Empty dependencies file for bench_bcast_ablation.
# This may be replaced when dependencies are built.
