file(REMOVE_RECURSE
  "CMakeFiles/wire_invariants_test.dir/wire_invariants_test.cpp.o"
  "CMakeFiles/wire_invariants_test.dir/wire_invariants_test.cpp.o.d"
  "wire_invariants_test"
  "wire_invariants_test.pdb"
  "wire_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
