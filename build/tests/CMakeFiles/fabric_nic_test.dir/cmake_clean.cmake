file(REMOVE_RECURSE
  "CMakeFiles/fabric_nic_test.dir/fabric_nic_test.cpp.o"
  "CMakeFiles/fabric_nic_test.dir/fabric_nic_test.cpp.o.d"
  "fabric_nic_test"
  "fabric_nic_test.pdb"
  "fabric_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
