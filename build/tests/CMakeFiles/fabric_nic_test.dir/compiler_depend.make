# Empty compiler generated dependencies file for fabric_nic_test.
# This may be replaced when dependencies are built.
