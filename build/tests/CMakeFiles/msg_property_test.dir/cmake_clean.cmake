file(REMOVE_RECURSE
  "CMakeFiles/msg_property_test.dir/msg_property_test.cpp.o"
  "CMakeFiles/msg_property_test.dir/msg_property_test.cpp.o.d"
  "msg_property_test"
  "msg_property_test.pdb"
  "msg_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
