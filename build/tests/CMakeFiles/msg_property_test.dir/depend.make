# Empty dependencies file for msg_property_test.
# This may be replaced when dependencies are built.
