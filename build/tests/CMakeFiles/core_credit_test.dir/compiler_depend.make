# Empty compiler generated dependencies file for core_credit_test.
# This may be replaced when dependencies are built.
