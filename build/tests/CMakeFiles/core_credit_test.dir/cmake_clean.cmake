file(REMOVE_RECURSE
  "CMakeFiles/core_credit_test.dir/core_credit_test.cpp.o"
  "CMakeFiles/core_credit_test.dir/core_credit_test.cpp.o.d"
  "core_credit_test"
  "core_credit_test.pdb"
  "core_credit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_credit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
