# Empty dependencies file for fabric_wire_model_test.
# This may be replaced when dependencies are built.
