file(REMOVE_RECURSE
  "CMakeFiles/fabric_wire_model_test.dir/fabric_wire_model_test.cpp.o"
  "CMakeFiles/fabric_wire_model_test.dir/fabric_wire_model_test.cpp.o.d"
  "fabric_wire_model_test"
  "fabric_wire_model_test.pdb"
  "fabric_wire_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_wire_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
