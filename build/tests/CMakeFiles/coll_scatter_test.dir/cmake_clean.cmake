file(REMOVE_RECURSE
  "CMakeFiles/coll_scatter_test.dir/coll_scatter_test.cpp.o"
  "CMakeFiles/coll_scatter_test.dir/coll_scatter_test.cpp.o.d"
  "coll_scatter_test"
  "coll_scatter_test.pdb"
  "coll_scatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_scatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
