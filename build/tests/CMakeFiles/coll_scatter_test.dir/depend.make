# Empty dependencies file for coll_scatter_test.
# This may be replaced when dependencies are built.
