# Empty compiler generated dependencies file for parcels_test.
# This may be replaced when dependencies are built.
