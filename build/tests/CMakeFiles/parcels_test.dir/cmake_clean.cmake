file(REMOVE_RECURSE
  "CMakeFiles/parcels_test.dir/parcels_test.cpp.o"
  "CMakeFiles/parcels_test.dir/parcels_test.cpp.o.d"
  "parcels_test"
  "parcels_test.pdb"
  "parcels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
