file(REMOVE_RECURSE
  "CMakeFiles/vtime_test.dir/vtime_test.cpp.o"
  "CMakeFiles/vtime_test.dir/vtime_test.cpp.o.d"
  "vtime_test"
  "vtime_test.pdb"
  "vtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
