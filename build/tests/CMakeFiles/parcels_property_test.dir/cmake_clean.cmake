file(REMOVE_RECURSE
  "CMakeFiles/parcels_property_test.dir/parcels_property_test.cpp.o"
  "CMakeFiles/parcels_property_test.dir/parcels_property_test.cpp.o.d"
  "parcels_property_test"
  "parcels_property_test.pdb"
  "parcels_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcels_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
