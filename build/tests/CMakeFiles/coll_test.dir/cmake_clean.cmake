file(REMOVE_RECURSE
  "CMakeFiles/coll_test.dir/coll_test.cpp.o"
  "CMakeFiles/coll_test.dir/coll_test.cpp.o.d"
  "coll_test"
  "coll_test.pdb"
  "coll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
