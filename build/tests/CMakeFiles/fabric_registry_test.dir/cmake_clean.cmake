file(REMOVE_RECURSE
  "CMakeFiles/fabric_registry_test.dir/fabric_registry_test.cpp.o"
  "CMakeFiles/fabric_registry_test.dir/fabric_registry_test.cpp.o.d"
  "fabric_registry_test"
  "fabric_registry_test.pdb"
  "fabric_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
