# Empty compiler generated dependencies file for core_rendezvous_test.
# This may be replaced when dependencies are built.
