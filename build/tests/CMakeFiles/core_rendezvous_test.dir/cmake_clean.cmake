file(REMOVE_RECURSE
  "CMakeFiles/core_rendezvous_test.dir/core_rendezvous_test.cpp.o"
  "CMakeFiles/core_rendezvous_test.dir/core_rendezvous_test.cpp.o.d"
  "core_rendezvous_test"
  "core_rendezvous_test.pdb"
  "core_rendezvous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rendezvous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
