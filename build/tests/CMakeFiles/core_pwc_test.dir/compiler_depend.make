# Empty compiler generated dependencies file for core_pwc_test.
# This may be replaced when dependencies are built.
