file(REMOVE_RECURSE
  "CMakeFiles/core_pwc_test.dir/core_pwc_test.cpp.o"
  "CMakeFiles/core_pwc_test.dir/core_pwc_test.cpp.o.d"
  "core_pwc_test"
  "core_pwc_test.pdb"
  "core_pwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
