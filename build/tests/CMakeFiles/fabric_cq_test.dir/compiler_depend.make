# Empty compiler generated dependencies file for fabric_cq_test.
# This may be replaced when dependencies are built.
