file(REMOVE_RECURSE
  "CMakeFiles/fabric_cq_test.dir/fabric_cq_test.cpp.o"
  "CMakeFiles/fabric_cq_test.dir/fabric_cq_test.cpp.o.d"
  "fabric_cq_test"
  "fabric_cq_test.pdb"
  "fabric_cq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_cq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
