file(REMOVE_RECURSE
  "CMakeFiles/fabric_fault_test.dir/fabric_fault_test.cpp.o"
  "CMakeFiles/fabric_fault_test.dir/fabric_fault_test.cpp.o.d"
  "fabric_fault_test"
  "fabric_fault_test.pdb"
  "fabric_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
