# Empty dependencies file for fabric_fault_test.
# This may be replaced when dependencies are built.
