file(REMOVE_RECURSE
  "CMakeFiles/coll_property_test.dir/coll_property_test.cpp.o"
  "CMakeFiles/coll_property_test.dir/coll_property_test.cpp.o.d"
  "coll_property_test"
  "coll_property_test.pdb"
  "coll_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
