# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_registry_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_wire_model_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_nic_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/core_pwc_test[1]_include.cmake")
include("/root/repo/build/tests/core_rendezvous_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/parcels_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_cq_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_fault_test[1]_include.cmake")
include("/root/repo/build/tests/core_credit_test[1]_include.cmake")
include("/root/repo/build/tests/vtime_test[1]_include.cmake")
include("/root/repo/build/tests/msg_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_stress_test[1]_include.cmake")
include("/root/repo/build/tests/coll_property_test[1]_include.cmake")
include("/root/repo/build/tests/parcels_property_test[1]_include.cmake")
include("/root/repo/build/tests/coll_scatter_test[1]_include.cmake")
include("/root/repo/build/tests/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/wire_invariants_test[1]_include.cmake")
