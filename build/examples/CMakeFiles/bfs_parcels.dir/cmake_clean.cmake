file(REMOVE_RECURSE
  "CMakeFiles/bfs_parcels.dir/bfs_parcels.cpp.o"
  "CMakeFiles/bfs_parcels.dir/bfs_parcels.cpp.o.d"
  "bfs_parcels"
  "bfs_parcels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_parcels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
