# Empty compiler generated dependencies file for bfs_parcels.
# This may be replaced when dependencies are built.
