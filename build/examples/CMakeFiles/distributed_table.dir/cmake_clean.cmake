file(REMOVE_RECURSE
  "CMakeFiles/distributed_table.dir/distributed_table.cpp.o"
  "CMakeFiles/distributed_table.dir/distributed_table.cpp.o.d"
  "distributed_table"
  "distributed_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
