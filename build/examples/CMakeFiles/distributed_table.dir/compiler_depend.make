# Empty compiler generated dependencies file for distributed_table.
# This may be replaced when dependencies are built.
