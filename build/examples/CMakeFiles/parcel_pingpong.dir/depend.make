# Empty dependencies file for parcel_pingpong.
# This may be replaced when dependencies are built.
