file(REMOVE_RECURSE
  "CMakeFiles/parcel_pingpong.dir/parcel_pingpong.cpp.o"
  "CMakeFiles/parcel_pingpong.dir/parcel_pingpong.cpp.o.d"
  "parcel_pingpong"
  "parcel_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
