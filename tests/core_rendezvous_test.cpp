#include <gtest/gtest.h>

#include <cstring>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 2'000'000'000ULL;

void with_photon(std::uint32_t nranks,
                 const std::function<void(Env&, Photon&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    body(env, ph);
    env.bootstrap.barrier(env.rank);
  });
}

TEST(PhotonRendezvous, RecvBufferRqOsPutFin) {
  constexpr std::size_t kBytes = 1u << 20;  // 1 MiB, way past eager
  with_photon(2, [&](Env& env, Photon& ph) {
    std::vector<std::byte> buf(kBytes);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());

    if (env.rank == 1) {
      // Receiver: advertise, then wait for FIN.
      auto rq = ph.post_recv_buffer_rq(0, desc.value(), /*tag=*/42);
      ASSERT_TRUE(rq.ok());
      ASSERT_EQ(ph.wait(rq.value(), kWait), Status::Ok);
      auto expect = pattern(kBytes, 17);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data(), kBytes), 0);
    } else {
      auto p = pattern(kBytes, 17);
      std::memcpy(buf.data(), p.data(), kBytes);
      auto rb = ph.wait_send_rq(1, 42, kWait);
      ASSERT_TRUE(rb.ok());
      EXPECT_EQ(rb.value().size, kBytes);
      auto put = ph.post_os_put(1, local_slice(desc.value(), 0, kBytes),
                                rb.value());
      ASSERT_TRUE(put.ok());
      ASSERT_EQ(ph.wait(put.value(), kWait), Status::Ok);
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
    }
  });
}

TEST(PhotonRendezvous, SendBufferRqOsGetFin) {
  constexpr std::size_t kBytes = 300000;
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(kBytes);
    auto desc = ph.register_buffer(buf.data(), buf.size());

    if (env.rank == 0) {
      // Data source: advertise our buffer, wait until the peer has read it.
      auto p = pattern(kBytes, 5);
      std::memcpy(buf.data(), p.data(), kBytes);
      auto rq = ph.post_send_buffer_rq(1, desc.value(), 7);
      ASSERT_TRUE(rq.ok());
      ASSERT_EQ(ph.wait(rq.value(), kWait), Status::Ok);
    } else {
      auto rb = ph.wait_recv_rq(0, 7, kWait);
      ASSERT_TRUE(rb.ok());
      EXPECT_TRUE(rb.value().get_side);
      auto get = ph.post_os_get(0, local_mut_slice(desc.value(), 0, kBytes),
                                rb.value());
      ASSERT_TRUE(get.ok());
      ASSERT_EQ(ph.wait(get.value(), kWait), Status::Ok);
      auto expect = pattern(kBytes, 5);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data(), kBytes), 0);
      ASSERT_EQ(ph.send_fin(0, rb.value()), Status::Ok);
    }
  });
}

TEST(PhotonRendezvous, TagsKeepStreamsSeparate) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> a(65536), b(65536);
    auto da = ph.register_buffer(a.data(), a.size());
    auto db = ph.register_buffer(b.data(), b.size());

    if (env.rank == 1) {
      // Advertise tag 2 first, then tag 1; sender asks for 1 first.
      auto rq2 = ph.post_recv_buffer_rq(0, db.value(), 2);
      auto rq1 = ph.post_recv_buffer_rq(0, da.value(), 1);
      ASSERT_TRUE(rq1.ok());
      ASSERT_TRUE(rq2.ok());
      ASSERT_EQ(ph.wait(rq1.value(), kWait), Status::Ok);
      ASSERT_EQ(ph.wait(rq2.value(), kWait), Status::Ok);
      EXPECT_EQ(static_cast<std::uint8_t>(a[0]), 1);
      EXPECT_EQ(static_cast<std::uint8_t>(b[0]), 2);
    } else {
      for (std::uint64_t tag : {1, 2}) {
        auto rb = ph.wait_send_rq(1, tag, kWait);
        ASSERT_TRUE(rb.ok());
        std::vector<std::byte> payload(65536, static_cast<std::byte>(tag));
        auto src = ph.register_buffer(payload.data(), payload.size());
        auto put = ph.post_os_put(1, local_slice(src.value(), 0, payload.size()),
                                  rb.value());
        ASSERT_TRUE(put.ok());
        ASSERT_EQ(ph.wait(put.value(), kWait), Status::Ok);
        ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
      }
    }
  });
}

TEST(PhotonRendezvous, WildcardTagMatchesAnyAdvert) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    if (env.rank == 1) {
      auto rq = ph.post_recv_buffer_rq(0, desc.value(), 1234);
      ASSERT_TRUE(rq.ok());
      ASSERT_EQ(ph.wait(rq.value(), kWait), Status::Ok);
    } else {
      auto rb = ph.wait_send_rq(1, Photon::kAnyTag, kWait);
      ASSERT_TRUE(rb.ok());
      EXPECT_EQ(rb.value().tag, 1234u);
      auto put = ph.post_os_put(1, local_slice(desc.value(), 0, 16), rb.value());
      ASSERT_TRUE(put.ok());
      ASSERT_EQ(ph.wait(put.value(), kWait), Status::Ok);
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
    }
  });
}

TEST(PhotonRendezvous, TestIsNonBlockingAndConsumes) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    if (env.rank == 1) {
      auto rq = ph.post_recv_buffer_rq(0, desc.value(), 9);
      ASSERT_TRUE(rq.ok());
      bool done = false;
      // Must not block while pending.
      ASSERT_EQ(ph.test(rq.value(), done), Status::Ok);
      env.bootstrap.barrier(env.rank);  // sender proceeds
      util::Deadline dl(kWait);
      while (!done && !dl.expired())
        ASSERT_EQ(ph.test(rq.value(), done), Status::Ok);
      EXPECT_TRUE(done);
      // Consumed: further test() is an error.
      EXPECT_EQ(ph.test(rq.value(), done), Status::BadArgument);
    } else {
      env.bootstrap.barrier(env.rank);
      auto rb = ph.wait_send_rq(1, 9, kWait);
      ASSERT_TRUE(rb.ok());
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);  // zero-byte transfer
    }
  });
}

TEST(PhotonRendezvous, AdvertLargerThanNeededAllowsPartialPut) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(8192);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    if (env.rank == 1) {
      auto rq = ph.post_recv_buffer_rq(0, desc.value(), 5);
      ASSERT_TRUE(rq.ok());
      ASSERT_EQ(ph.wait(rq.value(), kWait), Status::Ok);
      auto expect = pattern(100, 1);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data(), 100), 0);
    } else {
      auto rb = ph.wait_send_rq(1, 5, kWait);
      ASSERT_TRUE(rb.ok());
      auto p = pattern(100, 1);
      std::memcpy(buf.data(), p.data(), 100);
      auto put = ph.post_os_put(1, local_slice(desc.value(), 0, 100), rb.value());
      ASSERT_TRUE(put.ok());
      ASSERT_EQ(ph.wait(put.value(), kWait), Status::Ok);
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
    }
  });
}

TEST(PhotonRendezvous, OsPutBiggerThanAdvertRejected) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(16384);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    if (env.rank == 1) {
      BufferDescriptor small = desc.value();
      small.size = 64;
      auto rq = ph.post_recv_buffer_rq(0, small, 3);
      ASSERT_TRUE(rq.ok());
      env.bootstrap.barrier(env.rank);
      // The peer's oversized put was rejected, but it FINs the advert anyway
      // so the rendezvous window retires cleanly before teardown.
      ASSERT_EQ(ph.wait(rq.value(), kWait), Status::Ok);
    } else {
      auto rb = ph.wait_send_rq(1, 3, kWait);
      ASSERT_TRUE(rb.ok());
      auto put = ph.post_os_put(1, local_slice(desc.value(), 0, 4096), rb.value());
      EXPECT_EQ(put.status(), Status::BadArgument);
      // Close the advert with an empty transfer: FIN without a put.
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST(PhotonRendezvous, UnknownRequestIdIsBadArgument) {
  with_photon(2, [](Env&, Photon& ph) {
    bool done;
    EXPECT_EQ(ph.test(0xDEAD, done), Status::BadArgument);
  });
}

}  // namespace
}  // namespace photon::core
