// Fault-injection matrix: every op type must surface planned faults as
// error completions and recover cleanly afterwards; the middleware layers
// must keep functioning around injected failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "check/checker.hpp"
#include "core/photon.hpp"
#include "fabric/fabric.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::fabric {
namespace {

using photon::testing::quiet_fabric;

// The unarmed fast path of maybe_fail() is a relaxed atomic load; arming from
// another thread mid-traffic must never lose, duplicate, or corrupt a fault.
TEST(FaultInjector, ConcurrentArmingNeverLosesOrDuplicatesFaults) {
  FaultInjector fi;
  constexpr int kFaults = 1000;
  std::atomic<int> seen{0};
  std::atomic<bool> arming_done{false};
  std::thread consumer([&] {
    // Keep posting until every armed fault has fired: each armed plan entry
    // leaves armed() true until it is consumed.
    while (!arming_done.load(std::memory_order_acquire) || fi.armed()) {
      if (fi.maybe_fail(OpCode::Put).has_value())
        seen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < kFaults; ++i)
    fi.arm({OpCode::Put, Status::FaultInjected, std::nullopt, 1});
  arming_done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(seen.load(), kFaults);
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put).has_value());
}

class FaultMatrix : public ::testing::TestWithParam<OpCode> {};

TEST_P(FaultMatrix, PlannedFaultBecomesErrorCompletionThenRecovers) {
  const OpCode op = GetParam();
  Fabric fab(quiet_fabric(2));
  Nic& a = fab.nic(0);
  Nic& b = fab.nic(1);
  std::vector<std::byte> src(256), dst(256);
  auto ms = a.registry().register_memory(src.data(), src.size(), kAccessAll);
  auto md = b.registry().register_memory(dst.data(), dst.size(), kAccessAll);
  const RemoteRef rr{md.value().begin(), md.value().rkey};
  const LocalRef lr{src.data(), 64, ms.value().lkey};

  auto post = [&](std::uint64_t wr) -> Status {
    switch (op) {
      case OpCode::Put:
        return a.post_put(1, lr, rr, wr, true);
      case OpCode::PutImm:
        return a.post_put_imm(1, lr, rr, 9, wr, true);
      case OpCode::Get:
        return a.post_get(1, LocalMutRef{src.data(), 64, ms.value().lkey}, rr,
                          wr);
      case OpCode::Send:
        return a.post_send(1, lr, 0, wr, true);
      case OpCode::FetchAdd:
        return a.post_fetch_add(1, rr, 1, wr);
      case OpCode::CompareSwap:
        return a.post_compare_swap(1, rr, 0, 1, wr);
      default:
        return Status::BadArgument;
    }
  };

  a.faults().arm({op, Status::FaultInjected, std::nullopt, 1});
  ASSERT_EQ(post(1), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::FaultInjected);
  EXPECT_EQ(c.wr_id, 1u);
  EXPECT_EQ(a.counters().faults_injected.load(), 1u);

  // A faulted op must not have touched the target.
  EXPECT_EQ(b.counters().bytes_in.load(), 0u);

  // The next identical op succeeds.
  ASSERT_EQ(post(2), Status::Ok);
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllOps, FaultMatrix,
                         ::testing::Values(OpCode::Put, OpCode::PutImm,
                                           OpCode::Get, OpCode::Send,
                                           OpCode::FetchAdd,
                                           OpCode::CompareSwap));

TEST(FaultInjector, RandomFaultsAreSeededAndBounded) {
  FaultInjector fi;
  fi.set_random(0.25, 42);
  int hits = 0;
  for (int i = 0; i < 1000; ++i)
    if (fi.maybe_fail(OpCode::Put)) ++hits;
  // Deterministic for the seed; roughly a quarter.
  FaultInjector fi2;
  fi2.set_random(0.25, 42);
  int hits2 = 0;
  for (int i = 0; i < 1000; ++i)
    if (fi2.maybe_fail(OpCode::Put)) ++hits2;
  EXPECT_EQ(hits, hits2);
  EXPECT_GT(hits, 180);
  EXPECT_LT(hits, 330);
}

TEST(FaultInjector, PlannedFaultsFireInOrder) {
  FaultInjector fi;
  fi.arm({std::nullopt, Status::InvalidKey, std::nullopt, 1});
  fi.arm({std::nullopt, Status::OutOfBounds, std::nullopt, 1});
  EXPECT_EQ(fi.maybe_fail(OpCode::Put).value(), Status::InvalidKey);
  EXPECT_EQ(fi.maybe_fail(OpCode::Get).value(), Status::OutOfBounds);
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put).has_value());
  EXPECT_FALSE(fi.armed());
}

// Middleware-level resilience: an injected failure on a *sequenced* op
// (eager-ring message) would leave a hole in the ring, so the connection
// latches dead (verbs QP-error semantics): the error surfaces through
// probe_error, further sequenced ops to that peer return Disconnected, and
// other peers are unaffected.
TEST(PhotonResilience, SequencedFaultLatchesPeerDisconnected) {
  runtime::Cluster cluster(quiet_fabric(3));
  cluster.run([&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    constexpr std::uint64_t kWait = 2'000'000'000ULL;
    std::uint64_t v = 7;
    const auto bytes = std::as_bytes(std::span(&v, 1));
    if (env.rank == 0) {
      env.nic.faults().arm(
          {OpCode::PutImm, Status::FaultInjected, std::nullopt, 1});
      // The faulted eager send posts fine; the error arrives asynchronously.
      ASSERT_EQ(ph.try_send_with_completion(1, bytes, std::nullopt, 1),
                Status::Ok);
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
      EXPECT_EQ(*err, Status::FaultInjected);
      // Peer 1 is now latched dead for sequenced traffic...
      EXPECT_EQ(ph.try_send_with_completion(1, bytes, std::nullopt, 2),
                Status::Disconnected);
      EXPECT_EQ(ph.try_signal(1, 3), Status::Disconnected);
      // ...but peer 2 is unaffected.
      ASSERT_EQ(ph.send_with_completion(2, bytes, std::nullopt, 4, kWait),
                Status::Ok);
    } else if (env.rank == 2) {
      core::ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 4u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(PhotonResilience, RemoteAccessErrorDoesNotCorruptLedgerFlow) {
  runtime::Cluster cluster(quiet_fabric(2));
  cluster.run([&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    // Forged rkey below is deliberate misuse; keep the sanitizer quiet.
    env.nic.checker().set_enabled(false);
    constexpr std::uint64_t kWait = 2'000'000'000ULL;
    std::vector<std::byte> buf(128);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    if (env.rank == 0) {
      // Bad put (forged rkey), then a good PWC: the good one must deliver.
      core::RemoteSlice bad = core::slice(peers[1], 0, 64);
      bad.rkey = 0xBAD;
      ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, 64), bad,
                                       std::nullopt, std::nullopt, kWait),
                Status::Ok);
      ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, 64),
                                       core::slice(peers[1], 0, 64),
                                       std::nullopt, 42, kWait),
                Status::Ok);
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
      EXPECT_EQ(*err, Status::InvalidKey);
    } else {
      core::ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 42u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

}  // namespace
}  // namespace photon::fabric
