// Negative tests for the PhotonCheck shadow-state validator: each violation
// class must fire exactly once, attributed to the op that broke the rule.
// Built only when PHOTON_CHECK is ON (the hooks are compiled out otherwise).
//
// Every test flips the fabric's checker into collect mode, provokes one
// violation, drains it with take_violations(), and asserts the record —
// including that legitimate traffic around the misuse stays silent.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/checker.hpp"
#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using check::CheckOpKind;
using check::Mode;
using check::ViolationKind;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 2'000'000'000ULL;

/// Arms collect mode; returns false (-> skip) if the env disabled the checker.
bool arm_collect(check::Checker& ck) {
  if (!ck.enabled()) return false;
  ck.set_mode(Mode::kCollect);
  return true;
}

// ---- class 1: use-after-put --------------------------------------------------

TEST(PhotonCheckViolations, UseAfterPutFiresOnceOnPinnedSourceWrite) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);

    // Self-put with disjoint src [0,128) and landing [1024,1152).
    ASSERT_EQ(ph.try_put_with_completion(0, local_slice(desc, 0, 128),
                                         slice(peers[0], 1024, 128), 7, 9),
              Status::Ok);
    // Touching the pinned source before its local id pops is class 1.
    ck.note_user_write(ph.rank(), buf.data(), 64);

    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kUseAfterPut);
    EXPECT_EQ(v[0].op.kind, CheckOpKind::kUserAccess);
    ASSERT_TRUE(v[0].prior.has_value());
    EXPECT_EQ(v[0].prior->kind, CheckOpKind::kPut);
    EXPECT_TRUE(v[0].prior->has_local_id);
    EXPECT_EQ(v[0].prior->local_id, 7u);

    // Drain both completions; touching the source afterwards is legal.
    LocalComplete lc;
    ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
    ProbeEvent ev;
    ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
    ck.note_user_write(ph.rank(), buf.data(), 64);
    EXPECT_TRUE(ck.take_violations().empty());
  });
}

// ---- class 2: read-of-unlanded -----------------------------------------------

TEST(PhotonCheckViolations, ReadOfUnlandedFiresOnceOnEarlyLandingRead) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);

    ASSERT_EQ(ph.try_put_with_completion(0, local_slice(desc, 0, 128),
                                         slice(peers[0], 1024, 128), 7, 9),
              Status::Ok);
    // Reading the landing range before the remote id pops is class 2.
    ck.note_user_read(ph.rank(), buf.data() + 1024, 64);

    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kReadOfUnlanded);
    EXPECT_EQ(v[0].op.kind, CheckOpKind::kUserAccess);
    ASSERT_TRUE(v[0].prior.has_value());
    EXPECT_EQ(v[0].prior->kind, CheckOpKind::kPut);
    EXPECT_TRUE(v[0].prior->has_remote_id);
    EXPECT_EQ(v[0].prior->remote_id, 9u);

    LocalComplete lc;
    ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
    ProbeEvent ev;
    ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
    ck.note_user_read(ph.rank(), buf.data() + 1024, 64);
    EXPECT_TRUE(ck.take_violations().empty());
  });
}

// ---- class 3: rma race -------------------------------------------------------

TEST(PhotonCheckViolations, RmaRaceFiresOnceOnOverlappingPutsFromTwoRanks) {
  Cluster cluster(quiet_fabric(3));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);

    // rank1 lands [0,128) at rank2; before rank2 pops, rank0 puts the same
    // range. Barriers pin the order so the overlap is deterministic.
    if (env.rank == 1) {
      ASSERT_EQ(ph.put_with_completion(2, local_slice(desc, 0, 128),
                                       slice(peers[2], 0, 128), std::nullopt,
                                       1, kWait),
                Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      ASSERT_EQ(ph.put_with_completion(2, local_slice(desc, 0, 128),
                                       slice(peers[2], 0, 128), std::nullopt,
                                       2, kWait),
                Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
    if (env.rank == 2) {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
    }
    env.bootstrap.barrier(env.rank);

    if (env.rank == 0) {
      auto v = ck.take_violations();
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0].kind, ViolationKind::kRmaRace);
      EXPECT_EQ(v[0].op.kind, CheckOpKind::kPut);
      EXPECT_EQ(v[0].op.initiator, 0u);
      EXPECT_EQ(v[0].op.target, 2u);
      ASSERT_TRUE(v[0].prior.has_value());
      EXPECT_EQ(v[0].prior->kind, CheckOpKind::kPut);
      EXPECT_EQ(v[0].prior->initiator, 1u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

// ---- class 4: bad slice ------------------------------------------------------

TEST(PhotonCheckViolations, BadSliceFiresOnceOnOutOfBoundsLocalSlice) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> src(256), dst(1024);
    auto src_desc = ph.register_buffer(src.data(), src.size()).value();
    auto dst_desc = ph.register_buffer(dst.data(), dst.size()).value();
    auto peers = ph.exchange_descriptors(dst_desc);

    // Local slice runs past its 256-byte registration (the remote window is
    // big enough, so only the NIC's local bounds check can reject): the
    // synchronous rejection itself is the class-4 report.
    LocalSlice oob{src.data(), 512, src_desc.lkey};
    EXPECT_NE(ph.try_put_with_completion(0, oob, slice(peers[0], 0, 512),
                                         std::nullopt, 1),
              Status::Ok);

    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kBadSlice);
    EXPECT_EQ(v[0].op.kind, CheckOpKind::kPut);
    EXPECT_EQ(v[0].op.len, 512u);
  });
}

TEST(PhotonCheckViolations, BadSliceFiresOnceOnForgedRemoteKey) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    if (env.rank == 0) {
      // Forged rkey: the post succeeds (remote checks are async) but the
      // checker flags the unresolvable remote slice at commit.
      RemoteSlice bad = slice(peers[1], 0, 64);
      bad.rkey = 0xdeadbeef;
      ASSERT_EQ(ph.put_with_completion(1, local_slice(desc, 0, 64), bad,
                                       std::nullopt, std::nullopt, kWait),
                Status::Ok);
      auto v = ck.take_violations();
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0].kind, ViolationKind::kBadSlice);
      EXPECT_EQ(v[0].op.kind, CheckOpKind::kPut);
      EXPECT_EQ(v[0].op.target, 1u);
      // The async error completion still surfaces to the application.
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
    }
    env.bootstrap.barrier(env.rank);
  });
}

// ---- class 5: completion-id hygiene ------------------------------------------

TEST(PhotonCheckViolations, IdHygieneFiresOnceOnDuplicateOutstandingLocalId) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);

    // Two posts share local id 5 with no pop in between (disjoint ranges, so
    // only the id reuse can trip a report).
    ASSERT_EQ(ph.try_put_with_completion(0, local_slice(desc, 0, 64),
                                         slice(peers[0], 1024, 64), 5, 11),
              Status::Ok);
    ASSERT_EQ(ph.try_put_with_completion(0, local_slice(desc, 128, 64),
                                         slice(peers[0], 2048, 64), 5, 12),
              Status::Ok);

    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kIdHygiene);
    EXPECT_EQ(v[0].op.kind, CheckOpKind::kPut);
    EXPECT_TRUE(v[0].op.has_local_id);
    EXPECT_EQ(v[0].op.local_id, 5u);
    ASSERT_TRUE(v[0].prior.has_value());
    EXPECT_EQ(v[0].prior->local_id, 5u);
  });
}

TEST(PhotonCheckViolations, IdHygieneFiresOnceOnDoubleUnregister) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    ASSERT_EQ(ph.unregister_buffer(desc), Status::Ok);
    EXPECT_EQ(ph.unregister_buffer(desc), Status::InvalidKey);

    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kIdHygiene);
    EXPECT_EQ(v[0].op.kind, CheckOpKind::kRegister);
  });
}

TEST(PhotonCheckViolations, IdHygieneFiresOnceOnOrphanRemoteId) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    // A doorbell with no recorded post can only come from protocol-layer
    // corruption, so drive the completion-delivery hook directly.
    ck.on_remote_id_popped(/*target=*/0, /*id=*/77);
    auto v = ck.take_violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, ViolationKind::kIdHygiene);
    EXPECT_TRUE(v[0].op.has_remote_id);
    EXPECT_EQ(v[0].op.remote_id, 77u);
  });
}

TEST(PhotonCheckViolations, IdHygieneFiresOnceOnOpLeakedPastFinalize) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    {
      Photon ph(env.nic, env.bootstrap, Config{});
      if (env.rank == 0) {
        // The remote id is deposited at rank1, which never probes it: the
        // signal op is still outstanding when rank0 finalizes.
        ASSERT_EQ(ph.signal(1, 9, kWait), Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
    }
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      auto v = ck.take_violations();
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0].kind, ViolationKind::kIdHygiene);
      EXPECT_EQ(v[0].op.kind, CheckOpKind::kSignal);
      EXPECT_TRUE(v[0].op.has_remote_id);
      EXPECT_EQ(v[0].op.remote_id, 9u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

// ---- zero false positives on a legal mixed workload --------------------------

TEST(PhotonCheckViolations, CleanProtocolTrafficStaysSilent) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    auto& ck = env.nic.checker();
    if (!arm_collect(ck)) GTEST_SKIP() << "checker disabled via PHOTON_CHECK";
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    const auto peer = static_cast<fabric::Rank>(1 - env.rank);

    // Sources live in [0,128) and landings in [2048,2176): the ranges never
    // overlap, so both directions can be in flight at once.
    ASSERT_EQ(ph.put_with_completion(peer, local_slice(desc, 0, 128),
                                     slice(peers[peer], 2048, 128),
                                     std::nullopt, 1, kWait),
              Status::Ok);
    std::vector<std::byte> payload(64);
    ASSERT_EQ(ph.send_with_completion(peer, payload, std::nullopt, 2, kWait),
              Status::Ok);
    for (int got = 0; got < 2;) {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      ++got;
    }
    ASSERT_EQ(ph.flush(peer, kWait), Status::Ok);
    env.bootstrap.barrier(env.rank);
    EXPECT_EQ(ck.violation_count(), 0u);
    EXPECT_TRUE(ck.take_violations().empty());
    env.bootstrap.barrier(env.rank);
  });
}

}  // namespace
}  // namespace photon::core
