// Virtual-time tracer: hooks, ordering, and CSV export.
#include <gtest/gtest.h>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/trace.hpp"

namespace photon::core {
namespace {

using photon::testing::timed_fabric;
using runtime::Cluster;
using runtime::Env;
using util::TraceKind;
using util::Tracer;

constexpr std::uint64_t kWait = 3'000'000'000ULL;

TEST(Tracer, RecordsPostsCompletionsAndEvents) {
  Cluster cluster(timed_fabric(2));
  std::array<Tracer, 2> tracers;
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    ph.set_tracer(&tracers[env.rank]);
    std::vector<std::byte> payload(100);
    if (env.rank == 0) {
      for (int i = 0; i < 5; ++i)
        ASSERT_EQ(ph.send_with_completion(1, payload, static_cast<std::uint64_t>(i),
                                          100 + static_cast<std::uint64_t>(i),
                                          kWait),
                  Status::Ok);
      for (int i = 0; i < 5; ++i) {
        LocalComplete lc;
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
    }
    env.bootstrap.barrier(env.rank);
  });

  EXPECT_EQ(tracers[0].count(TraceKind::kEagerSend), 5u);
  EXPECT_EQ(tracers[0].count(TraceKind::kLocalDone), 5u);
  EXPECT_EQ(tracers[1].count(TraceKind::kRemoteEvent), 5u);

  // Sender timestamps are nondecreasing, and each local-done follows the
  // corresponding post in virtual time.
  std::uint64_t last = 0;
  for (const auto& e : tracers[0].events()) {
    EXPECT_GE(e.vtime, last);
    last = e.vtime;
  }
  // Receiver events carry the remote ids and payload sizes.
  for (const auto& e : tracers[1].events()) {
    if (e.kind == TraceKind::kRemoteEvent) {
      EXPECT_GE(e.id, 100u);
      EXPECT_EQ(e.bytes, 100u);
    }
  }
}

TEST(Tracer, StallEventsRecordedUnderBackPressure) {
  Cluster cluster(photon::testing::quiet_fabric(2));
  Tracer tracer;
  cluster.run([&](Env& env) {
    Config cfg;
    cfg.eager_ring_bytes = 2048;
    cfg.eager_threshold = 512;
    Photon ph(env.nic, env.bootstrap, cfg);
    if (env.rank == 0) {
      ph.set_tracer(&tracer);
      std::vector<std::byte> payload(512);
      Status st = Status::Ok;
      int posted = 0;
      while (posted < 32 && st == Status::Ok) {
        st = ph.try_send_with_completion(1, payload, std::nullopt, 1);
        if (st == Status::Ok) ++posted;
      }
      EXPECT_EQ(st, Status::Retry);
      env.bootstrap.barrier(env.rank);  // receiver drains `posted` messages
      // Share how many we managed to post.
      ASSERT_EQ(ph.signal(1, 1000 + static_cast<std::uint64_t>(posted), kWait),
                Status::Ok);
    } else {
      env.bootstrap.barrier(env.rank);
      std::uint64_t expect = ~0ull, seen = 0;
      while (seen < expect) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        if (ev.id >= 1000)
          expect = ev.id - 1000;
        else
          ++seen;
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  EXPECT_GE(tracer.count(TraceKind::kStall), 1u);
}

TEST(Tracer, CsvHasHeaderAndOneLinePerEvent) {
  Tracer t;
  t.record(10, TraceKind::kPut, 1, 64, 7);
  t.record(20, TraceKind::kLocalDone, 1, 64, 7);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("vtime_ns,kind,peer,bytes,id\n"), std::string::npos);
  EXPECT_NE(csv.find("10,put,1,64,7\n"), std::string::npos);
  EXPECT_NE(csv.find("20,local_done,1,64,7\n"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, DetachedTracerCostsNothingAndRecordsNothing) {
  Cluster cluster(photon::testing::quiet_fabric(2));
  Tracer t;
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    ph.set_tracer(&t);
    ph.set_tracer(nullptr);  // detach
    if (env.rank == 0) {
      std::vector<std::byte> p(8);
      ASSERT_EQ(ph.send_with_completion(1, p, std::nullopt, 1, kWait),
                Status::Ok);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
  });
  EXPECT_TRUE(t.events().empty());
}

}  // namespace
}  // namespace photon::core
