#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "check/checker.hpp"
#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 2'000'000'000ULL;  // 2 s wall timeout

Config small_config() {
  Config c;
  c.eager_ring_bytes = 1u << 14;  // 16 KiB rings: exercises wrap quickly
  c.eager_threshold = 1024;
  c.ledger_entries = 8;
  return c;
}

/// Runs `body(env, photon)` on every rank with a collectively constructed
/// Photon instance per rank.
void with_photon(std::uint32_t nranks, const Config& cfg,
                 const std::function<void(Env&, Photon&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, cfg);
    body(env, ph);
    env.bootstrap.barrier(env.rank);  // quiesce before teardown
  });
}

TEST(PhotonConfig, RejectsBadConfigs) {
  Cluster cluster(quiet_fabric(1));
  cluster.run([&](Env& env) {
    Config c;
    c.eager_ring_bytes = 100;  // unaligned and too small
    EXPECT_THROW(Photon(env.nic, env.bootstrap, c), std::invalid_argument);
    Config c2;
    c2.ledger_entries = 1;
    EXPECT_THROW(Photon(env.nic, env.bootstrap, c2), std::invalid_argument);
  });
}

TEST(PhotonPwc, DirectPutDeliversDataAndBothIds) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());
    auto all = ph.exchange_descriptors(desc.value());

    if (env.rank == 0) {
      auto payload = pattern(512);
      std::memcpy(buf.data(), payload.data(), payload.size());
      ASSERT_EQ(ph.put_with_completion(1, local_slice(desc.value(), 0, 512),
                                       slice(all[1], 64, 512), 111, 222),
                Status::Ok);
      LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, 111u);
      EXPECT_EQ(lc.peer, 1u);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 222u);
      EXPECT_EQ(ev.peer, 0u);
      EXPECT_FALSE(ev.from_get);
      EXPECT_TRUE(ev.payload.empty());  // direct: data is in the buffer
      auto expect = pattern(512);
      EXPECT_EQ(std::memcmp(buf.data() + 64, expect.data(), 512), 0);
    }
  });
}

TEST(PhotonPwc, EagerSendCarriesPayloadToProbe) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    if (env.rank == 0) {
      auto payload = pattern(300, 3);
      ASSERT_EQ(ph.send_with_completion(1, payload, 7, 8), Status::Ok);
      LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, 7u);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 8u);
      auto expect = pattern(300, 3);
      ASSERT_EQ(ev.payload.size(), 300u);
      EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), 300), 0);
    }
  });
}

TEST(PhotonPwc, ZeroByteEagerAndSignal) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    if (env.rank == 0) {
      ASSERT_EQ(ph.send_with_completion(1, {}, std::nullopt, 42), Status::Ok);
      ASSERT_EQ(ph.signal(1, 43), Status::Ok);
    } else {
      ProbeEvent a, b;
      ASSERT_EQ(ph.wait_event(a, kWait), Status::Ok);
      ASSERT_EQ(ph.wait_event(b, kWait), Status::Ok);
      EXPECT_EQ(a.id, 42u);
      EXPECT_TRUE(a.payload.empty());
      EXPECT_EQ(b.id, 43u);
    }
  });
}

TEST(PhotonPwc, EagerOrderIsPreservedPerPeer) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    constexpr int kN = 200;  // forces multiple ring wraps (16 KiB ring)
    if (env.rank == 0) {
      std::vector<std::byte> payload(256);
      for (int i = 0; i < kN; ++i) {
        std::memcpy(payload.data(), &i, sizeof(i));
        ASSERT_EQ(ph.send_with_completion(
                      1, payload, std::nullopt, static_cast<std::uint64_t>(i)),
                  Status::Ok);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        EXPECT_EQ(ev.id, static_cast<std::uint64_t>(i));
        int got = -1;
        std::memcpy(&got, ev.payload.data(), sizeof(got));
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(PhotonPwc, RingBackPressureReturnsRetryThenRecovers) {
  Config cfg = small_config();
  cfg.eager_ring_bytes = 4096;
  cfg.eager_threshold = 1024;
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      std::vector<std::byte> payload(1024);
      // Fill the ring without the peer consuming.
      int posted = 0;
      Status st = Status::Ok;
      while (posted < 64) {
        st = ph.try_send_with_completion(1, payload, std::nullopt, 1);
        if (st != Status::Ok) break;
        ++posted;
      }
      EXPECT_EQ(st, Status::Retry);
      EXPECT_GE(ph.stats().credit_stalls, 1u);
      EXPECT_GT(posted, 0);
      env.bootstrap.barrier(env.rank);  // let receiver start draining
      // Blocking wrapper must eventually succeed as credits return.
      ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt, 2, kWait),
                Status::Ok);
      // Tell receiver how many messages to expect in total.
      const std::uint64_t total = static_cast<std::uint64_t>(posted) + 1;
      ASSERT_EQ(ph.signal(1, 1000 + total, kWait), Status::Ok);
    } else {
      env.bootstrap.barrier(env.rank);
      std::uint64_t seen = 0;
      std::uint64_t expected = ~0ULL;
      while (seen < expected) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        if (ev.id >= 1000)
          expected = ev.id - 1000;
        else
          ++seen;
      }
      EXPECT_EQ(seen, expected);
    }
  });
}

TEST(PhotonPwc, LedgerBackPressureOnSignals) {
  Config cfg = small_config();
  cfg.ledger_entries = 4;
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      int posted = 0;
      Status st = Status::Ok;
      while (posted < 100) {
        st = ph.try_signal(1, static_cast<std::uint64_t>(posted));
        if (st != Status::Ok) break;
        ++posted;
      }
      EXPECT_EQ(posted, 4);  // exactly ledger_entries fit
      EXPECT_EQ(st, Status::Retry);
      EXPECT_GE(ph.stats().ledger_stalls, 1u);
      env.bootstrap.barrier(env.rank);
      // Receiver drains; blocking signal goes through.
      ASSERT_EQ(ph.signal(1, 999, kWait), Status::Ok);
    } else {
      env.bootstrap.barrier(env.rank);
      std::uint64_t last = 0;
      for (int i = 0; i < 5; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        last = ev.id;
      }
      EXPECT_EQ(last, 999u);
    }
  });
}

TEST(PhotonGwc, GetPullsDataAndNotifiesTarget) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(2048);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    auto all = ph.exchange_descriptors(desc.value());

    if (env.rank == 1) {
      auto p = pattern(1000, 55);
      std::memcpy(buf.data(), p.data(), p.size());
      env.bootstrap.barrier(env.rank);  // data ready
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 77u);
      EXPECT_TRUE(ev.from_get);
    } else {
      env.bootstrap.barrier(env.rank);
      ASSERT_EQ(ph.get_with_completion(1, local_mut_slice(desc.value(), 0, 1000),
                                       slice(all[1], 0, 1000), 66, 77),
                Status::Ok);
      LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, 66u);
      auto p = pattern(1000, 55);
      EXPECT_EQ(std::memcmp(buf.data(), p.data(), 1000), 0);
    }
  });
}

TEST(PhotonPwc, ErrorsSurfaceViaProbeError) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    // Forging an rkey is deliberate misuse; the sanitizer would (correctly)
    // flag it, but this test is about error surfacing.
    env.nic.checker().set_enabled(false);
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    auto all = ph.exchange_descriptors(desc.value());
    if (env.rank == 0) {
      // Forge a bad remote key.
      RemoteSlice bad = slice(all[1], 0, 64);
      bad.rkey = 0xdeadbeef;
      ASSERT_EQ(ph.put_with_completion(1, local_slice(desc.value(), 0, 64), bad,
                                       1, std::nullopt),
                Status::Ok);
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
      EXPECT_EQ(*err, Status::InvalidKey);
    }
  });
}

TEST(PhotonPwc, FaultInjectionSurfacesAsError) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    if (env.rank == 0) {
      env.nic.faults().arm(
          {fabric::OpCode::PutImm, Status::FaultInjected, std::nullopt, 1});
      std::vector<std::byte> payload(64);
      ASSERT_EQ(ph.try_send_with_completion(1, payload, 5, 6), Status::Ok);
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
      EXPECT_EQ(*err, Status::FaultInjected);
    }
  });
}

TEST(PhotonPwc, ManyPeersAllToAll) {
  Config cfg = small_config();
  with_photon(4, cfg, [](Env& env, Photon& ph) {
    // Every rank eager-sends one message to every other rank.
    for (std::uint32_t d = 0; d < env.size; ++d) {
      if (d == env.rank) continue;
      std::uint64_t val = env.rank * 100 + d;
      auto bytes = std::as_bytes(std::span<const std::uint64_t, 1>(&val, 1));
      ASSERT_EQ(ph.send_with_completion(d, bytes, std::nullopt, val, kWait),
                Status::Ok);
    }
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i + 1 < env.size; ++i) {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, ev.peer * 100 + env.rank);
      sum += ev.id;
    }
    std::uint64_t expect = 0;
    for (std::uint32_t s = 0; s < env.size; ++s)
      if (s != env.rank) expect += s * 100 + env.rank;
    EXPECT_EQ(sum, expect);
  });
}

TEST(PhotonPwc, SelfSendLoopback) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    auto payload = pattern(128, 9);
    ASSERT_EQ(ph.send_with_completion(env.rank, payload, 1, 2, kWait),
              Status::Ok);
    ProbeEvent ev;
    ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
    EXPECT_EQ(ev.id, 2u);
    EXPECT_EQ(ev.peer, env.rank);
    LocalComplete lc;
    ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
    EXPECT_EQ(lc.id, 1u);
  });
}

TEST(PhotonPwc, OversizedEagerRejected) {
  with_photon(2, small_config(), [](Env&, Photon& ph) {
    std::vector<std::byte> big(2048);  // threshold is 1024
    EXPECT_EQ(ph.try_send_with_completion(1, big, std::nullopt, 1),
              Status::BadArgument);
  });
}

TEST(PhotonPwc, PutLargerThanSliceRejected) {
  with_photon(2, small_config(), [](Env& env, Photon& ph) {
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    auto all = ph.exchange_descriptors(desc.value());
    if (env.rank == 0) {
      EXPECT_EQ(ph.try_put_with_completion(1, local_slice(desc.value(), 0, 256),
                                           slice(all[1], 0, 128), 1, 2),
                Status::BadArgument);
    }
  });
}

// Property sweep: payload sizes across the eager range, including the ring
// header alignment edge cases, must round-trip intact.
class EagerSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EagerSizeSweep, RoundTripsIntact) {
  const std::size_t n = GetParam();
  Config cfg = small_config();
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      auto payload = pattern(n, static_cast<std::uint8_t>(n * 31));
      ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt, n, kWait),
                Status::Ok);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, n);
      auto expect = pattern(n, static_cast<std::uint8_t>(n * 31));
      ASSERT_EQ(ev.payload.size(), n);
      if (n != 0) {  // empty vectors may hand memcmp a null pointer (UB)
        EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), n), 0);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, EagerSizeSweep,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 63, 64,
                                           100, 255, 256, 512, 1000, 1023,
                                           1024));

// Property sweep: the ledger must behave identically across depths.
class LedgerDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LedgerDepthSweep, SignalsFlowAtEveryDepth) {
  Config cfg = small_config();
  cfg.ledger_entries = GetParam();
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    constexpr std::uint64_t kN = 50;
    if (env.rank == 0) {
      for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(ph.signal(1, i, kWait), Status::Ok);
    } else {
      for (std::uint64_t i = 0; i < kN; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        EXPECT_EQ(ev.id, i);  // in order
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Depths, LedgerDepthSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace photon::core
