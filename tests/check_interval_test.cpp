// Unit tests for the PhotonCheck interval map (span bookkeeping substrate).
#include <gtest/gtest.h>

#include "check/interval_map.hpp"

namespace photon::check {
namespace {

TEST(IntervalMap, OverlappingFindsHalfOpenIntersections) {
  IntervalMap m;
  m.insert(100, 200, SpanKind::kSrcPinned, 1);
  m.insert(300, 400, SpanKind::kLanding, 2);

  // Touching at an endpoint is not an overlap (half-open ranges).
  EXPECT_TRUE(m.overlapping(0, 100).empty());
  EXPECT_TRUE(m.overlapping(200, 300).empty());
  EXPECT_TRUE(m.overlapping(400, 500).empty());

  auto hit = m.overlapping(150, 160);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].serial, 1u);
  EXPECT_EQ(hit[0].kind, SpanKind::kSrcPinned);

  // A query spanning both ranges returns both, ordered by begin.
  auto both = m.overlapping(199, 301);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].serial, 1u);
  EXPECT_EQ(both[1].serial, 2u);
}

TEST(IntervalMap, EmptyQueryOverlapsNothing) {
  IntervalMap m;
  m.insert(0, 100, SpanKind::kLanding, 7);
  EXPECT_TRUE(m.overlapping(50, 50).empty());
  EXPECT_TRUE(m.overlapping(60, 50).empty());
}

TEST(IntervalMap, EraseIsKeyedByBeginAndSerial) {
  IntervalMap m;
  // Two ops may hold spans with the same begin (e.g. overlapping puts from
  // two initiators); erase must remove only the owner's span.
  m.insert(100, 200, SpanKind::kLanding, 1);
  m.insert(100, 150, SpanKind::kLanding, 2);
  EXPECT_EQ(m.size(), 2u);

  EXPECT_TRUE(m.erase(100, 2));
  EXPECT_FALSE(m.erase(100, 2));  // already gone
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.overlapping(100, 101)[0].serial, 1u);

  EXPECT_FALSE(m.erase(999, 1));  // wrong begin
  EXPECT_TRUE(m.erase(100, 1));
  EXPECT_TRUE(m.empty());
}

TEST(IntervalMap, EraseAllRemovesEverySpanOfOneOp) {
  IntervalMap m;
  m.insert(0, 10, SpanKind::kSrcPinned, 5);
  m.insert(20, 30, SpanKind::kLanding, 5);
  m.insert(40, 50, SpanKind::kWireRead, 6);
  EXPECT_EQ(m.erase_all(5), 2u);
  EXPECT_EQ(m.erase_all(5), 0u);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.all()[0].serial, 6u);
}

TEST(IntervalMap, SpanWriteClassification) {
  EXPECT_FALSE(span_is_write(SpanKind::kSrcPinned));
  EXPECT_TRUE(span_is_write(SpanKind::kDstPinned));
  EXPECT_TRUE(span_is_write(SpanKind::kLanding));
  EXPECT_FALSE(span_is_write(SpanKind::kWireRead));
  EXPECT_TRUE(span_is_write(SpanKind::kAdvertRecv));
  EXPECT_FALSE(span_is_write(SpanKind::kAdvertSend));
}

}  // namespace
}  // namespace photon::check
