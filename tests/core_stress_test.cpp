// Randomized stress/property tests over the Photon core: seeded op mixes
// across several peers with end-of-run global invariants.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 20'000'000'000ULL;

// Every rank sends a seeded random mix of eager messages / signals / direct
// puts to random peers. Termination is detected *in band* (a "done" marker
// carrying per-pair totals), because a rank that parks itself in a blocking
// out-of-band barrier stops progressing and would deadlock peers waiting on
// its credit returns — the same discipline a real runtime needs.
TEST(PhotonStress, RandomOpMixConservesMessagesAndBytes) {
  constexpr std::uint32_t kRanks = 4;
  constexpr int kOpsPerRank = 400;
  constexpr std::uint64_t kDoneId = 0xD000;
  Cluster cluster(quiet_fabric(kRanks));
  cluster.run([&](Env& env) {
    Config cfg;
    cfg.eager_ring_bytes = 1u << 15;
    cfg.eager_threshold = 2048;
    cfg.ledger_entries = 32;
    Photon ph(env.nic, env.bootstrap, cfg);

    std::vector<std::byte> window(8192);
    auto desc = ph.register_buffer(window.data(), window.size()).value();
    auto peers = ph.exchange_descriptors(desc);

    util::Xoshiro256 rng(1234 + env.rank);
    std::vector<std::uint64_t> sent_to(kRanks, 0);
    std::vector<std::uint64_t> byte_sum_to(kRanks, 0);
    std::vector<std::uint64_t> recv_from(kRanks, 0);
    std::vector<std::uint64_t> byte_sum_from(kRanks, 0);
    std::vector<std::uint64_t> expect_from(kRanks, ~0ull);
    std::vector<std::uint64_t> expect_bytes_from(kRanks, 0);
    std::uint32_t done_peers = 0;

    auto consume = [&](ProbeEvent&& ev) {
      if (ev.id == kDoneId) {
        std::uint64_t vals[2];
        std::memcpy(vals, ev.payload.data(), sizeof(vals));
        expect_from[ev.peer] = vals[0];
        expect_bytes_from[ev.peer] = vals[1];
        ++done_peers;
        return;
      }
      ++recv_from[ev.peer];
      for (auto b : ev.payload)
        byte_sum_from[ev.peer] += static_cast<std::uint8_t>(b);
    };
    auto drain_nonblocking = [&] {
      while (auto ev = ph.probe_event()) consume(std::move(*ev));
    };

    for (int i = 0; i < kOpsPerRank; ++i) {
      const auto dst = static_cast<fabric::Rank>(rng.below(kRanks));
      const std::uint64_t kind = rng.below(3);
      if (kind == 0) {
        const std::size_t n = rng.below(2000);
        std::vector<std::byte> payload(n);
        std::uint64_t sum = 0;
        for (auto& b : payload) {
          b = static_cast<std::byte>(rng.next() & 0xff);
          sum += static_cast<std::uint8_t>(b);
        }
        ASSERT_EQ(ph.send_with_completion(dst, payload, std::nullopt, 1, kWait),
                  Status::Ok);
        ++sent_to[dst];
        byte_sum_to[dst] += sum;
      } else if (kind == 1) {
        ASSERT_EQ(ph.signal(dst, 2, kWait), Status::Ok);
        ++sent_to[dst];
      } else {
        // Disjoint per-initiator slots: concurrent puts into one target
        // window from different ranks must not overlap (that is a real RMA
        // race, and PhotonCheck flags it).
        const std::uint64_t slot = 128ull * env.rank;
        ASSERT_EQ(ph.put_with_completion(dst, local_slice(desc, slot, 128),
                                         slice(peers[dst], slot, 128),
                                         std::nullopt, 3, kWait),
                  Status::Ok);
        ++sent_to[dst];
      }
      drain_nonblocking();
    }

    // In-band completion markers (to every rank including self).
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      std::uint64_t vals[2] = {sent_to[r], byte_sum_to[r]};
      ASSERT_EQ(ph.send_with_completion(
                    r, std::as_bytes(std::span(vals)), std::nullopt, kDoneId,
                    kWait),
                Status::Ok);
      drain_nonblocking();
    }

    // Drain until all peers reported and all reported traffic has arrived.
    auto complete = [&] {
      if (done_peers < kRanks) return false;
      for (std::uint32_t r = 0; r < kRanks; ++r)
        if (recv_from[r] < expect_from[r]) return false;
      return true;
    };
    util::Deadline dl(kWait);
    while (!complete() && !dl.expired()) {
      ProbeEvent ev;
      if (ph.wait_event(ev, 100'000'000ULL) == Status::Ok)
        consume(std::move(ev));
    }
    ASSERT_TRUE(complete()) << "drain timed out";
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      EXPECT_EQ(recv_from[r], expect_from[r]) << "pair " << r;
      EXPECT_EQ(byte_sum_from[r], expect_bytes_from[r]) << "bytes from " << r;
    }
    // Only now is it safe to park in the out-of-band barrier: every rank
    // has received everything addressed to it.
    env.bootstrap.barrier(env.rank);
  });
}

// Rendezvous pipelining: several overlapping buffer-request transfers with
// out-of-order FIN arrival must all complete with intact data.
TEST(PhotonStress, OverlappingRendezvousTransfers) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    constexpr int kStreams = 4;
    constexpr std::size_t kBytes = 50'000;
    std::vector<std::vector<std::byte>> bufs(kStreams);
    std::vector<BufferDescriptor> descs(kStreams);
    for (int s = 0; s < kStreams; ++s) {
      bufs[static_cast<std::size_t>(s)].resize(kBytes);
      descs[static_cast<std::size_t>(s)] =
          ph.register_buffer(bufs[static_cast<std::size_t>(s)].data(), kBytes)
              .value();
    }
    if (env.rank == 1) {
      std::vector<RequestId> rqs;
      for (int s = 0; s < kStreams; ++s) {
        auto rq = ph.post_recv_buffer_rq(0, descs[static_cast<std::size_t>(s)],
                                         static_cast<std::uint64_t>(s));
        ASSERT_TRUE(rq.ok());
        rqs.push_back(rq.value());
      }
      for (auto rq : rqs) ASSERT_EQ(ph.wait(rq, kWait), Status::Ok);
      for (int s = 0; s < kStreams; ++s) {
        auto expect = photon::testing::pattern(
            kBytes, static_cast<std::uint8_t>(s + 1));
        EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(s)].data(),
                              expect.data(), kBytes),
                  0)
            << "stream " << s;
      }
    } else {
      // Consume adverts in reverse order to force out-of-order completion.
      std::vector<RendezvousBuffer> rbs;
      for (int s = kStreams - 1; s >= 0; --s) {
        auto rb = ph.wait_send_rq(1, static_cast<std::uint64_t>(s), kWait);
        ASSERT_TRUE(rb.ok());
        rbs.push_back(rb.value());
      }
      std::vector<RequestId> puts;
      for (const auto& rb : rbs) {
        const auto s = static_cast<std::size_t>(rb.tag);
        auto p = photon::testing::pattern(kBytes,
                                          static_cast<std::uint8_t>(rb.tag + 1));
        std::memcpy(bufs[s].data(), p.data(), kBytes);
        auto put = ph.post_os_put(1, local_slice(descs[s], 0, kBytes), rb);
        ASSERT_TRUE(put.ok());
        puts.push_back(put.value());
      }
      for (std::size_t i = 0; i < puts.size(); ++i)
        ASSERT_EQ(ph.wait(puts[i], kWait), Status::Ok);
      for (const auto& rb : rbs) ASSERT_EQ(ph.send_fin(1, rb), Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
  });
}

// Mixed eager + rendezvous + signals interleaved on the same peer pair.
TEST(PhotonStress, MixedProtocolInterleaving) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    constexpr std::size_t kBig = 64'000;
    std::vector<std::byte> big(kBig);
    auto desc = ph.register_buffer(big.data(), big.size()).value();
    if (env.rank == 0) {
      // Eager burst, then a rendezvous transfer, then more eager.
      std::uint64_t v = 1;
      for (int i = 0; i < 10; ++i)
        ASSERT_EQ(ph.send_with_completion(1, std::as_bytes(std::span(&v, 1)),
                                          std::nullopt, 100 + i, kWait),
                  Status::Ok);
      auto rb = ph.wait_send_rq(1, 7, kWait);
      ASSERT_TRUE(rb.ok());
      auto p = photon::testing::pattern(kBig, 9);
      std::memcpy(big.data(), p.data(), kBig);
      auto put = ph.post_os_put(1, local_slice(desc, 0, kBig), rb.value());
      ASSERT_TRUE(put.ok());
      ASSERT_EQ(ph.wait(put.value(), kWait), Status::Ok);
      ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
      for (int i = 0; i < 10; ++i)
        ASSERT_EQ(ph.send_with_completion(1, std::as_bytes(std::span(&v, 1)),
                                          std::nullopt, 200 + i, kWait),
                  Status::Ok);
    } else {
      auto rq = ph.post_recv_buffer_rq(0, desc, 7);
      ASSERT_TRUE(rq.ok());
      int eager_before = 0, eager_after = 0;
      bool rndv_done = false;
      util::Deadline dl(kWait);
      while ((eager_before + eager_after < 20 || !rndv_done) && !dl.expired()) {
        if (!rndv_done) {
          bool done = false;
          ASSERT_EQ(ph.test(rq.value(), done), Status::Ok);
          if (done) {
            rndv_done = true;
            auto p = photon::testing::pattern(kBig, 9);
            EXPECT_EQ(std::memcmp(big.data(), p.data(), kBig), 0);
            continue;
          }
        }
        ProbeEvent ev;
        if (ph.wait_event(ev, 100'000'000ULL) == Status::Ok) {
          if (ev.id >= 200)
            ++eager_after;
          else
            ++eager_before;
        }
      }
      EXPECT_EQ(eager_before, 10);
      EXPECT_EQ(eager_after, 10);
      EXPECT_TRUE(rndv_done);
    }
    env.bootstrap.barrier(env.rank);
  });
}

}  // namespace
}  // namespace photon::core
