// API-surface tests: wait_any, backend calibrations, registration edge
// cases, and misuse handling.
#include <gtest/gtest.h>

#include <cstring>

#include "check/checker.hpp"
#include "core/photon.hpp"
#include "fabric/calibrations.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 3'000'000'000ULL;

void with_photon(std::uint32_t nranks,
                 const std::function<void(Env&, Photon&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    body(env, ph);
    env.bootstrap.barrier(env.rank);
  });
}

TEST(WaitAny, ReturnsFirstCompletedAndConsumesOnlyIt) {
  with_photon(2, [](Env& env, Photon& ph) {
    std::vector<std::byte> a(32768), b(32768);
    auto da = ph.register_buffer(a.data(), a.size()).value();
    auto db = ph.register_buffer(b.data(), b.size()).value();
    if (env.rank == 1) {
      auto r1 = ph.post_recv_buffer_rq(0, da, 1);
      auto r2 = ph.post_recv_buffer_rq(0, db, 2);
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      std::array<RequestId, 2> rqs{r1.value(), r2.value()};
      // The peer serves tag 2 first: index 1 completes first.
      auto idx = ph.wait_any(rqs, kWait);
      ASSERT_TRUE(idx.ok());
      EXPECT_EQ(idx.value(), 1u);
      env.bootstrap.barrier(env.rank);  // release the peer to serve tag 1
      // The other request is still live and completes later.
      ASSERT_EQ(ph.wait(rqs[0], kWait), Status::Ok);
    } else {
      for (std::uint64_t tag : {2, 1}) {
        auto rb = ph.wait_send_rq(1, tag, kWait);
        ASSERT_TRUE(rb.ok());
        ASSERT_EQ(ph.send_fin(1, rb.value()), Status::Ok);
        if (tag == 2) env.bootstrap.barrier(env.rank);  // let 2 land first
      }
    }
  });
}

TEST(WaitAny, EmptySetIsBadArgument) {
  with_photon(2, [](Env&, Photon& ph) {
    EXPECT_EQ(ph.wait_any({}, 1000).status(), Status::BadArgument);
  });
}

TEST(WaitAny, UnknownRequestIsBadArgument) {
  with_photon(2, [](Env&, Photon& ph) {
    std::array<RequestId, 1> rqs{0xDEAD};
    EXPECT_EQ(ph.wait_any(rqs, 1000).status(), Status::BadArgument);
  });
}

TEST(BackendCalibrations, ProfilesAreOrderedSensibly) {
  using fabric::Backend;
  const auto verbs = fabric::backend_calibration(Backend::kVerbs);
  const auto ugni = fabric::backend_calibration(Backend::kUgni);
  const auto sockets = fabric::backend_calibration(Backend::kSockets);
  EXPECT_LT(ugni.latency_ns, verbs.latency_ns);
  EXPECT_LT(verbs.latency_ns, sockets.latency_ns);
  EXPECT_LT(verbs.send_overhead_ns, sockets.send_overhead_ns);
  EXPECT_LT(verbs.per_byte_ns, sockets.per_byte_ns);
}

TEST(BackendCalibrations, NamesRoundTrip) {
  using fabric::Backend;
  for (auto b : {Backend::kVerbs, Backend::kUgni, Backend::kSockets})
    EXPECT_EQ(fabric::backend_from_name(fabric::backend_name(b)), b);
  EXPECT_THROW(fabric::backend_from_name("quantum"), std::invalid_argument);
}

TEST(BackendCalibrations, SocketsBackendStillDeliversPwc) {
  fabric::FabricConfig cfg;
  cfg.nranks = 2;
  cfg.wire = fabric::backend_calibration(fabric::Backend::kSockets);
  Cluster cluster(cfg);
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    if (env.rank == 0) {
      std::uint64_t v = 11;
      ASSERT_EQ(ph.send_with_completion(1, std::as_bytes(std::span(&v, 1)),
                                        std::nullopt, 5, kWait),
                Status::Ok);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 5u);
      // Socket-class latency must show in the arrival time.
      EXPECT_GE(env.clock().now(), 25'000u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(Registration, UnregisterInvalidatesDescriptor) {
  with_photon(2, [](Env& env, Photon& ph) {
    // This test exercises deliberate misuse (double unregister, dead
    // descriptor); keep the protocol sanitizer out of the way.
    env.nic.checker().set_enabled(false);
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    ASSERT_EQ(ph.unregister_buffer(desc), Status::Ok);
    EXPECT_EQ(ph.unregister_buffer(desc), Status::InvalidKey);
    if (env.rank == 0) {
      // Local use of the dead descriptor fails synchronously.
      EXPECT_EQ(ph.try_put_with_completion(1, local_slice(desc, 0, 64),
                                           RemoteSlice{desc.addr, 64, desc.rkey},
                                           std::nullopt, std::nullopt),
                Status::InvalidKey);
    }
  });
}

TEST(Registration, RemoteUseOfDeadRkeyIsAsyncError) {
  with_photon(2, [](Env& env, Photon& ph) {
    // Deliberate use of a torn-down rkey; the sanitizer would (correctly)
    // flag it, but this test is about the async error path.
    env.nic.checker().set_enabled(false);
    std::vector<std::byte> buf(256);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    // Target side tears its buffer down after publishing.
    if (env.rank == 1) ph.unregister_buffer(desc);
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      ASSERT_EQ(ph.put_with_completion(1, local_slice(desc, 0, 64),
                                       slice(peers[1], 0, 64), std::nullopt,
                                       std::nullopt, kWait),
                Status::Ok);
      util::Deadline dl(kWait);
      std::optional<Status> err;
      while (!err && !dl.expired()) err = ph.probe_error();
      ASSERT_TRUE(err.has_value());
      EXPECT_EQ(*err, Status::InvalidKey);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(Misuse, BadRankArgumentsRejected) {
  with_photon(2, [](Env&, Photon& ph) {
    std::vector<std::byte> p(8);
    EXPECT_EQ(ph.try_send_with_completion(99, p, std::nullopt, 1),
              Status::BadArgument);
    EXPECT_EQ(ph.try_signal(99, 1), Status::BadArgument);
    EXPECT_EQ(ph.post_recv_buffer_rq(99, BufferDescriptor{}, 1).status(),
              Status::BadArgument);
  });
}

TEST(Flush, DrainsInFlightOpsAndDeferredNotifies) {
  Cluster cluster(photon::testing::timed_fabric(2));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, Config{});
    std::vector<std::byte> buf(8192);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    if (env.rank == 0) {
      // A batch of signed puts plus a GWC whose notify is deferred work.
      for (std::uint64_t i = 0; i < 16; ++i)
        ASSERT_EQ(ph.put_with_completion(1, local_slice(desc, 0, 512),
                                         slice(peers[1], 0, 512), i,
                                         std::nullopt, kWait),
                  Status::Ok);
      ASSERT_EQ(ph.get_with_completion(1, local_mut_slice(desc, 0, 512),
                                       slice(peers[1], 0, 512), 99, 100, kWait),
                Status::Ok);
      ASSERT_EQ(ph.flush(1, kWait), Status::Ok);
      EXPECT_EQ(env.nic.in_flight(1), 0u);
      // All local ids are now waiting in the probe queue.
      std::size_t locals = 0;
      while (ph.probe_local()) ++locals;
      EXPECT_EQ(locals, 17u);
    } else {
      // The GWC notify must arrive (flush pushed the deferred signal out).
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 100u);
      EXPECT_TRUE(ev.from_get);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(Flush, BadRankRejected) {
  with_photon(2, [](Env&, Photon& ph) {
    EXPECT_EQ(ph.flush(99, 1000), Status::BadArgument);
  });
}

}  // namespace
}  // namespace photon::core
