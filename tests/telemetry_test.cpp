// Telemetry registry: histogram edge cases, snapshot merging, probes, and
// end-to-end per-op virtual-latency recording through a live Photon cluster.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "telemetry/hooks.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/oplat.hpp"
#include "test_helpers.hpp"

namespace photon::telemetry {
namespace {

using photon::testing::pattern;
using photon::testing::timed_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 3'000'000'000ULL;

// ---- histogram edge cases ---------------------------------------------------

TEST(LatencyHistogram, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.percentile(0), 0u);
  EXPECT_EQ(s.percentile(50), 0u);
  EXPECT_EQ(s.percentile(99.9), 0u);
  EXPECT_EQ(s.percentile(100), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleEveryPercentileIsItsBucketBound) {
  LatencyHistogram h;
  h.record(100);  // bucket 7: [64, 127]
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 100.0);
  // With one sample, every percentile is the upper bound of its bucket.
  EXPECT_EQ(s.percentile(0), 127u);
  EXPECT_EQ(s.percentile(50), 127u);
  EXPECT_EQ(s.percentile(100), 127u);
}

TEST(LatencyHistogram, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of((1ULL << 62) - 1), 62u);
}

TEST(LatencyHistogram, OverflowBucketAbsorbsHugeValues) {
  LatencyHistogram h;
  EXPECT_EQ(LatencyHistogram::bucket_of(1ULL << 62), 63u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ULL), 63u);
  h.record(1ULL << 62);
  h.record(~0ULL);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts[63], 2u);
  EXPECT_EQ(s.total, 2u);
  // The overflow bucket has no finite upper bound; percentile saturates.
  EXPECT_EQ(s.percentile(50), ~0ULL);
}

TEST(LatencyHistogram, PercentileUpperBoundSemantics) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(10);  // bucket 4: [8, 15]
  h.record(1000);                             // bucket 10: [512, 1023]
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.percentile(50), 15u);
  EXPECT_EQ(s.percentile(98), 15u);
  EXPECT_EQ(s.percentile(100), 1023u);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * 1000 + i));
    });
  for (auto& t : ts) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_sum = 0;
  for (const auto c : s.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, s.total);
}

// ---- registry + snapshot ----------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableObjects) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").get(), 3u);
  Gauge& g = reg.gauge("hw");
  g.max_of(10);
  g.max_of(7);  // lower: no effect
  EXPECT_EQ(reg.gauge("hw").get(), 10);
}

TEST(MetricsRegistry, MergeOfDisjointRegistriesUnionsEverything) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("only.a").add(1);
  a.histogram("hist.a").record(8);
  b.counter("only.b").add(2);
  b.histogram("hist.b").record(16);
  b.gauge("g.b").set(5);

  Snapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.counter_or("only.a", 0), 1u);
  EXPECT_EQ(s.counter_or("only.b", 0), 2u);
  EXPECT_EQ(s.histograms.at("hist.a").total, 1u);
  EXPECT_EQ(s.histograms.at("hist.b").total, 1u);
  EXPECT_EQ(s.gauges.at("g.b"), 5);
}

TEST(MetricsRegistry, MergeOverlapAddsCountersMaxesGaugesMergesHists) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n").add(10);
  b.counter("n").add(5);
  a.gauge("hw").set(3);
  b.gauge("hw").set(9);
  a.histogram("h").record(4);
  b.histogram("h").record(400);

  Snapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.counter_or("n", 0), 15u);
  EXPECT_EQ(s.gauges.at("hw"), 9);
  EXPECT_EQ(s.histograms.at("h").total, 2u);
  EXPECT_EQ(s.histograms.at("h").sum, 404u);
}

TEST(MetricsRegistry, MergedHistogramByPrefix) {
  MetricsRegistry reg;
  reg.histogram("photon.vlat.local.put.peer0").record(10);
  reg.histogram("photon.vlat.local.eager.peer1").record(20);
  reg.histogram("photon.vlat.remote.put.peer0").record(30);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.merged_histogram("photon.vlat.local.").total, 2u);
  EXPECT_EQ(s.merged_histogram("photon.vlat.remote.").total, 1u);
  EXPECT_EQ(s.merged_histogram("photon.vlat.").total, 3u);
  EXPECT_EQ(s.merged_histogram("nothing.").total, 0u);
}

TEST(MetricsRegistry, ProbesReadBackingStoreAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t backing = 7;
  int token = 0;  // probe owner identity
  reg.register_probe(&token, "probe.col", [&backing] { return backing; });
  EXPECT_EQ(reg.snapshot().counter_or("probe.col", 0), 7u);
  backing = 42;  // registry is a view, not a copy
  EXPECT_EQ(reg.snapshot().counter_or("probe.col", 0), 42u);

  // Same-name probes sum (one per rank), and add to an owned counter too.
  reg.counter("probe.col").add(100);
  std::uint64_t backing2 = 1;
  reg.register_probe(&token, "probe.col", [&backing2] { return backing2; });
  EXPECT_EQ(reg.snapshot().counter_or("probe.col", 0), 143u);

  reg.unregister_probes(&token);
  EXPECT_EQ(reg.snapshot().counter_or("probe.col", 0), 100u);
}

TEST(MetricsRegistry, ResetZeroesMetricsButKeepsProbes) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h").record(9);
  std::uint64_t backing = 3;
  int token = 0;
  reg.register_probe(&token, "p", [&backing] { return backing; });
  reg.reset();
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counter_or("c", 99), 0u);
  EXPECT_EQ(s.histograms.at("h").total, 0u);
  EXPECT_EQ(s.counter_or("p", 0), 3u);
  reg.unregister_probes(&token);
}

TEST(MetricsRegistry, DisabledByDefaultAndRecorderHonorsIt) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  OpLatencyRecorder rec;
  rec.bind(reg, 2);
  rec.record_local(OpClass::kPut, 1, 100);  // gated out: registry disabled
  EXPECT_EQ(reg.snapshot().merged_histogram("photon.vlat.").total, 0u);
  reg.set_enabled(true);
  rec.record_local(OpClass::kPut, 1, 100);
  rec.record_remote(OpClass::kEager, 0, 50);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.histograms.at("photon.vlat.local.put.peer1").total, 1u);
  EXPECT_EQ(s.histograms.at("photon.vlat.remote.eager.peer0").total, 1u);
}

// ---- end-to-end: Photon records per-op virtual latencies --------------------

TEST(TelemetryEndToEnd, PhotonPopulatesLocalAndRemoteLatencies) {
#if !PHOTON_TELEMETRY_ENABLED
  GTEST_SKIP() << "data-path hooks compiled out (-DPHOTON_TELEMETRY=OFF)";
#endif
  MetricsRegistry reg;
  reg.set_enabled(true);
  Cluster cluster(timed_fabric(2));
  cluster.run([&](Env& env) {
    core::Config cfg;
    cfg.metrics = &reg;
    core::Photon ph(env.nic, env.bootstrap, cfg);
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());
    auto all = ph.exchange_descriptors(desc.value());

    if (env.rank == 0) {
      // One direct put (with remote event) + a few eager sends.
      std::memcpy(buf.data(), pattern(512).data(), 512);
      ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc.value(), 0, 512),
                                       core::slice(all[1], 512, 512), 1, 2),
                Status::Ok);
      core::LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(ph.send_with_completion(1, pattern(64),
                                          10 + static_cast<std::uint64_t>(i),
                                          20 + static_cast<std::uint64_t>(i),
                                          kWait),
                  Status::Ok);
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        core::ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
    }
    env.bootstrap.barrier(env.rank);
  });

  const Snapshot s = reg.snapshot();
  // Rank 0 completed 1 put + 3 eager sends locally.
  EXPECT_EQ(s.histograms.at("photon.vlat.local.put.peer1").total, 1u);
  EXPECT_EQ(s.histograms.at("photon.vlat.local.eager.peer1").total, 3u);
  // Rank 1 consumed the matching remote deliveries, attributed to rank 0.
  EXPECT_EQ(s.histograms.at("photon.vlat.remote.put.peer0").total, 1u);
  EXPECT_EQ(s.histograms.at("photon.vlat.remote.eager.peer0").total, 3u);
  // Virtual latencies are nonzero under the timed fabric: the wire model
  // charges real virtual nanoseconds between post and delivery.
  EXPECT_GT(s.merged_histogram("photon.vlat.remote.").sum, 0u);
}

}  // namespace
}  // namespace photon::telemetry
