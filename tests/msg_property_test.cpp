// Property sweeps for the two-sided baseline: protocol choice must be
// invisible to correctness across sizes, thresholds, and credit settings.
#include <gtest/gtest.h>

#include <cstring>

#include "msg/engine.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace photon::msg {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 3'000'000'000ULL;

void with_engine(std::uint32_t nranks, const Config& cfg,
                 const std::function<void(Env&, Engine&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Engine eng(env.nic, env.bootstrap, cfg);
    body(env, eng);
  });
}

// size x threshold matrix: both eager and rendezvous paths, including the
// exact threshold boundary, must round-trip intact.
class SizeThreshold
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SizeThreshold, RoundTripsIntact) {
  const auto [size, threshold] = GetParam();
  Config cfg;
  cfg.eager_threshold = threshold;
  with_engine(2, cfg, [&, size = size](Env& env, Engine& eng) {
    if (env.rank == 0) {
      auto p = pattern(size, static_cast<std::uint8_t>(size * 7 + 1));
      ASSERT_EQ(eng.send(1, 5, p, kWait), Status::Ok);
    } else {
      std::vector<std::byte> out(size);
      auto info = eng.recv(0, 5, out, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info.value().len, size);
      auto p = pattern(size, static_cast<std::uint8_t>(size * 7 + 1));
      if (size != 0) {  // empty vectors may hand memcmp a null pointer (UB)
        EXPECT_EQ(std::memcmp(out.data(), p.data(), size), 0);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SizeThreshold,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 100, 1024, 4096,
                                                      4097, 65536),
                       ::testing::Values<std::size_t>(1024, 4096)));

TEST(MsgProperty, ManyToOneStormDeliversEverything) {
  with_engine(5, Config{}, [](Env& env, Engine& eng) {
    constexpr int kPer = 100;
    if (env.rank == 0) {
      std::uint64_t sum = 0;
      for (int i = 0; i < 4 * kPer; ++i) {
        std::uint64_t v = 0;
        auto info = eng.recv(kAnySource, kAnyTag,
                             std::as_writable_bytes(std::span(&v, 1)), kWait);
        ASSERT_TRUE(info.ok());
        sum += v;
      }
      std::uint64_t expect = 0;
      for (std::uint64_t r = 1; r <= 4; ++r)
        for (int i = 0; i < kPer; ++i) expect += r * 1000 + i;
      EXPECT_EQ(sum, expect);
    } else {
      for (int i = 0; i < kPer; ++i) {
        std::uint64_t v = env.rank * 1000 + static_cast<std::uint64_t>(i);
        ASSERT_EQ(eng.send(0, env.rank, std::as_bytes(std::span(&v, 1)), kWait),
                  Status::Ok);
      }
    }
  });
}

TEST(MsgProperty, PerPeerOrderingIsFifoWithinTag) {
  with_engine(2, Config{}, [](Env& env, Engine& eng) {
    constexpr int kN = 200;
    if (env.rank == 0) {
      for (int i = 0; i < kN; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(i);
        ASSERT_EQ(eng.send(1, 1, std::as_bytes(std::span(&v, 1)), kWait),
                  Status::Ok);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::uint64_t v = 0;
        ASSERT_TRUE(
            eng.recv(0, 1, std::as_writable_bytes(std::span(&v, 1)), kWait)
                .ok());
        ASSERT_EQ(v, static_cast<std::uint64_t>(i));
      }
    }
  });
}

// Randomized bidirectional mixed-size traffic with seeded schedules; total
// byte checksums must match on both sides.
TEST(MsgProperty, RandomizedBidirectionalTraffic) {
  with_engine(2, Config{}, [](Env& env, Engine& eng) {
    constexpr int kN = 120;
    util::Xoshiro256 rng(99);  // same schedule on both ranks
    std::vector<std::size_t> sizes(kN);
    for (auto& s : sizes) s = rng.below(20000) + 1;  // crosses the threshold

    const fabric::Rank peer = 1 - env.rank;
    std::uint64_t sent_sum = 0, recv_sum = 0;
    std::vector<std::byte> out(20001);
    for (int i = 0; i < kN; ++i) {
      const std::size_t size = sizes[static_cast<std::size_t>(i)];
      if (static_cast<int>(env.rank) == i % 2) {
        auto p = pattern(size, static_cast<std::uint8_t>(i));
        for (auto b : p) sent_sum += static_cast<std::uint8_t>(b);
        ASSERT_EQ(eng.send(peer, static_cast<Tag>(i), p, kWait), Status::Ok);
      } else {
        auto info =
            eng.recv(peer, static_cast<Tag>(i), std::span(out), kWait);
        ASSERT_TRUE(info.ok());
        ASSERT_EQ(info.value().len, size);
        for (std::size_t b = 0; b < size; ++b)
          recv_sum += static_cast<std::uint8_t>(out[b]);
        auto p = pattern(size, static_cast<std::uint8_t>(i));
        std::uint64_t expect = 0;
        for (auto x : p) expect += static_cast<std::uint8_t>(x);
        ASSERT_EQ(recv_sum == 0 ? expect : expect, expect);  // sanity
      }
    }
    // Cross-check totals through the bootstrap channel.
    struct Sums {
      std::uint64_t sent, recv;
    } mine{sent_sum, recv_sum};
    auto all = env.bootstrap.all_gather(env.rank, mine);
    EXPECT_EQ(all[0].sent, all[1].recv);
    EXPECT_EQ(all[1].sent, all[0].recv);
  });
}

class CreditSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CreditSweep, ThroughputCorrectAtEveryCreditLevel) {
  Config cfg;
  cfg.send_credits = GetParam();
  with_engine(2, cfg, [&](Env& env, Engine& eng) {
    constexpr int kN = 150;
    if (env.rank == 0) {
      std::uint64_t v;
      for (int i = 0; i < kN; ++i) {
        v = static_cast<std::uint64_t>(i) * 3;
        ASSERT_EQ(eng.send(1, 1, std::as_bytes(std::span(&v, 1)), kWait),
                  Status::Ok);
      }
    } else {
      std::uint64_t v = 0;
      for (int i = 0; i < kN; ++i) {
        ASSERT_TRUE(
            eng.recv(0, 1, std::as_writable_bytes(std::span(&v, 1)), kWait)
                .ok());
        ASSERT_EQ(v, static_cast<std::uint64_t>(i) * 3);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Credits, CreditSweep, ::testing::Values(2, 3, 8, 64));

TEST(MsgProperty, RendezvousTruncationPullsOnlyWhatFits) {
  with_engine(2, Config{}, [](Env& env, Engine& eng) {
    constexpr std::size_t kBig = 100'000;
    if (env.rank == 0) {
      auto p = pattern(kBig, 4);
      ASSERT_EQ(eng.send(1, 1, p, kWait), Status::Ok);
    } else {
      std::vector<std::byte> out(10'000);
      auto info = eng.recv(0, 1, out, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_TRUE(info.value().truncated);
      EXPECT_EQ(info.value().len, 10'000u);
      auto p = pattern(kBig, 4);
      EXPECT_EQ(std::memcmp(out.data(), p.data(), 10'000), 0);
    }
  });
}

TEST(MsgProperty, InterleavedTagsWithSharedWildcardReceiver) {
  with_engine(3, Config{}, [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      int from1 = 0, from2 = 0;
      for (int i = 0; i < 40; ++i) {
        std::uint64_t v = 0;
        auto info = eng.recv(kAnySource, kAnyTag,
                             std::as_writable_bytes(std::span(&v, 1)), kWait);
        ASSERT_TRUE(info.ok());
        if (info.value().source == 1) {
          ASSERT_EQ(v, static_cast<std::uint64_t>(from1++));
        } else {
          ASSERT_EQ(v, static_cast<std::uint64_t>(from2++));
        }
      }
      EXPECT_EQ(from1, 20);
      EXPECT_EQ(from2, 20);
    } else {
      for (std::uint64_t i = 0; i < 20; ++i) {
        ASSERT_EQ(eng.send(0, env.rank * 7, std::as_bytes(std::span(&i, 1)),
                           kWait),
                  Status::Ok);
      }
    }
  });
}

TEST(MsgProperty, SelfSendRoundTrip) {
  with_engine(2, Config{}, [](Env& env, Engine& eng) {
    auto rq = eng.irecv(env.rank, 9, {});
    ASSERT_TRUE(rq.ok());
    std::uint64_t v = 5;
    ASSERT_EQ(eng.send(env.rank, 9, std::as_bytes(std::span(&v, 1)), kWait),
              Status::Ok);
    RecvInfo info;
    // Truncated: the irecv posted a zero-byte landing buffer.
    EXPECT_EQ(eng.wait(rq.value(), &info, kWait), Status::Truncated);
    EXPECT_EQ(info.source, env.rank);
  });
}

}  // namespace
}  // namespace photon::msg
