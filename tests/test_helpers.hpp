// Shared helpers for the test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fabric/fabric.hpp"
#include "runtime/cluster.hpp"

namespace photon::testing {

/// Fabric config with the wire model disabled (deterministic, zero-cost
/// virtual time) — used by unit tests that check mechanics, not timing.
inline fabric::FabricConfig quiet_fabric(std::uint32_t nranks) {
  fabric::FabricConfig cfg;
  cfg.nranks = nranks;
  cfg.wire.enabled = false;
  return cfg;
}

/// Fabric config with the default (enabled) wire model.
inline fabric::FabricConfig timed_fabric(std::uint32_t nranks) {
  fabric::FabricConfig cfg;
  cfg.nranks = nranks;
  return cfg;
}

/// Deterministic fill pattern for payload round-trip checks.
inline std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  return v;
}

}  // namespace photon::testing
