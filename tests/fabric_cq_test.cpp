// Completion-queue virtual-arrival semantics (the LogGOPSim contract).
#include <gtest/gtest.h>

#include "fabric/completion_queue.hpp"

namespace photon::fabric {
namespace {

Completion mk(std::uint64_t wr, std::uint64_t vt, Rank peer = 1) {
  Completion c;
  c.wr_id = wr;
  c.vtime = vt;
  c.peer = peer;
  return c;
}

TEST(CompletionQueueVt, PollReadyHidesFutureEvents) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 1000)));
  Completion c;
  EXPECT_EQ(cq.poll_ready(c, 999), Status::NotFound);
  EXPECT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
}

TEST(CompletionQueueVt, PollReadySkipsFutureHeadForArrivedLater) {
  CompletionQueue cq(16);
  // Pushed in real-time order, but the head is "later" in virtual time
  // (different sources): the arrived event must be reachable.
  ASSERT_TRUE(cq.push(mk(1, 5000, 2)));
  ASSERT_TRUE(cq.push(mk(2, 100, 3)));
  Completion c;
  ASSERT_EQ(cq.poll_ready(c, 200), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
  EXPECT_EQ(cq.poll_ready(c, 200), Status::NotFound);
}

TEST(CompletionQueueVt, PollReadyPreservesPerSourceOrder) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 100, 2)));
  ASSERT_TRUE(cq.push(mk(2, 200, 2)));
  Completion c;
  ASSERT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  ASSERT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
}

TEST(CompletionQueueVt, PollMinReturnsEarliestArrival) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 5000)));
  ASSERT_TRUE(cq.push(mk(2, 100)));
  ASSERT_TRUE(cq.push(mk(3, 3000)));
  Completion c;
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 3u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  EXPECT_EQ(cq.poll_min(c), Status::NotFound);
}

TEST(CompletionQueueVt, MinVtimeReportsEarliest) {
  CompletionQueue cq(16);
  EXPECT_FALSE(cq.min_vtime().has_value());
  cq.push(mk(1, 700));
  cq.push(mk(2, 300));
  EXPECT_EQ(cq.min_vtime().value(), 300u);
}

TEST(CompletionQueueVt, WaitAnyReturnsQueuedImmediately) {
  CompletionQueue cq(16);
  cq.push(mk(1, 99999));
  Completion c;
  EXPECT_EQ(cq.wait_any(c, 1'000'000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
}

TEST(CompletionQueueVt, WaitAnyTimesOutWhenEmpty) {
  CompletionQueue cq(16);
  Completion c;
  EXPECT_EQ(cq.wait_any(c, 1'000'000), Status::NotFound);
}

TEST(CompletionQueueVt, OverflowDropsAndSticks) {
  CompletionQueue cq(2);
  EXPECT_TRUE(cq.push(mk(1, 1)));
  EXPECT_TRUE(cq.push(mk(2, 2)));
  EXPECT_FALSE(cq.push(mk(3, 3)));
  EXPECT_EQ(cq.overflows(), 1u);
  Completion c;
  EXPECT_EQ(cq.poll_ready(c, 100), Status::QueueFull);
  EXPECT_EQ(cq.poll_min(c), Status::QueueFull);
  cq.clear_overflow();
  EXPECT_EQ(cq.poll_min(c), Status::Ok);
}

TEST(CompletionQueueVt, SizeTracksContents) {
  CompletionQueue cq(8);
  EXPECT_EQ(cq.size(), 0u);
  cq.push(mk(1, 1));
  cq.push(mk(2, 2));
  EXPECT_EQ(cq.size(), 2u);
  Completion c;
  cq.poll_min(c);
  EXPECT_EQ(cq.size(), 1u);
}

}  // namespace
}  // namespace photon::fabric
