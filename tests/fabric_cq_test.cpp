// Completion-queue virtual-arrival semantics (the LogGOPSim contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "fabric/completion_queue.hpp"
#include "util/rng.hpp"

namespace photon::fabric {
namespace {

Completion mk(std::uint64_t wr, std::uint64_t vt, Rank peer = 1) {
  Completion c;
  c.wr_id = wr;
  c.vtime = vt;
  c.peer = peer;
  return c;
}

TEST(CompletionQueueVt, PollReadyHidesFutureEvents) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 1000)));
  Completion c;
  EXPECT_EQ(cq.poll_ready(c, 999), Status::NotFound);
  EXPECT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
}

TEST(CompletionQueueVt, PollReadySkipsFutureHeadForArrivedLater) {
  CompletionQueue cq(16);
  // Pushed in real-time order, but the head is "later" in virtual time
  // (different sources): the arrived event must be reachable.
  ASSERT_TRUE(cq.push(mk(1, 5000, 2)));
  ASSERT_TRUE(cq.push(mk(2, 100, 3)));
  Completion c;
  ASSERT_EQ(cq.poll_ready(c, 200), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
  EXPECT_EQ(cq.poll_ready(c, 200), Status::NotFound);
}

TEST(CompletionQueueVt, PollReadyPreservesPerSourceOrder) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 100, 2)));
  ASSERT_TRUE(cq.push(mk(2, 200, 2)));
  Completion c;
  ASSERT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  ASSERT_EQ(cq.poll_ready(c, 1000), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
}

TEST(CompletionQueueVt, PollMinReturnsEarliestArrival) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 5000)));
  ASSERT_TRUE(cq.push(mk(2, 100)));
  ASSERT_TRUE(cq.push(mk(3, 3000)));
  Completion c;
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 3u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  EXPECT_EQ(cq.poll_min(c), Status::NotFound);
}

TEST(CompletionQueueVt, MinVtimeReportsEarliest) {
  CompletionQueue cq(16);
  EXPECT_FALSE(cq.min_vtime().has_value());
  cq.push(mk(1, 700));
  cq.push(mk(2, 300));
  EXPECT_EQ(cq.min_vtime().value(), 300u);
}

TEST(CompletionQueueVt, WaitAnyReturnsQueuedImmediately) {
  CompletionQueue cq(16);
  cq.push(mk(1, 99999));
  Completion c;
  EXPECT_EQ(cq.wait_any(c, 1'000'000), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
}

TEST(CompletionQueueVt, WaitAnyTimesOutWhenEmpty) {
  CompletionQueue cq(16);
  Completion c;
  EXPECT_EQ(cq.wait_any(c, 1'000'000), Status::NotFound);
}

TEST(CompletionQueueVt, OverflowDropsAndSticks) {
  CompletionQueue cq(2);
  EXPECT_TRUE(cq.push(mk(1, 1)));
  EXPECT_TRUE(cq.push(mk(2, 2)));
  EXPECT_FALSE(cq.push(mk(3, 3)));
  EXPECT_EQ(cq.overflows(), 1u);
  Completion c;
  EXPECT_EQ(cq.poll_ready(c, 100), Status::QueueFull);
  EXPECT_EQ(cq.poll_min(c), Status::QueueFull);
  cq.clear_overflow();
  EXPECT_EQ(cq.poll_min(c), Status::Ok);
}

TEST(CompletionQueueVt, SizeTracksContents) {
  CompletionQueue cq(8);
  EXPECT_EQ(cq.size(), 0u);
  cq.push(mk(1, 1));
  cq.push(mk(2, 2));
  EXPECT_EQ(cq.size(), 2u);
  Completion c;
  cq.poll_min(c);
  EXPECT_EQ(cq.size(), 1u);
}

// Equal vtimes must pop in global push order, which in particular keeps
// each source's events FIFO (sources push in nondecreasing vtime order).
TEST(CompletionQueueVt, PerSourceFifoPreservedUnderVtimeTies) {
  CompletionQueue cq(64);
  // Interleave two sources, all at the same vtime.
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cq.push(mk(/*wr=*/2 * i, /*vt=*/500, /*peer=*/2)));
    ASSERT_TRUE(cq.push(mk(/*wr=*/2 * i + 1, /*vt=*/500, /*peer=*/3)));
  }
  Completion c;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(cq.poll_ready(c, 1000), Status::Ok);
    EXPECT_EQ(c.wr_id, i) << "tie broken out of push order";
  }
}

TEST(CompletionQueueVt, PollMinTiesBrokenInPushOrder) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 300, 2)));
  ASSERT_TRUE(cq.push(mk(2, 300, 3)));
  ASSERT_TRUE(cq.push(mk(3, 100, 4)));
  Completion c;
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 3u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
}

// Randomized: draining with poll_min yields a globally nondecreasing vtime
// sequence and per-source FIFO, whatever the push order across sources.
TEST(CompletionQueueVt, PollMinGlobalVtimeOrderRandomized) {
  util::Xoshiro256 rng(99);
  CompletionQueue cq(4096);
  constexpr int kSources = 5;
  std::uint64_t next_vt[kSources] = {};
  std::uint64_t wr = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto s = static_cast<Rank>(rng.next() % kSources);
    next_vt[s] += rng.next() % 50;  // per-source nondecreasing
    ASSERT_TRUE(cq.push(mk(wr++, next_vt[s], s)));
  }
  Completion c;
  std::uint64_t last_vt = 0;
  std::uint64_t last_wr[kSources];
  std::fill(std::begin(last_wr), std::end(last_wr), ~std::uint64_t{0});
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(cq.poll_min(c), Status::Ok);
    EXPECT_GE(c.vtime, last_vt) << "poll_min vtime went backwards";
    last_vt = c.vtime;
    if (last_wr[c.peer] != ~std::uint64_t{0}) {
      EXPECT_GT(c.wr_id, last_wr[c.peer]) << "per-source FIFO broken";
    }
    last_wr[c.peer] = c.wr_id;
  }
  EXPECT_EQ(cq.poll_min(c), Status::NotFound);
}

// A push with a smaller vtime than events already promoted to the ready
// FIFO must still be found by poll_min (heap vs FIFO interaction).
TEST(CompletionQueueVt, PollMinSeesLateSmallVtimePushAfterPromotion) {
  CompletionQueue cq(16);
  ASSERT_TRUE(cq.push(mk(1, 10)));
  ASSERT_TRUE(cq.push(mk(2, 20)));
  ASSERT_TRUE(cq.push(mk(3, 50)));
  Completion c;
  // Promote all three into the ready FIFO, consume only the first.
  ASSERT_EQ(cq.poll_ready(c, 100), Status::Ok);
  EXPECT_EQ(c.wr_id, 1u);
  // Late producer publishes an earlier arrival than the FIFO's remainder.
  ASSERT_TRUE(cq.push(mk(4, 30)));
  EXPECT_EQ(cq.min_vtime().value(), 20u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 2u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 4u);  // 30 before 50
  ASSERT_EQ(cq.poll_min(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 3u);
}

TEST(CompletionQueueVt, MinVtimeExactThroughMixedOperations) {
  CompletionQueue cq(64);
  EXPECT_FALSE(cq.min_vtime().has_value());
  cq.push(mk(1, 700));
  EXPECT_EQ(cq.min_vtime().value(), 700u);
  cq.push(mk(2, 300));
  EXPECT_EQ(cq.min_vtime().value(), 300u);
  cq.push(mk(3, 500));
  Completion c;
  ASSERT_EQ(cq.poll_ready(c, 400), Status::Ok);  // pops 300
  EXPECT_EQ(cq.min_vtime().value(), 500u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);  // pops 500
  EXPECT_EQ(cq.min_vtime().value(), 700u);
  ASSERT_EQ(cq.poll_min(c), Status::Ok);  // pops 700
  EXPECT_FALSE(cq.min_vtime().has_value());
}

TEST(CompletionQueueVt, BatchDrainsArrivedInOrderUpToCapacity) {
  CompletionQueue cq(64);
  ASSERT_TRUE(cq.push(mk(1, 400)));
  ASSERT_TRUE(cq.push(mk(2, 100)));
  ASSERT_TRUE(cq.push(mk(3, 9000)));  // future
  ASSERT_TRUE(cq.push(mk(4, 200)));
  std::vector<Completion> out(2);
  std::size_t n = 0;
  ASSERT_EQ(cq.poll_ready_batch(out, n, 500), Status::Ok);
  ASSERT_EQ(n, 2u);  // capped by the span
  EXPECT_EQ(out[0].wr_id, 2u);
  EXPECT_EQ(out[1].wr_id, 4u);
  ASSERT_EQ(cq.poll_ready_batch(out, n, 500), Status::Ok);
  ASSERT_EQ(n, 1u);  // only one arrived event left
  EXPECT_EQ(out[0].wr_id, 1u);
  EXPECT_EQ(cq.poll_ready_batch(out, n, 500), Status::NotFound);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(cq.size(), 1u);  // the future event stays queued
}

TEST(CompletionQueueVt, BatchSeesEventsPushedAfterPartialDrain) {
  CompletionQueue cq(64);
  for (std::uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(cq.push(mk(i, 10 * i)));
  std::vector<Completion> out(4);
  std::size_t n = 0;
  ASSERT_EQ(cq.poll_ready_batch(out, n, 1000), Status::Ok);
  ASSERT_EQ(n, 4u);
  ASSERT_TRUE(cq.push(mk(100, 5)));  // earlier than the two left over
  ASSERT_EQ(cq.poll_ready_batch(out, n, 1000), Status::Ok);
  ASSERT_EQ(n, 3u);
  // Leftover FIFO first (40, 50), then the promoted late push.
  EXPECT_EQ(out[0].wr_id, 4u);
  EXPECT_EQ(out[1].wr_id, 5u);
  EXPECT_EQ(out[2].wr_id, 100u);
}

TEST(CompletionQueueVt, BatchReportsOverflowLatch) {
  CompletionQueue cq(2);
  EXPECT_TRUE(cq.push(mk(1, 1)));
  EXPECT_TRUE(cq.push(mk(2, 2)));
  EXPECT_FALSE(cq.push(mk(3, 3)));
  std::vector<Completion> out(8);
  std::size_t n = 7;
  EXPECT_EQ(cq.poll_ready_batch(out, n, 100), Status::QueueFull);
  EXPECT_EQ(n, 0u);
  cq.clear_overflow();
  EXPECT_EQ(cq.poll_ready_batch(out, n, 100), Status::Ok);
  EXPECT_EQ(n, 2u);
}

// wait_any must not miss wakeups from concurrent pushers now that push
// skips notify_one when no waiter is registered. Run under TSan in CI.
TEST(CompletionQueueVt, WaitAnyWithConcurrentPushers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  CompletionQueue cq(kProducers * kPerProducer);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i)
        cq.push(mk(static_cast<std::uint64_t>(p) * kPerProducer + i, 1000 + i,
                   static_cast<Rank>(p)));  // depth == total, cannot overflow
    });
  }
  go.store(true, std::memory_order_release);
  Completion c;
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(cq.wait_any(c, 10'000'000'000ULL), Status::Ok) << "event " << i;
  for (auto& t : producers) t.join();
  EXPECT_EQ(cq.size(), 0u);
  EXPECT_EQ(cq.wait_any(c, 1'000'000), Status::NotFound);
}

// min_vtime is advisory under concurrency but must settle to the exact
// minimum once producers quiesce.
TEST(CompletionQueueVt, MinVtimeExactAfterConcurrentPushesQuiesce) {
  CompletionQueue cq(1024);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 100; ++i)
        cq.push(mk(i, 10'000 + static_cast<std::uint64_t>(p * 100) + i,
                   static_cast<Rank>(p)));
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(cq.min_vtime().value(), 10'000u);
}

}  // namespace
}  // namespace photon::fabric
