#include <gtest/gtest.h>

#include <array>

#include "fabric/registry.hpp"

namespace photon::fabric {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  MemoryRegistry reg;
  std::array<std::byte, 1024> buf{};
};

TEST_F(RegistryTest, RegisterReturnsDistinctKeys) {
  auto a = reg.register_memory(buf.data(), buf.size(), kAccessAll);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a.value().lkey, a.value().rkey);
  EXPECT_NE(a.value().lkey, kInvalidKey);
  EXPECT_EQ(reg.count(), 1u);
}

TEST_F(RegistryTest, RejectsNullAndZeroLength) {
  EXPECT_EQ(reg.register_memory(nullptr, 16, kAccessAll).status(),
            Status::BadArgument);
  EXPECT_EQ(reg.register_memory(buf.data(), 0, kAccessAll).status(),
            Status::BadArgument);
}

TEST_F(RegistryTest, LocalCheckValidatesKeyBoundsAccess) {
  auto mr = reg.register_memory(buf.data(), buf.size(), kLocalRead);
  ASSERT_TRUE(mr.ok());
  const MrKey lkey = mr.value().lkey;

  EXPECT_TRUE(reg.check_local(buf.data(), 1024, lkey, kLocalRead).ok());
  EXPECT_TRUE(reg.check_local(buf.data() + 512, 512, lkey, kLocalRead).ok());
  EXPECT_EQ(reg.check_local(buf.data(), 16, lkey + 999, kLocalRead).status(),
            Status::InvalidKey);
  EXPECT_EQ(reg.check_local(buf.data() + 1, 1024, lkey, kLocalRead).status(),
            Status::OutOfBounds);
  EXPECT_EQ(reg.check_local(buf.data(), 16, lkey, kLocalWrite).status(),
            Status::AccessDenied);
}

TEST_F(RegistryTest, RemoteCheckUsesRkeyNamespace) {
  auto mr = reg.register_memory(buf.data(), buf.size(), kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  const std::uint64_t addr = mr.value().begin();

  EXPECT_TRUE(reg.check_remote(addr, 64, mr.value().rkey, kRemoteWrite).ok());
  // The lkey must NOT resolve in the remote namespace.
  EXPECT_EQ(reg.check_remote(addr, 64, mr.value().lkey, kRemoteWrite).status(),
            Status::InvalidKey);
  EXPECT_EQ(
      reg.check_remote(addr + 1020, 16, mr.value().rkey, kRemoteWrite).status(),
      Status::OutOfBounds);
  EXPECT_EQ(
      reg.check_remote(addr, 64, mr.value().rkey, kRemoteAtomic).status(),
      Status::AccessDenied);
}

TEST_F(RegistryTest, DeregisterInvalidatesBothKeys) {
  auto mr = reg.register_memory(buf.data(), buf.size(), kAccessAll);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(reg.deregister(mr.value().lkey), Status::Ok);
  EXPECT_EQ(reg.count(), 0u);
  EXPECT_EQ(
      reg.check_local(buf.data(), 16, mr.value().lkey, kLocalRead).status(),
      Status::InvalidKey);
  EXPECT_EQ(reg.check_remote(mr.value().begin(), 16, mr.value().rkey,
                             kRemoteWrite)
                .status(),
            Status::InvalidKey);
  EXPECT_EQ(reg.deregister(mr.value().lkey), Status::InvalidKey);
}

TEST_F(RegistryTest, OverlappingRegionsCoexist) {
  auto a = reg.register_memory(buf.data(), 1024, kAccessAll);
  auto b = reg.register_memory(buf.data() + 256, 512, kAccessAll);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(reg.check_local(buf.data() + 256, 512, a.value().lkey,
                              kLocalRead)
                  .ok());
  EXPECT_TRUE(reg.check_local(buf.data() + 256, 512, b.value().lkey,
                              kLocalRead)
                  .ok());
  // b's key does not extend to a's full range.
  EXPECT_EQ(reg.check_local(buf.data(), 1024, b.value().lkey, kLocalRead)
                .status(),
            Status::OutOfBounds);
}

TEST_F(RegistryTest, ZeroLengthAccessInsideRegionIsValid) {
  auto mr = reg.register_memory(buf.data(), 1024, kAccessAll);
  ASSERT_TRUE(mr.ok());
  EXPECT_TRUE(reg.check_local(buf.data() + 1024, 0, mr.value().lkey,
                              kLocalRead)
                  .ok());
}

}  // namespace
}  // namespace photon::fabric
