// Randomized invariants of the wire model and the NIC delivery machinery.
#include <gtest/gtest.h>

#include <algorithm>

#include "fabric/calibrations.hpp"
#include "fabric/fabric.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace photon::fabric {
namespace {

TEST(WireInvariants, RandomTransfersNeverTravelBackwards) {
  WireConfig w;  // defaults, enabled
  WireModel wm(w, 4);
  util::Xoshiro256 rng(5);
  std::uint64_t ready = 0;
  for (int i = 0; i < 2000; ++i) {
    const Rank s = static_cast<Rank>(rng.below(4));
    const Rank d = static_cast<Rank>(rng.below(4));
    ready += rng.below(500);
    const auto t = wm.transfer(s, d, ready, rng.below(1 << 16));
    // Causality: completion/delivery can never precede readiness, and
    // delivery is at least one latency after local completion.
    ASSERT_GE(t.local_done, ready);
    ASSERT_EQ(t.deliver, t.local_done + w.latency_ns);
  }
}

TEST(WireInvariants, PerLinkDeliveriesAreMonotonic) {
  WireConfig w;
  WireModel wm(w, 2);
  util::Xoshiro256 rng(9);
  std::uint64_t prev = 0;
  std::uint64_t ready = 0;
  for (int i = 0; i < 1000; ++i) {
    ready += rng.below(100);
    const auto t = wm.transfer(0, 1, ready, rng.below(4096));
    ASSERT_GE(t.deliver, prev) << "link must be FIFO";
    prev = t.deliver;
  }
}

TEST(WireInvariants, LargerTransfersNeverCheaper) {
  WireConfig w;
  for (std::size_t bytes = 1; bytes <= (1u << 20); bytes *= 4) {
    WireModel a(w, 2), b(w, 2);
    const auto small = a.transfer(0, 1, 0, bytes);
    const auto large = b.transfer(0, 1, 0, bytes * 4);
    ASSERT_LE(small.local_done, large.local_done) << bytes;
  }
}

TEST(WireInvariants, GetAlwaysSlowerThanPutForSameBytes) {
  for (auto backend :
       {Backend::kVerbs, Backend::kUgni, Backend::kSockets}) {
    const WireConfig w = backend_calibration(backend);
    for (std::size_t bytes : {64u, 4096u, 262144u}) {
      WireModel a(w, 2), b(w, 2);
      const auto put = a.transfer(0, 1, 0, bytes);
      const auto get = b.get(0, 1, 0, bytes);
      ASSERT_GT(get.local_done, put.deliver)
          << backend_name(backend) << " " << bytes;
    }
  }
}

TEST(WireInvariants, RecvCqOrderPerSourceUnderRandomTraffic) {
  // Two senders interleave put-with-imm traffic at one target; for each
  // source, imm sequence numbers must arrive in order no matter how the
  // consumer mixes ready-polls and jumps.
  FabricConfig cfg = photon::testing::timed_fabric(3);
  Fabric fab(cfg);
  std::vector<std::byte> sink(64);
  auto mr = fab.nic(2).registry().register_memory(sink.data(), sink.size(),
                                                  kAccessAll);
  const RemoteRef rr{mr.value().begin(), mr.value().rkey};
  util::Xoshiro256 rng(31);
  std::uint64_t seq[2] = {0, 0};
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<Rank>(rng.below(2));
    const std::uint64_t s = seq[src]++;
    ASSERT_EQ(fab.nic(src).post_put_inline(2, &s, 8, rr,
                                           (std::uint64_t{src} << 32) | s, 0,
                                           false, true),
              Status::Ok);
  }
  std::uint64_t next[2] = {0, 0};
  Completion c;
  util::Xoshiro256 mix(77);
  int got = 0;
  while (got < 600) {  // 300 events; loop counts halves to mix modes
    const bool jump = mix.below(2) == 0;
    const Status st = jump ? fab.nic(2).jump_recv(c)
                           : fab.nic(2).poll_recv(c);
    if (st != Status::Ok) {
      ++got;  // count misses too so the loop terminates
      continue;
    }
    const auto src = static_cast<Rank>(c.imm >> 32);
    const std::uint64_t s = c.imm & 0xFFFFFFFFu;
    ASSERT_EQ(s, next[src]) << "out of order from " << src;
    ++next[src];
    ++got;
  }
  // Jumps alone can always finish the drain.
  while (fab.nic(2).jump_recv(c) == Status::Ok) {
    const auto src = static_cast<Rank>(c.imm >> 32);
    ASSERT_EQ((c.imm & 0xFFFFFFFFu), next[src]);
    ++next[src];
  }
  EXPECT_EQ(next[0], seq[0]);
  EXPECT_EQ(next[1], seq[1]);
}

TEST(WireInvariants, AtomicResultsSerializeUnderInterleavedPosting) {
  FabricConfig cfg = photon::testing::quiet_fabric(3);
  Fabric fab(cfg);
  std::uint64_t cell = 0;
  auto mr = fab.nic(0).registry().register_memory(&cell, 8, kAccessAll);
  const RemoteRef rr{mr.value().begin(), mr.value().rkey};
  // Interleave posts from two initiators; old-values must be a permutation
  // of 0..N-1 (each value observed exactly once).
  std::vector<bool> seen(200, false);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(fab.nic(1).post_fetch_add(0, rr, 1, 0), Status::Ok);
    ASSERT_EQ(fab.nic(2).post_fetch_add(0, rr, 1, 0), Status::Ok);
  }
  Completion c;
  for (Rank r : {1u, 2u}) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(fab.nic(r).poll_send(c), Status::Ok);
      ASSERT_LT(c.result, 200u);
      ASSERT_FALSE(seen[static_cast<std::size_t>(c.result)]);
      seen[static_cast<std::size_t>(c.result)] = true;
    }
  }
  EXPECT_EQ(cell, 200u);
}

}  // namespace
}  // namespace photon::fabric
