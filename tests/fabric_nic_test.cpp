#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fabric/fabric.hpp"
#include "test_helpers.hpp"

namespace photon::fabric {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;

class NicTest : public ::testing::Test {
 protected:
  NicTest() : fab(quiet_fabric(2)), a(fab.nic(0)), b(fab.nic(1)) {
    src.resize(4096);
    dst.resize(4096);
    auto p = pattern(src.size());
    std::memcpy(src.data(), p.data(), p.size());
    auto ma = a.registry().register_memory(src.data(), src.size(), kAccessAll);
    auto mb = b.registry().register_memory(dst.data(), dst.size(), kAccessAll);
    src_mr = ma.value();
    dst_mr = mb.value();
  }

  LocalRef lref(std::size_t off, std::size_t len) {
    return {src.data() + off, len, src_mr.lkey};
  }
  RemoteRef rref(std::size_t off) {
    return {dst_mr.begin() + off, dst_mr.rkey};
  }

  Fabric fab;
  Nic& a;
  Nic& b;
  std::vector<std::byte> src, dst;
  MemoryRegion src_mr, dst_mr;
};

TEST_F(NicTest, PutMovesDataAndCompletesLocally) {
  ASSERT_EQ(a.post_put(1, lref(0, 4096), rref(0), 42, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.wr_id, 42u);
  EXPECT_EQ(c.op, OpCode::Put);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(c.peer, 1u);
  EXPECT_EQ(c.byte_len, 4096u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
}

TEST_F(NicTest, PutImmRaisesTargetEvent) {
  ASSERT_EQ(a.post_put_imm(1, lref(0, 64), rref(128), 0xBEEF, 1, true),
            Status::Ok);
  Completion ev;
  ASSERT_EQ(b.poll_recv(ev), Status::Ok);
  EXPECT_EQ(ev.op, OpCode::PutImm);
  EXPECT_EQ(ev.imm, 0xBEEFu);
  EXPECT_EQ(ev.peer, 0u);
  EXPECT_EQ(ev.byte_len, 64u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data() + 128, 64), 0);
}

TEST_F(NicTest, PlainPutRaisesNoTargetEvent) {
  ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 1, true), Status::Ok);
  Completion ev;
  EXPECT_EQ(b.poll_recv(ev), Status::NotFound);
}

TEST_F(NicTest, UnsignaledPutProducesNoLocalCompletion) {
  ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 1, false), Status::Ok);
  Completion c;
  EXPECT_EQ(a.poll_send(c), Status::NotFound);
  EXPECT_EQ(a.in_flight(1), 0u);
}

TEST_F(NicTest, ZeroLengthPutImmIsPureDoorbell) {
  LocalRef empty{nullptr, 0, kInvalidKey};
  ASSERT_EQ(a.post_put_imm(1, empty, RemoteRef{}, 7, 1, true), Status::Ok);
  Completion ev;
  ASSERT_EQ(b.poll_recv(ev), Status::Ok);
  EXPECT_EQ(ev.imm, 7u);
  EXPECT_EQ(ev.byte_len, 0u);
}

TEST_F(NicTest, InlinePutNeedsNoRegistration) {
  const std::uint64_t v = 0x1122334455667788ULL;
  ASSERT_EQ(a.post_put_inline(1, &v, 8, rref(8), 0, 0, false, false),
            Status::Ok);
  std::uint64_t got = 0;
  std::memcpy(&got, dst.data() + 8, 8);
  EXPECT_EQ(got, v);
}

TEST_F(NicTest, InlinePutTooLargeRejected) {
  std::vector<std::byte> big(fab.config().nic.max_inline + 1);
  EXPECT_EQ(a.post_put_inline(1, big.data(), big.size(), rref(0), 0, 0, false,
                              false),
            Status::BadArgument);
}

TEST_F(NicTest, GetReadsRemoteMemory) {
  // b's buffer holds a pattern; a reads it back.
  auto p = pattern(256, 99);
  std::memcpy(dst.data() + 512, p.data(), 256);
  std::vector<std::byte> sink(256);
  auto mr = a.registry().register_memory(sink.data(), sink.size(), kAccessAll);
  ASSERT_EQ(a.post_get(1, {sink.data(), 256, mr.value().lkey},
                       {dst_mr.begin() + 512, dst_mr.rkey}, 5),
            Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.op, OpCode::Get);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(sink.data(), p.data(), 256), 0);
}

TEST_F(NicTest, RemoteValidationFailuresArriveAsErrorCompletions) {
  // Bad rkey.
  ASSERT_EQ(a.post_put(1, lref(0, 64), RemoteRef{dst_mr.begin(), 9999}, 1, true),
            Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::InvalidKey);

  // Out of bounds.
  ASSERT_EQ(a.post_put(1, lref(0, 64),
                       RemoteRef{dst_mr.begin() + 4090, dst_mr.rkey}, 2, true),
            Status::Ok);
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::OutOfBounds);
}

TEST_F(NicTest, LocalValidationFailsSynchronously) {
  EXPECT_EQ(a.post_put(1, LocalRef{src.data(), 64, 424242}, rref(0), 1, true),
            Status::InvalidKey);
  Completion c;
  EXPECT_EQ(a.poll_send(c), Status::NotFound);
}

TEST_F(NicTest, ErrorCompletionDeliveredEvenWhenUnsignaled) {
  ASSERT_EQ(a.post_put(1, lref(0, 64), RemoteRef{dst_mr.begin(), 9999}, 77,
                       /*signaled=*/false),
            Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::InvalidKey);
  EXPECT_EQ(c.wr_id, 77u);
}

TEST_F(NicTest, FetchAddReturnsOldValueAndAccumulates) {
  auto* cell = reinterpret_cast<std::uint64_t*>(dst.data());
  *cell = 100;
  ASSERT_EQ(a.post_fetch_add(1, rref(0), 5, 1), Status::Ok);
  ASSERT_EQ(a.post_fetch_add(1, rref(0), 7, 2), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.result, 100u);
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.result, 105u);
  EXPECT_EQ(*cell, 112u);
}

TEST_F(NicTest, CompareSwapReportsObservedValue) {
  auto* cell = reinterpret_cast<std::uint64_t*>(dst.data());
  *cell = 10;
  ASSERT_EQ(a.post_compare_swap(1, rref(0), 10, 20, 1), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.result, 10u);
  EXPECT_EQ(*cell, 20u);
  // Failed CAS: observed value returned, memory unchanged.
  ASSERT_EQ(a.post_compare_swap(1, rref(0), 10, 30, 2), Status::Ok);
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.result, 20u);
  EXPECT_EQ(*cell, 20u);
}

TEST_F(NicTest, MisalignedAtomicFails) {
  ASSERT_EQ(a.post_fetch_add(1, rref(4), 1, 1), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Misaligned);
}

TEST_F(NicTest, SendMatchesPostedReceive) {
  std::vector<std::byte> rbuf(128);
  auto mr = b.registry().register_memory(rbuf.data(), rbuf.size(), kAccessAll);
  ASSERT_EQ(b.post_recv({rbuf.data(), rbuf.size(), mr.value().lkey}, 11),
            Status::Ok);
  ASSERT_EQ(a.post_send(1, lref(0, 100), 0xAB, 22, true), Status::Ok);

  Completion sc, rc;
  ASSERT_EQ(a.poll_send(sc), Status::Ok);
  EXPECT_EQ(sc.op, OpCode::Send);
  EXPECT_EQ(sc.wr_id, 22u);
  ASSERT_EQ(b.poll_recv(rc), Status::Ok);
  EXPECT_EQ(rc.op, OpCode::Recv);
  EXPECT_EQ(rc.wr_id, 11u);
  EXPECT_EQ(rc.imm, 0xABu);
  EXPECT_EQ(rc.byte_len, 100u);
  EXPECT_EQ(std::memcmp(rbuf.data(), src.data(), 100), 0);
}

TEST_F(NicTest, EarlySendIsParkedUntilReceivePosted) {
  ASSERT_EQ(a.post_send(1, lref(0, 100), 5, 1, true), Status::Ok);
  EXPECT_EQ(b.parked_sends(), 1u);

  std::vector<std::byte> rbuf(128);
  auto mr = b.registry().register_memory(rbuf.data(), rbuf.size(), kAccessAll);
  ASSERT_EQ(b.post_recv({rbuf.data(), rbuf.size(), mr.value().lkey}, 2),
            Status::Ok);
  Completion rc;
  ASSERT_EQ(b.poll_recv(rc), Status::Ok);
  EXPECT_EQ(rc.byte_len, 100u);
  EXPECT_EQ(std::memcmp(rbuf.data(), src.data(), 100), 0);
  EXPECT_EQ(b.parked_sends(), 0u);
}

TEST_F(NicTest, TruncatedReceiveFlagsError) {
  std::vector<std::byte> rbuf(32);
  auto mr = b.registry().register_memory(rbuf.data(), rbuf.size(), kAccessAll);
  ASSERT_EQ(b.post_recv({rbuf.data(), rbuf.size(), mr.value().lkey}, 1),
            Status::Ok);
  ASSERT_EQ(a.post_send(1, lref(0, 100), 0, 2, true), Status::Ok);
  Completion rc;
  ASSERT_EQ(b.poll_recv(rc), Status::Ok);
  EXPECT_EQ(rc.status, Status::Truncated);
  EXPECT_EQ(rc.byte_len, 32u);
}

TEST_F(NicTest, SendRecvFifoAcrossParking) {
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_EQ(a.post_send(1, lref(static_cast<std::size_t>(i) * 8, 8), i, i,
                          false),
              Status::Ok);
  std::vector<std::byte> rbuf(64);
  auto mr = b.registry().register_memory(rbuf.data(), rbuf.size(), kAccessAll);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(b.post_recv({rbuf.data(), 8, mr.value().lkey}, 100 + i),
              Status::Ok);
    Completion rc;
    ASSERT_EQ(b.poll_recv(rc), Status::Ok);
    EXPECT_EQ(rc.imm, i);  // arrival order preserved
    EXPECT_EQ(rc.wr_id, 100 + i);
  }
}

TEST_F(NicTest, SqDepthLimitsOutstandingCompletions) {
  FabricConfig cfg = quiet_fabric(2);
  cfg.nic.sq_depth = 4;
  Fabric f2(cfg);
  Nic& n0 = f2.nic(0);
  std::vector<std::byte> s(64), d(64);
  auto ms = n0.registry().register_memory(s.data(), s.size(), kAccessAll);
  auto md = f2.nic(1).registry().register_memory(d.data(), d.size(), kAccessAll);
  RemoteRef rr{md.value().begin(), md.value().rkey};
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(n0.post_put(1, {s.data(), 8, ms.value().lkey}, rr, i, true),
              Status::Ok);
  EXPECT_EQ(n0.post_put(1, {s.data(), 8, ms.value().lkey}, rr, 5, true),
            Status::QueueFull);
  Completion c;
  ASSERT_EQ(n0.poll_send(c), Status::Ok);  // frees one slot
  EXPECT_EQ(n0.post_put(1, {s.data(), 8, ms.value().lkey}, rr, 5, true),
            Status::Ok);
}

TEST_F(NicTest, FaultInjectionProducesPlannedErrorCompletion) {
  a.faults().arm({OpCode::Put, Status::FaultInjected, std::nullopt, 1});
  ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 9, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::FaultInjected);
  EXPECT_EQ(a.counters().faults_injected.load(), 1u);
  // Next op is clean.
  ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 10, true), Status::Ok);
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
}

TEST_F(NicTest, FaultFilterSkipsOtherOps) {
  a.faults().arm({OpCode::Get, Status::FaultInjected, std::nullopt, 1});
  ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 1, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);  // put unaffected; fault still armed
  EXPECT_TRUE(a.faults().armed());
}

TEST_F(NicTest, CqOverflowIsStickyUntilCleared) {
  FabricConfig cfg = quiet_fabric(2);
  cfg.nic.cq_depth = 2;
  cfg.nic.sq_depth = 16;
  Fabric f2(cfg);
  Nic& n0 = f2.nic(0);
  std::vector<std::byte> s(64), d(64);
  auto ms = n0.registry().register_memory(s.data(), s.size(), kAccessAll);
  auto md = f2.nic(1).registry().register_memory(d.data(), d.size(), kAccessAll);
  RemoteRef rr{md.value().begin(), md.value().rkey};
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(n0.post_put(1, {s.data(), 8, ms.value().lkey}, rr, i, true),
              Status::Ok);
  Completion c;
  EXPECT_EQ(n0.poll_send(c), Status::QueueFull);
  EXPECT_EQ(n0.send_cq().overflows(), 1u);
  n0.send_cq().clear_overflow();
  EXPECT_EQ(n0.poll_send(c), Status::Ok);
}

TEST_F(NicTest, SelfLoopbackWorks) {
  std::vector<std::byte> self_dst(128);
  auto mr =
      a.registry().register_memory(self_dst.data(), self_dst.size(), kAccessAll);
  ASSERT_EQ(a.post_put(0, lref(0, 128), {mr.value().begin(), mr.value().rkey},
                       1, true),
            Status::Ok);
  Completion c;
  ASSERT_EQ(a.poll_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(self_dst.data(), src.data(), 128), 0);
}

TEST_F(NicTest, CompletionConsumptionAdvancesVirtualClock) {
  FabricConfig cfg = photon::testing::timed_fabric(2);
  Fabric f2(cfg);
  Nic& n0 = f2.nic(0);
  std::vector<std::byte> s(64), d(64);
  auto ms = n0.registry().register_memory(s.data(), s.size(), kAccessAll);
  auto md = f2.nic(1).registry().register_memory(d.data(), d.size(), kAccessAll);
  ASSERT_EQ(n0.post_put(1, {s.data(), 64, ms.value().lkey},
                        {md.value().begin(), md.value().rkey}, 1, true),
            Status::Ok);
  const std::uint64_t after_post = n0.clock().now();
  EXPECT_GE(after_post, cfg.wire.send_overhead_ns);
  Completion c;
  // Non-blocking poll must NOT surface a completion whose virtual arrival
  // is still in the future (polling never advances time).
  EXPECT_EQ(n0.poll_send(c), Status::NotFound);
  // Waiting jumps the clock to the arrival.
  ASSERT_EQ(n0.wait_send(c, 1'000'000'000ULL), Status::Ok);
  EXPECT_GT(c.vtime, 0u);
  EXPECT_GE(n0.clock().now(), c.vtime + cfg.wire.recv_overhead_ns);
  // Once time has reached an event, plain polling sees later-queued ones.
  ASSERT_EQ(n0.post_put(1, {s.data(), 8, ms.value().lkey},
                        {md.value().begin(), md.value().rkey}, 2, true),
            Status::Ok);
  // (second put's local_done may still be ahead of now; jump again)
  ASSERT_EQ(n0.jump_send(c), Status::Ok);
  // Target clock is untouched by one-sided traffic until it consumes events.
  EXPECT_EQ(f2.nic(1).clock().now(), 0u);
}

TEST_F(NicTest, CountersTrackTraffic) {
  ASSERT_EQ(a.post_put(1, lref(0, 100), rref(0), 1, true), Status::Ok);
  ASSERT_EQ(a.post_send(1, lref(0, 50), 0, 2, true), Status::Ok);
  EXPECT_EQ(a.counters().puts.load(), 1u);
  EXPECT_EQ(a.counters().sends.load(), 1u);
  EXPECT_EQ(a.counters().bytes_out.load(), 150u);
  EXPECT_EQ(b.counters().bytes_in.load(), 150u);
}

TEST_F(NicTest, BatchPollDrainsArrivedReleasesSlotsAndChargesPerConsume) {
  constexpr std::size_t kOps = 6;
  for (std::uint64_t i = 0; i < kOps; ++i)
    ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), i, true), Status::Ok);
  EXPECT_EQ(a.in_flight(1), kOps);

  std::vector<Completion> batch(4);
  std::size_t n = a.poll_send_batch(batch);
  ASSERT_EQ(n, 4u);  // capped by the span
  EXPECT_EQ(a.in_flight(1), kOps - 4);  // slots released on drain
  const std::uint64_t before = a.clock().now();
  for (std::size_t i = 0; i < n; ++i) {
    a.charge_consume();
    EXPECT_EQ(batch[i].wr_id, i);
    EXPECT_EQ(batch[i].status, Status::Ok);
  }
  // Per-completion consume overhead equals the single-poll path's charge.
  EXPECT_EQ(a.clock().now(), before + 4 * fab.wire().recv_overhead());

  n = a.poll_send_batch(batch);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(a.in_flight(1), 0u);
  EXPECT_EQ(a.poll_send_batch(batch), 0u);
  EXPECT_EQ(a.counters().completions_polled.load(), kOps);
}

TEST_F(NicTest, BatchPollMatchesSinglePollClockAccounting) {
  // Two identical fabrics: drain one NIC with singles, the other batched;
  // final virtual clocks must agree exactly.
  auto run = [](bool batched) {
    Fabric f(photon::testing::timed_fabric(2));
    Nic& n0 = f.nic(0);
    std::vector<std::byte> s(64);
    auto ms = n0.registry().register_memory(s.data(), s.size(), kAccessAll);
    std::vector<std::byte> d(64);
    auto md = f.nic(1).registry().register_memory(d.data(), d.size(),
                                                  kAccessAll);
    for (std::uint64_t i = 0; i < 5; ++i)
      EXPECT_EQ(n0.post_put(1, {s.data(), 64, ms.value().lkey},
                            {md.value().begin(), md.value().rkey}, i, true),
                Status::Ok);
    Completion c;
    while (n0.jump_send(c) == Status::Ok) {
    }  // jump past the last arrival so everything is "ready"... then repost
    for (std::uint64_t i = 0; i < 5; ++i)
      EXPECT_EQ(n0.post_put(1, {s.data(), 64, ms.value().lkey},
                            {md.value().begin(), md.value().rkey}, 10 + i,
                            true),
                Status::Ok);
    while (n0.jump_send(c) == Status::Ok) {
    }
    for (std::uint64_t i = 0; i < 5; ++i)
      EXPECT_EQ(n0.post_put(1, {s.data(), 64, ms.value().lkey},
                            {md.value().begin(), md.value().rkey}, 20 + i,
                            true),
                Status::Ok);
    std::size_t drained = 0;
    if (batched) {
      std::vector<Completion> batch(8);
      std::size_t n;
      while ((n = n0.poll_send_batch(batch)) != 0) {
        for (std::size_t i = 0; i < n; ++i) n0.charge_consume();
        drained += n;
      }
    } else {
      while (n0.poll_send(c) == Status::Ok) ++drained;
    }
    return std::pair{drained, n0.clock().now()};
  };
  const auto single = run(false);
  const auto batch = run(true);
  EXPECT_EQ(single.first, batch.first);
  EXPECT_EQ(single.second, batch.second);
}

}  // namespace
}  // namespace photon::fabric
