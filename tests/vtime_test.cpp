// Virtual-time semantics: the LogGP laws the benchmarks rest on, verified
// end-to-end through the middleware.
#include <gtest/gtest.h>

#include "core/photon.hpp"
#include "msg/engine.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon {
namespace {

using photon::testing::timed_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 5'000'000'000ULL;

TEST(VirtualTime, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Cluster cluster(timed_fabric(2));
    cluster.run([](Env& env) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      std::vector<std::byte> payload(333);
      if (env.rank == 0) {
        for (int i = 0; i < 50; ++i) {
          ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt, 1, kWait),
                    Status::Ok);
          core::ProbeEvent ev;
          ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        }
      } else {
        for (int i = 0; i < 50; ++i) {
          core::ProbeEvent ev;
          ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
          ASSERT_EQ(ph.send_with_completion(0, payload, std::nullopt, 1, kWait),
                    Status::Ok);
        }
      }
      env.bootstrap.barrier(env.rank);
    });
    return std::pair{cluster.fabric().nic(0).clock().now(),
                     cluster.fabric().nic(1).clock().now()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 0u);
}

TEST(VirtualTime, PingPongMatchesLogGpPrediction) {
  // One 0-byte signal pingpong: each direction costs
  //   o (post) + g + 16B*G (ledger entry) + L (wire) + or (consume).
  Cluster cluster(timed_fabric(2));
  const auto& w = cluster.fabric().config().wire;
  std::uint64_t measured = 0;
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) env.cluster.reset_virtual_time();
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      ASSERT_EQ(ph.signal(1, 1, kWait), Status::Ok);
      core::ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      measured = env.clock().now();
    } else {
      core::ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      ASSERT_EQ(ph.signal(0, 1, kWait), Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
  });
  const std::uint64_t per_byte =
      static_cast<std::uint64_t>(16 * w.per_byte_ns);
  const std::uint64_t one_way = w.send_overhead_ns + w.gap_ns + per_byte +
                                w.latency_ns + w.recv_overhead_ns;
  EXPECT_EQ(measured, 2 * one_way);
}

TEST(VirtualTime, OverlapLawHolds) {
  // total == o + max(compute, wire) + or for an async put + compute + wait.
  constexpr std::size_t kBytes = 100'000;
  auto total_with_compute = [&](std::uint64_t comp_ns) {
    Cluster cluster(timed_fabric(2));
    std::uint64_t measured = 0;
    cluster.run([&](Env& env) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      std::vector<std::byte> buf(kBytes);
      auto desc = ph.register_buffer(buf.data(), buf.size()).value();
      auto peers = ph.exchange_descriptors(desc);
      env.bootstrap.barrier(env.rank);
      if (env.rank == 0) env.cluster.reset_virtual_time();
      env.bootstrap.barrier(env.rank);
      if (env.rank == 0) {
        ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, kBytes),
                                         core::slice(peers[1], 0, kBytes), 1,
                                         std::nullopt, kWait),
                  Status::Ok);
        env.clock().add(comp_ns);
        core::LocalComplete lc;
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
        measured = env.clock().now();
      }
      env.bootstrap.barrier(env.rank);
    });
    return measured;
  };
  const std::uint64_t base = total_with_compute(0);  // pure wire + overheads
  // Compute far below the wire time: total unchanged.
  EXPECT_EQ(total_with_compute(base / 4), base);
  // Compute dominating: total grows by exactly the excess.
  const std::uint64_t big = 10 * base;
  const std::uint64_t with_big = total_with_compute(big);
  EXPECT_GE(with_big, big);
  EXPECT_LE(with_big, big + base);
}

TEST(VirtualTime, PollingDoesNotAdvanceTheClock) {
  Cluster cluster(timed_fabric(2));
  cluster.run([](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    if (env.rank == 1) {
      const std::uint64_t before = env.clock().now();
      for (int i = 0; i < 100; ++i) ph.progress();  // nothing to consume
      EXPECT_EQ(env.clock().now(), before);
      EXPECT_EQ(ph.probe_local(), std::nullopt);
      EXPECT_EQ(env.clock().now(), before);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(VirtualTime, TargetCpuUntouchedByOneSidedTraffic) {
  Cluster cluster(timed_fabric(2));
  cluster.run([](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(4096);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) env.cluster.reset_virtual_time();
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      // Plain puts with no remote id: target CPU never involved.
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, 4096),
                                         core::slice(peers[1], 0, 4096), 1,
                                         std::nullopt, kWait),
                  Status::Ok);
        core::LocalComplete lc;
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
    } else {
      env.bootstrap.barrier(env.rank);  // rank 0 finished its stream
      EXPECT_EQ(env.clock().now(), 0u);  // we never spent a virtual cycle
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(VirtualTime, BandwidthApproachesLinkModel) {
  // Windowed large puts must reach ~G-limited bandwidth.
  Cluster cluster(timed_fabric(2));
  const double per_byte = cluster.fabric().config().wire.per_byte_ns;
  std::uint64_t vt = 0;
  constexpr std::size_t kMsg = 1u << 20;
  constexpr int kCount = 32;
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(kMsg);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) env.cluster.reset_virtual_time();
    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      for (int i = 0; i < kCount; ++i)
        ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, kMsg),
                                         core::slice(peers[1], 0, kMsg),
                                         static_cast<std::uint64_t>(i),
                                         std::nullopt, kWait),
                  Status::Ok);
      for (int i = 0; i < kCount; ++i) {
        core::LocalComplete lc;
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      }
      vt = env.clock().now();
    }
    env.bootstrap.barrier(env.rank);
  });
  const double ideal_ns = kCount * kMsg * per_byte;
  EXPECT_LT(static_cast<double>(vt), ideal_ns * 1.1);
  EXPECT_GT(static_cast<double>(vt), ideal_ns * 0.99);
}

TEST(VirtualTime, TwoSidedChargesMatchingAndCopies) {
  // An 8 KiB eager two-sided round trip must cost strictly more than the
  // equivalent PWC round trip under identical wire parameters.
  auto round_trip = [&](bool photon_path) {
    Cluster cluster(timed_fabric(2));
    std::uint64_t vt = 0;
    cluster.run([&](Env& env) {
      constexpr std::size_t kBytes = 8192;
      if (photon_path) {
        core::Photon ph(env.nic, env.bootstrap, core::Config{});
        std::vector<std::byte> buf(kBytes);
        auto desc = ph.register_buffer(buf.data(), buf.size()).value();
        auto peers = ph.exchange_descriptors(desc);
        env.bootstrap.barrier(env.rank);
        if (env.rank == 0) env.cluster.reset_virtual_time();
        env.bootstrap.barrier(env.rank);
        if (env.rank == 0) {
          ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc, 0, kBytes),
                                           core::slice(peers[1], 0, kBytes),
                                           std::nullopt, 1, kWait),
                    Status::Ok);
          core::ProbeEvent ev;
          ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
          vt = env.clock().now();
        } else {
          core::ProbeEvent ev;
          ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
          ASSERT_EQ(ph.put_with_completion(0, core::local_slice(desc, 0, kBytes),
                                           core::slice(peers[0], 0, kBytes),
                                           std::nullopt, 1, kWait),
                    Status::Ok);
        }
        env.bootstrap.barrier(env.rank);
      } else {
        msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
        std::vector<std::byte> buf(kBytes);
        env.bootstrap.barrier(env.rank);
        if (env.rank == 0) env.cluster.reset_virtual_time();
        env.bootstrap.barrier(env.rank);
        if (env.rank == 0) {
          ASSERT_EQ(eng.send(1, 1, buf, kWait), Status::Ok);
          ASSERT_TRUE(eng.recv(1, 1, buf, kWait).ok());
          vt = env.clock().now();
        } else {
          ASSERT_TRUE(eng.recv(0, 1, buf, kWait).ok());
          ASSERT_EQ(eng.send(0, 1, buf, kWait), Status::Ok);
        }
        env.bootstrap.barrier(env.rank);
      }
    });
    return vt;
  };
  const std::uint64_t pwc = round_trip(true);
  const std::uint64_t two_sided = round_trip(false);
  EXPECT_LT(pwc, two_sided);
}

}  // namespace
}  // namespace photon
