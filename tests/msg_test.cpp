#include <gtest/gtest.h>

#include <cstring>

#include "msg/engine.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::msg {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 2'000'000'000ULL;

void with_engine(std::uint32_t nranks, const Config& cfg,
                 const std::function<void(Env&, Engine&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Engine eng(env.nic, env.bootstrap, cfg);
    body(env, eng);
  });
}

Config small_config() {
  Config c;
  c.eager_threshold = 1024;
  c.bounce_count = 32;
  c.send_credits = 8;
  return c;
}

TEST(MsgEngine, EagerSendRecvRoundTrip) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      auto p = pattern(512);
      ASSERT_EQ(eng.send(1, 7, p, kWait), Status::Ok);
    } else {
      std::vector<std::byte> out(512);
      auto info = eng.recv(0, 7, out, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info.value().source, 0u);
      EXPECT_EQ(info.value().tag, 7u);
      EXPECT_EQ(info.value().len, 512u);
      EXPECT_FALSE(info.value().truncated);
      auto p = pattern(512);
      EXPECT_EQ(std::memcmp(out.data(), p.data(), 512), 0);
    }
  });
}

TEST(MsgEngine, RendezvousLargeMessage) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    constexpr std::size_t kBytes = 1u << 20;
    if (env.rank == 0) {
      auto p = pattern(kBytes, 21);
      ASSERT_EQ(eng.send(1, 9, p, kWait), Status::Ok);
      EXPECT_EQ(eng.stats().rndv_sends, 1u);
      EXPECT_EQ(eng.stats().eager_sends, 0u);
    } else {
      std::vector<std::byte> out(kBytes);
      auto info = eng.recv(0, 9, out, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info.value().len, kBytes);
      auto p = pattern(kBytes, 21);
      EXPECT_EQ(std::memcmp(out.data(), p.data(), kBytes), 0);
    }
  });
}

TEST(MsgEngine, UnexpectedMessagesMatchLaterRecvs) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      for (std::uint64_t i = 0; i < 4; ++i) {
        std::uint64_t v = 100 + i;
        ASSERT_EQ(eng.send(1, i, std::as_bytes(std::span(&v, 1)), kWait),
                  Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
    } else {
      env.bootstrap.barrier(env.rank);  // all sends already in flight/parked
      // Receive in reverse tag order: matching must be by tag, not arrival.
      for (std::uint64_t i = 4; i-- > 0;) {
        std::uint64_t v = 0;
        auto info = eng.recv(0, i, std::as_writable_bytes(std::span(&v, 1)),
                             kWait);
        ASSERT_TRUE(info.ok());
        EXPECT_EQ(v, 100 + i);
      }
      EXPECT_GE(eng.stats().unexpected_hits, 1u);
    }
  });
}

TEST(MsgEngine, WildcardSourceAndTag) {
  with_engine(3, small_config(), [](Env& env, Engine& eng) {
    if (env.rank != 0) {
      std::uint64_t v = env.rank;
      ASSERT_EQ(eng.send(0, env.rank * 10, std::as_bytes(std::span(&v, 1)),
                         kWait),
                Status::Ok);
    } else {
      std::uint64_t seen = 0;
      for (int i = 0; i < 2; ++i) {
        std::uint64_t v = 0;
        auto info = eng.recv(kAnySource, kAnyTag,
                             std::as_writable_bytes(std::span(&v, 1)), kWait);
        ASSERT_TRUE(info.ok());
        EXPECT_EQ(info.value().tag, v * 10);
        seen += v;
      }
      EXPECT_EQ(seen, 3u);  // ranks 1 and 2
    }
  });
}

TEST(MsgEngine, TruncationReportsPartialDelivery) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      auto p = pattern(256);
      ASSERT_EQ(eng.send(1, 1, p, kWait), Status::Ok);
    } else {
      std::vector<std::byte> out(64);
      auto info = eng.recv(0, 1, out, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_TRUE(info.value().truncated);
      EXPECT_EQ(info.value().len, 64u);
      auto p = pattern(256);
      EXPECT_EQ(std::memcmp(out.data(), p.data(), 64), 0);
    }
  });
}

TEST(MsgEngine, IsendIrecvOverlap) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    constexpr int kN = 16;
    std::vector<std::uint64_t> in(kN), out(kN, 0);
    const fabric::Rank peer = 1 - env.rank;
    std::vector<ReqId> rqs;
    for (int i = 0; i < kN; ++i) {
      auto rq = eng.irecv(peer, static_cast<Tag>(i),
                          std::as_writable_bytes(std::span(&out[i], 1)));
      ASSERT_TRUE(rq.ok());
      rqs.push_back(rq.value());
    }
    for (int i = 0; i < kN; ++i) {
      in[i] = env.rank * 1000 + i;
      util::Deadline dl(kWait);
      for (;;) {
        auto rq = eng.isend(peer, static_cast<Tag>(i),
                            std::as_bytes(std::span(&in[i], 1)));
        if (rq.ok()) {
          rqs.push_back(rq.value());
          break;
        }
        ASSERT_TRUE(transient(rq.status()));
        ASSERT_FALSE(dl.expired());
        eng.progress();
      }
    }
    for (ReqId rq : rqs) ASSERT_EQ(eng.wait(rq, nullptr, kWait), Status::Ok);
    for (int i = 0; i < kN; ++i)
      EXPECT_EQ(out[i], peer * 1000 + static_cast<std::uint64_t>(i));
  });
}

TEST(MsgEngine, CreditStallAndRecovery) {
  Config cfg = small_config();
  cfg.send_credits = 2;
  with_engine(2, cfg, [&](Env& env, Engine& eng) {
    if (env.rank == 0) {
      std::uint64_t v = 1;
      auto bytes = std::as_bytes(std::span(&v, 1));
      // Exhaust credits without the peer receiving.
      auto r1 = eng.isend(1, 1, bytes);
      auto r2 = eng.isend(1, 1, bytes);
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      auto r3 = eng.isend(1, 1, bytes);
      EXPECT_EQ(r3.status(), Status::Retry);
      EXPECT_GE(eng.stats().credit_stalls, 1u);
      env.bootstrap.barrier(env.rank);
      // After the peer drains, blocking send succeeds (credits acked).
      ASSERT_EQ(eng.send(1, 1, bytes, kWait), Status::Ok);
      ASSERT_EQ(eng.wait(r1.value(), nullptr, kWait), Status::Ok);
      ASSERT_EQ(eng.wait(r2.value(), nullptr, kWait), Status::Ok);
    } else {
      env.bootstrap.barrier(env.rank);
      std::uint64_t v;
      for (int i = 0; i < 3; ++i) {
        auto info = eng.recv(0, 1, std::as_writable_bytes(std::span(&v, 1)),
                             kWait);
        ASSERT_TRUE(info.ok());
      }
    }
  });
}

TEST(MsgEngine, IprobeSeesUnexpected) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      std::uint64_t v = 5;
      ASSERT_EQ(eng.send(1, 77, std::as_bytes(std::span(&v, 1)), kWait),
                Status::Ok);
      env.bootstrap.barrier(env.rank);
    } else {
      env.bootstrap.barrier(env.rank);
      util::Deadline dl(kWait);
      std::optional<RecvInfo> info;
      while (!info && !dl.expired()) info = eng.iprobe(0, 77);
      ASSERT_TRUE(info.has_value());
      EXPECT_EQ(info->len, 8u);
      EXPECT_EQ(eng.iprobe(0, 99), std::nullopt);
      // The probed message is still receivable.
      std::uint64_t v = 0;
      auto r = eng.recv(0, 77, std::as_writable_bytes(std::span(&v, 1)), kWait);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(v, 5u);
    }
  });
}

TEST(MsgEngine, ZeroByteMessage) {
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    if (env.rank == 0) {
      ASSERT_EQ(eng.send(1, 3, {}, kWait), Status::Ok);
    } else {
      auto info = eng.recv(0, 3, {}, kWait);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info.value().len, 0u);
    }
  });
}

TEST(MsgEngine, RendezvousUnexpectedRts) {
  // RTS arrives before the matching irecv is posted.
  with_engine(2, small_config(), [](Env& env, Engine& eng) {
    constexpr std::size_t kBytes = 100000;
    if (env.rank == 0) {
      auto p = pattern(kBytes, 2);
      auto rq = eng.isend(1, 6, p);
      ASSERT_TRUE(rq.ok());
      env.bootstrap.barrier(env.rank);  // receiver hasn't posted yet
      ASSERT_EQ(eng.wait(rq.value(), nullptr, kWait), Status::Ok);
    } else {
      env.bootstrap.barrier(env.rank);
      // Let the RTS land in the unexpected queue first.
      util::Deadline dl(kWait);
      while (!eng.iprobe(0, 6) && !dl.expired()) {
      }
      std::vector<std::byte> out(kBytes);
      auto info = eng.recv(0, 6, out, kWait);
      ASSERT_TRUE(info.ok());
      auto p = pattern(kBytes, 2);
      EXPECT_EQ(std::memcmp(out.data(), p.data(), kBytes), 0);
    }
  });
}

TEST(MsgEngine, ManyRanksRing) {
  with_engine(4, small_config(), [](Env& env, Engine& eng) {
    const fabric::Rank next = (env.rank + 1) % env.size;
    const fabric::Rank prev = (env.rank + env.size - 1) % env.size;
    std::uint64_t token = env.rank;
    for (int round = 0; round < 8; ++round) {
      ASSERT_EQ(eng.send(next, 1, std::as_bytes(std::span(&token, 1)), kWait),
                Status::Ok);
      auto info =
          eng.recv(prev, 1, std::as_writable_bytes(std::span(&token, 1)), kWait);
      ASSERT_TRUE(info.ok());
    }
    // After size*2 rounds the token returns home; with 8 rounds and size 4,
    // each token moved 8 hops: final owner = (origin + 8) mod 4 = origin.
    EXPECT_EQ(token, (env.rank + env.size - 8 % env.size) % env.size);
  });
}

}  // namespace
}  // namespace photon::msg
