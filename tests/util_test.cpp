#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/expected.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/sync_queue.hpp"

namespace photon {
namespace {

TEST(Status, NamesAreDistinctAndStable) {
  // Round-trip every enumerator: each code in [0, kStatusCount) must have a
  // distinct real name, and the first code past the end must not.
  std::set<std::string_view> names;
  for (int i = 0; i < kStatusCount; ++i) {
    const std::string_view n = status_name(static_cast<Status>(i));
    EXPECT_FALSE(n.empty()) << "code " << i;
    EXPECT_NE(n, "UnknownStatus") << "code " << i;
    names.insert(n);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kStatusCount));
  EXPECT_EQ(status_name(Status::Ok), "Ok");
  EXPECT_EQ(status_name(Status::Timeout), "Timeout");
  EXPECT_EQ(status_name(Status::PeerUnreachable), "PeerUnreachable");
  EXPECT_EQ(status_name(static_cast<Status>(kStatusCount)), "UnknownStatus");
}

TEST(Status, TransientClassification) {
  EXPECT_TRUE(transient(Status::Retry));
  EXPECT_TRUE(transient(Status::QueueFull));
  EXPECT_TRUE(transient(Status::NotFound));
  EXPECT_FALSE(transient(Status::Ok));
  EXPECT_FALSE(transient(Status::InvalidKey));
  EXPECT_FALSE(transient(Status::OutOfBounds));
  // Reliable-delivery verdicts are hard errors: retrying without a
  // reconnect/fence protocol cannot clear them.
  EXPECT_FALSE(transient(Status::Timeout));
  EXPECT_FALSE(transient(Status::PeerUnreachable));
}

TEST(Result, ValueAndStatusPaths) {
  util::Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  util::Result<int> bad(Status::InvalidKey);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), Status::InvalidKey);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(good.value_or(-1), 42);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  util::OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  util::OnlineStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Histogram, PercentilesBracketValues) {
  util::Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  // p50 of 1..1000 is ~500; bucket upper bound must be >= 500 and < 1024.
  const auto p50 = h.percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LT(p50, 1024u);
  EXPECT_GE(h.percentile(100), 1000u);
}

TEST(Histogram, MergeAddsCounts) {
  util::Histogram a, b;
  a.add(5);
  b.add(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, ZeroGoesToBucketZero) {
  util::Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  util::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  util::Xoshiro256 r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  util::Xoshiro256 r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SyncQueue, FifoOrder) {
  util::SyncQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_pop().value(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SyncQueue, BoundedTryPush) {
  util::SyncQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(SyncQueue, CloseWakesBlockedPop) {
  util::SyncQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  t.join();
}

TEST(SyncQueue, CrossThreadTransfer) {
  util::SyncQueue<int> q(64);
  constexpr int kN = 10000;
  std::thread prod([&] {
    for (int i = 0; i < kN; ++i) q.push(i);
  });
  long long sum = 0;
  for (int i = 0; i < kN; ++i) sum += q.pop().value();
  prod.join();
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(SpscRing, CapacityAndWrap) {
  util::SpscRing<int> r(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(r.try_push(1));
    EXPECT_TRUE(r.try_push(2));
    EXPECT_TRUE(r.try_push(3));
    EXPECT_TRUE(r.try_push(4));
    EXPECT_FALSE(r.try_push(5));
    for (int i = 1; i <= 4; ++i) EXPECT_EQ(r.try_pop().value(), i);
    EXPECT_FALSE(r.try_pop().has_value());
  }
}

TEST(SpscRing, CrossThreadStream) {
  util::SpscRing<std::uint64_t> r(256);
  constexpr std::uint64_t kN = 100000;
  std::thread prod([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (r.try_push(i)) ++i;
      else std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < kN) {
    if (auto v = r.try_pop()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  prod.join();
}

}  // namespace
}  // namespace photon
