// Collective property sweeps: payload sizes across chunking boundaries,
// mixed types/ops, foreign-event preservation, and randomized back-to-back
// sequences.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "coll/communicator.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace photon::coll {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

void with_comm(std::uint32_t nranks,
               const std::function<void(Env&, core::Photon&, Communicator&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    Communicator comm(ph);
    body(env, ph, comm);
    env.bootstrap.barrier(env.rank);
  });
}

// Broadcast payload sizes straddling the chunking boundary (default eager
// threshold 8192): 1 chunk, exactly 1 chunk, several chunks, ragged tail.
class BcastSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BcastSizeSweep, PayloadIntactAtEverySize) {
  const std::size_t n = GetParam();
  with_comm(4, [&](Env& env, core::Photon&, Communicator& comm) {
    std::vector<std::byte> data(n);
    if (env.rank == 2) {
      auto p = pattern(n, static_cast<std::uint8_t>(n % 251));
      std::memcpy(data.data(), p.data(), n);
    }
    comm.broadcast(data, /*root=*/2);
    auto expect = pattern(n, static_cast<std::uint8_t>(n % 251));
    ASSERT_EQ(std::memcmp(data.data(), expect.data(), n), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BcastSizeSweep,
                         ::testing::Values(1, 8191, 8192, 8193, 16384, 30000,
                                           100000));

// Allgather with multi-chunk blocks.
TEST(CollProperty, AllgatherLargeBlocks) {
  with_comm(3, [](Env& env, core::Photon&, Communicator& comm) {
    constexpr std::size_t kBlock = 20'000;
    auto mine = pattern(kBlock, static_cast<std::uint8_t>(env.rank + 1));
    std::vector<std::byte> all(kBlock * 3);
    comm.allgather(mine, all);
    for (std::uint32_t r = 0; r < 3; ++r) {
      auto expect = pattern(kBlock, static_cast<std::uint8_t>(r + 1));
      ASSERT_EQ(std::memcmp(all.data() + kBlock * r, expect.data(), kBlock), 0)
          << "block " << r;
    }
  });
}

TEST(CollProperty, AlltoallLargeBlocks) {
  with_comm(3, [](Env& env, core::Photon&, Communicator& comm) {
    constexpr std::size_t kBlock = 12'000;
    std::vector<std::byte> send(kBlock * 3), recv(kBlock * 3);
    for (std::uint32_t d = 0; d < 3; ++d) {
      auto p = pattern(kBlock, static_cast<std::uint8_t>(env.rank * 16 + d));
      std::memcpy(send.data() + kBlock * d, p.data(), kBlock);
    }
    comm.alltoall(send, recv, kBlock);
    for (std::uint32_t s = 0; s < 3; ++s) {
      auto expect = pattern(kBlock, static_cast<std::uint8_t>(s * 16 + env.rank));
      ASSERT_EQ(std::memcmp(recv.data() + kBlock * s, expect.data(), kBlock), 0)
          << "from " << s;
    }
  });
}

// Typed allreduce across element types.
TEST(CollProperty, AllreduceTypedVariants) {
  with_comm(4, [](Env& env, core::Photon&, Communicator& comm) {
    {
      std::vector<std::int32_t> v(5, static_cast<std::int32_t>(env.rank) - 1);
      comm.allreduce(std::span(v), ReduceOp::kSum);
      for (auto x : v) ASSERT_EQ(x, (-1) + 0 + 1 + 2);
    }
    {
      std::vector<float> v(3, 0.5f * static_cast<float>(env.rank + 1));
      comm.allreduce(std::span(v), ReduceOp::kMax);
      for (auto x : v) ASSERT_FLOAT_EQ(x, 2.0f);
    }
    {
      std::vector<std::uint64_t> v(2, env.rank + 1);
      comm.allreduce(std::span(v), ReduceOp::kProd);
      for (auto x : v) ASSERT_EQ(x, 24u);
    }
  });
}

// Foreign (application) events arriving during a collective must be
// preserved and retrievable afterwards.
TEST(CollProperty, ForeignEventsSurviveCollectives) {
  with_comm(2, [](Env& env, core::Photon& ph, Communicator& comm) {
    constexpr std::uint64_t kWait = 2'000'000'000ULL;
    if (env.rank == 0) {
      // Send an application event, then join the barrier immediately so the
      // peer's barrier traffic interleaves with the app event.
      ASSERT_EQ(ph.signal(1, 0x1234, kWait), Status::Ok);
      comm.barrier();
    } else {
      comm.barrier();
      // The app event may be in photon's queue or stashed as foreign.
      bool found = false;
      util::Deadline dl(kWait);
      while (!found && !dl.expired()) {
        for (auto& ev : comm.take_foreign_events())
          if (ev.id == 0x1234) found = true;
        if (!found) {
          core::ProbeEvent ev;
          if (ph.wait_event(ev, 50'000'000ULL) == Status::Ok &&
              ev.id == 0x1234)
            found = true;
        }
      }
      EXPECT_TRUE(found);
    }
    env.bootstrap.barrier(env.rank);
  });
}

// Randomized sequences of collectives (same seed on all ranks) — ordering
// discipline is the only requirement; results must be exact.
TEST(CollProperty, RandomizedCollectiveSequences) {
  constexpr std::uint32_t kRanks = 4;
  with_comm(kRanks, [](Env& env, core::Photon&, Communicator& comm) {
    util::Xoshiro256 rng(77);  // same schedule everywhere
    for (int step = 0; step < 30; ++step) {
      switch (rng.below(4)) {
        case 0:
          comm.barrier();
          break;
        case 1: {
          const auto root = static_cast<fabric::Rank>(rng.below(kRanks));
          // Every rank must draw (keeps the shared schedule in lockstep).
          const std::uint64_t payload = rng.next();
          std::uint64_t v = env.rank == root ? payload : 0;
          comm.broadcast(std::as_writable_bytes(std::span(&v, 1)), root);
          ASSERT_EQ(v, payload);
          break;
        }
        case 2: {
          std::uint64_t v = env.rank + static_cast<std::uint64_t>(step);
          v = comm.allreduce_one(v, ReduceOp::kSum);
          std::uint64_t expect = 0;
          for (std::uint32_t r = 0; r < kRanks; ++r)
            expect += r + static_cast<std::uint64_t>(step);
          ASSERT_EQ(v, expect);
          break;
        }
        default: {
          std::uint64_t mine = env.rank * 31 + static_cast<std::uint64_t>(step);
          std::vector<std::uint64_t> all(kRanks);
          comm.allgather(std::as_bytes(std::span(&mine, 1)),
                         std::as_writable_bytes(std::span(all)));
          for (std::uint32_t r = 0; r < kRanks; ++r)
            ASSERT_EQ(all[r], r * 31 + static_cast<std::uint64_t>(step));
          break;
        }
      }
    }
  });
}

// Broadcast value agreement under a randomized root with non-pow2 ranks.
TEST(CollProperty, NonPowerOfTwoRootsAgree) {
  with_comm(5, [](Env& env, core::Photon&, Communicator& comm) {
    for (fabric::Rank root = 0; root < 5; ++root) {
      std::array<std::uint64_t, 3> v{};
      if (env.rank == root) v = {root * 10ull, root * 20ull, root * 30ull};
      comm.broadcast(std::as_writable_bytes(std::span(v)), root);
      ASSERT_EQ(v[0], root * 10ull);
      ASSERT_EQ(v[1], root * 20ull);
      ASSERT_EQ(v[2], root * 30ull);
      // And a reduce back to the same root.
      std::array<std::uint64_t, 1> sum{env.rank + 1ull};
      comm.reduce(std::span<std::uint64_t>(sum), ReduceOp::kSum, root);
      if (env.rank == root) {
        ASSERT_EQ(sum[0], 15u);
      }
    }
  });
}

}  // namespace
}  // namespace photon::coll
