#include <gtest/gtest.h>

#include "fabric/wire_model.hpp"

namespace photon::fabric {
namespace {

WireConfig base() {
  WireConfig c;
  c.enabled = true;
  c.latency_ns = 1000;
  c.send_overhead_ns = 100;
  c.recv_overhead_ns = 50;
  c.gap_ns = 40;
  c.per_byte_ns = 0.5;
  c.atomic_exec_ns = 30;
  return c;
}

TEST(WireModel, DisabledIsFree) {
  WireConfig c;
  c.enabled = false;
  WireModel wm(c, 2);
  const auto t = wm.transfer(0, 1, 777, 1 << 20);
  EXPECT_EQ(t.local_done, 777u);
  EXPECT_EQ(t.deliver, 777u);
  EXPECT_EQ(wm.send_overhead(), 0u);
  EXPECT_EQ(wm.recv_overhead(), 0u);
}

TEST(WireModel, TransferCostsMatchLogGp) {
  WireModel wm(base(), 2);
  // First message on an idle link: start = ready, busy = g + n*G.
  const auto t = wm.transfer(0, 1, 0, 100);
  EXPECT_EQ(t.local_done, 40u + 50u);          // g + 100*0.5
  EXPECT_EQ(t.deliver, 40u + 50u + 1000u);     // + L
}

TEST(WireModel, LinkSerializesBackToBackMessages) {
  WireModel wm(base(), 2);
  const auto t1 = wm.transfer(0, 1, 0, 1000);
  const auto t2 = wm.transfer(0, 1, 0, 1000);
  // Second transfer must start after the first finishes on the link.
  EXPECT_GE(t2.local_done, t1.local_done + 40u + 500u);
}

TEST(WireModel, DistinctLinksDoNotSerialize) {
  WireModel wm(base(), 3);
  const auto t1 = wm.transfer(0, 1, 0, 1u << 20);
  const auto t2 = wm.transfer(2, 1, 0, 64);
  // A different sender's link is independent; its small message is not
  // stuck behind rank 0's megabyte.
  EXPECT_LT(t2.local_done, t1.local_done);
}

TEST(WireModel, NicGapSerializesAcrossDestinations) {
  WireModel wm(base(), 3);
  const auto a = wm.transfer(0, 1, 0, 0);
  const auto b = wm.transfer(0, 2, 0, 0);
  // Same NIC injects both: second start >= first start + g.
  EXPECT_GE(b.local_done, a.local_done + 40u - 1);
}

TEST(WireModel, BandwidthShapeLargeMessages) {
  WireModel wm(base(), 2);
  const auto t = wm.transfer(0, 1, 0, 1'000'000);
  // Dominated by n*G = 500 us.
  EXPECT_NEAR(static_cast<double>(t.local_done), 500'040.0, 1.0);
}

TEST(WireModel, GetIsRequestPlusDataPhase) {
  WireModel wm(base(), 2);
  const auto t = wm.get(0, 1, 0, 1000);
  // request: g + 16*0.5 + L = 1048; data: g + 500; back: + L.
  const std::uint64_t expect = (40 + 8 + 1000) + (40 + 500) + 1000;
  EXPECT_EQ(t.local_done, expect);
  EXPECT_EQ(t.deliver, 40u + 8u + 1000u);  // target-side touch time
}

TEST(WireModel, GetRoundTripExceedsPutOneWay) {
  WireModel wm(base(), 2);
  const auto put = wm.transfer(0, 1, 0, 4096);
  WireModel wm2(base(), 2);
  const auto get = wm2.get(0, 1, 0, 4096);
  EXPECT_GT(get.local_done, put.deliver);
}

TEST(WireModel, AtomicIsFullRoundTrip) {
  WireModel wm(base(), 2);
  const auto t = wm.atomic_op(0, 1, 0);
  EXPECT_GT(t.local_done, 2 * 1000u);  // two latencies minimum
  EXPECT_GT(t.deliver, 1000u);         // executed after request arrival
  EXPECT_LT(t.deliver, t.local_done);
}

TEST(WireModel, ResetClearsResourceState) {
  WireModel wm(base(), 2);
  (void)wm.transfer(0, 1, 0, 1 << 20);
  wm.reset();
  const auto t = wm.transfer(0, 1, 0, 0);
  EXPECT_EQ(t.local_done, 40u);
}

TEST(WireModel, ReadyTimeShiftsStart) {
  WireModel wm(base(), 2);
  const auto t = wm.transfer(0, 1, 5000, 0);
  EXPECT_EQ(t.local_done, 5040u);
}

}  // namespace
}  // namespace photon::fabric
