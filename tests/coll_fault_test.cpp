// Graceful degradation above the fabric: a peer declared Down must surface
// as a *fast, attributed* error in collectives, rendezvous requests, the
// two-sided engine, and the parcel transports — never as a 30 s hang — and
// quiesce()/teardown must reclaim everything the dead peer owed us.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "coll/communicator.hpp"
#include "msg/engine.hpp"
#include "parcels/transport.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 5'000'000'000ULL;  // 5 s wall, well under 30 s

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The attributed-abort contract: both the synchronous fast-fail message
/// ("... PeerUnreachable") and the await-side abort ("rank N unreachable")
/// name the unreachable peer condition.
bool attributed(const std::string& what) {
  return what.find("nreachable") != std::string::npos;
}

TEST(CollFault, BarrierAbortsAttributedWhenPeerIsKilled) {
  Cluster cluster(quiet_fabric(2));
  std::string what;
  double elapsed = 1e9;
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    env.bootstrap.barrier(env.rank);
    if (env.rank == 1) return;  // victim: dies without entering the barrier
    env.cluster.fabric().kill(1);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      comm.barrier();
      ADD_FAILURE() << "barrier returned despite dead peer";
    } catch (const std::runtime_error& e) {
      what = e.what();
      elapsed = seconds_since(t0);
    }
  });
  EXPECT_TRUE(attributed(what)) << "got: " << what;
  EXPECT_LT(elapsed, 5.0);
}

TEST(CollFault, AllreduceAbortsWhilePeerDiesMidCollective) {
  Cluster cluster(quiet_fabric(2));
  std::string what;
  double elapsed = 1e9;
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    env.bootstrap.barrier(env.rank);
    if (env.rank == 1) {
      // Die *after* the survivor has sent its exchange block, so rank 0 is
      // parked in await() when the death notification lands.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      env.cluster.fabric().kill(1);
      return;
    }
    std::vector<std::uint64_t> data(16, 3);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      comm.allreduce(std::span(data), coll::ReduceOp::kSum);
      ADD_FAILURE() << "allreduce returned despite dead peer";
    } catch (const std::runtime_error& e) {
      what = e.what();
      elapsed = seconds_since(t0);
    }
  });
  EXPECT_TRUE(attributed(what)) << "got: " << what;
  EXPECT_LT(elapsed, 5.0);
}

TEST(CollFault, PendingRendezvousRequestResolvesPeerUnreachable) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(1u << 20);
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());

    core::RequestId rq = core::kInvalidRequest;
    if (env.rank == 0) {
      // Advertise the buffer to rank 1 while it is still alive; the request
      // then waits on a FIN that will never come.
      auto r = ph.post_recv_buffer_rq(1, desc.value(), /*tag=*/7);
      ASSERT_TRUE(r.ok());
      rq = r.value();
    }
    env.bootstrap.barrier(env.rank);
    if (env.rank == 1) {
      env.cluster.fabric().kill(1);
      ph.unregister_buffer(desc.value());
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(ph.wait(rq, kWait), Status::PeerUnreachable);
    EXPECT_LT(seconds_since(t0), 5.0);
    // New posts toward the dead peer fast-fail without consuming a request.
    auto again = ph.post_recv_buffer_rq(1, desc.value(), /*tag=*/8);
    EXPECT_EQ(again.status(), Status::PeerUnreachable);
    // Everything owed by the dead peer is reclaimed; nothing left to drain.
    EXPECT_EQ(ph.quiesce(kWait), Status::Ok);
    ph.unregister_buffer(desc.value());
  });
}

TEST(CollFault, MsgEngineFailsFastAndReclaimsRendezvousSend) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> big(64 * 1024);  // rendezvous-sized
    auto p = pattern(big.size(), 5);
    std::memcpy(big.data(), p.data(), big.size());

    msg::ReqId rq = msg::kInvalidReq;
    if (env.rank == 0) {
      auto r = eng.isend(1, /*tag=*/3, big);
      ASSERT_TRUE(r.ok());
      rq = r.value();
    }
    env.bootstrap.barrier(env.rank);
    if (env.rank == 1) {
      env.cluster.fabric().kill(1);
      return;  // ~Engine fences on the bootstrap barrier with rank 0
    }
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(eng.wait(rq, nullptr, kWait), Status::PeerUnreachable);
    EXPECT_LT(seconds_since(t0), 5.0);
    const std::byte one{0x5A};
    auto again = eng.isend(1, /*tag=*/4, std::span<const std::byte>(&one, 1));
    EXPECT_EQ(again.status(), Status::PeerUnreachable);
  });
}

class TransportFaultSweep : public ::testing::TestWithParam<bool> {};

TEST_P(TransportFaultSweep, QuiesceAfterPeerDeathReturnsOk) {
  const bool photon_transport = GetParam();
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    // Both transports pin rendezvous-sized parcel bodies until the peer
    // finishes the protocol; a dead peer must not leak them past quiesce.
    auto body = [&](parcels::Transport& tr) {
      if (env.rank == 0) {
        const auto args = pattern(64 * 1024, 11);
        ASSERT_EQ(tr.send(1, /*handler=*/5, args), Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
      if (env.rank == 1) {
        env.cluster.fabric().kill(1);
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_EQ(tr.quiesce(kWait), Status::Ok);
      EXPECT_LT(seconds_since(t0), 5.0);
    };
    if (photon_transport) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      parcels::PhotonTransport tr(ph);
      body(tr);
    } else {
      msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
      parcels::MsgTransport tr(eng);
      body(tr);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(BothTransports, TransportFaultSweep,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& i) {
                           return i.param ? "Photon" : "TwoSided";
                         });

}  // namespace
}  // namespace photon
