// scatter / reduce_scatter and per-peer probing.
#include <gtest/gtest.h>

#include <cstring>

#include "coll/communicator.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon::coll {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

void with_comm(std::uint32_t nranks,
               const std::function<void(Env&, core::Photon&, Communicator&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    Communicator comm(ph);
    body(env, ph, comm);
    env.bootstrap.barrier(env.rank);
  });
}

TEST(Scatter, EveryRankGetsItsBlock) {
  with_comm(4, [](Env& env, core::Photon&, Communicator& comm) {
    std::vector<std::uint64_t> all(4), mine(1, ~0ull);
    if (env.rank == 1)
      for (std::uint32_t r = 0; r < 4; ++r) all[r] = 500 + r;
    comm.scatter(std::as_bytes(std::span(all)),
                 std::as_writable_bytes(std::span(mine)), /*root=*/1);
    EXPECT_EQ(mine[0], 500 + env.rank);
  });
}

TEST(Scatter, LargeBlocksChunkCorrectly) {
  with_comm(3, [](Env& env, core::Photon&, Communicator& comm) {
    constexpr std::size_t kBlock = 25'000;
    std::vector<std::byte> all(kBlock * 3), mine(kBlock);
    if (env.rank == 0) {
      for (std::uint32_t r = 0; r < 3; ++r) {
        auto p = pattern(kBlock, static_cast<std::uint8_t>(r + 40));
        std::memcpy(all.data() + kBlock * r, p.data(), kBlock);
      }
    }
    comm.scatter(all, mine, 0);
    auto expect = pattern(kBlock, static_cast<std::uint8_t>(env.rank + 40));
    EXPECT_EQ(std::memcmp(mine.data(), expect.data(), kBlock), 0);
  });
}

TEST(ReduceScatter, SumBlocksDistributed) {
  with_comm(4, [](Env& env, core::Photon&, Communicator& comm) {
    // Each rank contributes [rank*8 .. rank*8+7]; block b of the sum is
    // sum_r (r*8 + b*2 + {0,1}).
    std::vector<std::uint64_t> data(8);
    for (std::size_t i = 0; i < 8; ++i) data[i] = env.rank * 8 + i;
    std::vector<std::uint64_t> mine(2, 0);
    comm.reduce_scatter(std::span(data), std::span(mine), ReduceOp::kSum);
    for (std::size_t j = 0; j < 2; ++j) {
      std::uint64_t expect = 0;
      for (std::uint64_t r = 0; r < 4; ++r)
        expect += r * 8 + env.rank * 2 + j;
      EXPECT_EQ(mine[j], expect) << "element " << j;
    }
  });
}

TEST(ReduceScatter, SizeMismatchThrows) {
  with_comm(2, [](Env&, core::Photon&, Communicator& comm) {
    std::vector<std::uint64_t> data(3), mine(2);
    EXPECT_THROW(
        comm.reduce_scatter(std::span(data), std::span(mine), ReduceOp::kSum),
        std::invalid_argument);
  });
}

TEST(PerPeerProbe, FiltersWithoutReordering) {
  constexpr std::uint64_t kWait = 2'000'000'000ULL;
  with_comm(3, [](Env& env, core::Photon& ph, Communicator&) {
    if (env.rank == 0) {
      // Wait for one event from each peer, requesting rank 2's first even
      // though rank 1's likely arrives first.
      core::ProbeEvent from2;
      ASSERT_EQ(ph.wait_event_from(2, from2, kWait), Status::Ok);
      EXPECT_EQ(from2.peer, 2u);
      EXPECT_EQ(from2.id, 20u);
      core::ProbeEvent from1;
      ASSERT_EQ(ph.wait_event_from(1, from1, kWait), Status::Ok);
      EXPECT_EQ(from1.peer, 1u);
      EXPECT_EQ(from1.id, 10u);
      EXPECT_EQ(ph.probe_event_from(1), std::nullopt);
    } else {
      ASSERT_EQ(ph.signal(0, env.rank * 10, kWait), Status::Ok);
    }
    env.bootstrap.barrier(env.rank);
  });
}

TEST(PerPeerProbe, OrderPreservedWithinPeer) {
  constexpr std::uint64_t kWait = 2'000'000'000ULL;
  with_comm(2, [](Env& env, core::Photon& ph, Communicator&) {
    if (env.rank == 0) {
      for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_EQ(ph.signal(1, i, kWait), Status::Ok);
    } else {
      for (std::uint64_t i = 0; i < 5; ++i) {
        core::ProbeEvent ev;
        ASSERT_EQ(ph.wait_event_from(0, ev, kWait), Status::Ok);
        EXPECT_EQ(ev.id, i);
      }
    }
    env.bootstrap.barrier(env.rank);
  });
}

}  // namespace
}  // namespace photon::coll
