#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "parcels/parcel_engine.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon::parcels {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

enum class Kind { kPhoton, kTwoSided };

/// Build a transport of the requested kind and run the body.
void with_engine(std::uint32_t nranks, Kind kind,
                 const std::function<void(Env&, ParcelEngine&,
                                          HandlerRegistry&)>& setup_and_run) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    HandlerRegistry reg;
    if (kind == Kind::kPhoton) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      PhotonTransport tr(ph);
      ParcelEngine eng(tr, reg);
      setup_and_run(env, eng, reg);
      env.bootstrap.barrier(env.rank);
    } else {
      msg::Engine me(env.nic, env.bootstrap, msg::Config{});
      MsgTransport tr(me);
      ParcelEngine eng(tr, reg);
      setup_and_run(env, eng, reg);
      env.bootstrap.barrier(env.rank);
    }
  });
}

class TransportSweep : public ::testing::TestWithParam<Kind> {};

TEST_P(TransportSweep, PingPongWithReply) {
  with_engine(2, GetParam(), [](Env& env, ParcelEngine& eng,
                                HandlerRegistry& reg) {
    std::atomic<int> pongs{0};
    const HandlerId pong = reg.add([&](Context&) { pongs.fetch_add(1); });
    const HandlerId ping = reg.add([&, pong](Context& ctx) {
      ctx.reply(pong, ctx.args());
    });
    if (env.rank == 0) {
      std::uint64_t v = 99;
      eng.send(1, ping, std::as_bytes(std::span(&v, 1)));
      ASSERT_TRUE(eng.run_until([&] { return pongs.load() == 1; }));
    } else {
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 1; }));
    }
  });
}

TEST_P(TransportSweep, ArgsArriveIntact) {
  with_engine(2, GetParam(), [](Env& env, ParcelEngine& eng,
                                HandlerRegistry& reg) {
    std::atomic<bool> ok{false};
    const HandlerId check = reg.add([&](Context& ctx) {
      auto expect = pattern(777, 3);
      ok.store(ctx.args().size() == expect.size() &&
               std::memcmp(ctx.args().data(), expect.data(), expect.size()) ==
                   0);
    });
    if (env.rank == 0) {
      eng.send(1, check, pattern(777, 3));
      // Keep progressing so the transport can finish protocol work.
      eng.run_until([&] { return true; });
      env.bootstrap.barrier(env.rank);
    } else {
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 1; }));
      EXPECT_TRUE(ok.load());
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST_P(TransportSweep, LargeParcelBody) {
  with_engine(2, GetParam(), [](Env& env, ParcelEngine& eng,
                                HandlerRegistry& reg) {
    constexpr std::size_t kBytes = 200'000;  // rendezvous path
    std::atomic<bool> ok{false};
    const HandlerId check = reg.add([&](Context& ctx) {
      auto expect = pattern(kBytes, 8);
      ok.store(ctx.args().size() == kBytes &&
               std::memcmp(ctx.args().data(), expect.data(), kBytes) == 0);
    });
    if (env.rank == 0) {
      eng.send(1, check, pattern(kBytes, 8));
      env.bootstrap.barrier(env.rank);  // receiver confirms dispatch below
      // Drive protocol completion (FIN) while the peer pulls the body.
      eng.run_until([&] { return true; });
    } else {
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 1; }));
      EXPECT_TRUE(ok.load());
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST_P(TransportSweep, FanOutFanIn) {
  with_engine(4, GetParam(), [](Env& env, ParcelEngine& eng,
                                HandlerRegistry& reg) {
    std::atomic<std::uint64_t> sum{0};
    std::atomic<int> acks{0};
    const HandlerId ack = reg.add([&](Context&) { acks.fetch_add(1); });
    const HandlerId work = reg.add([&, ack](Context& ctx) {
      std::uint64_t v;
      std::memcpy(&v, ctx.args().data(), 8);
      sum.fetch_add(v);
      ctx.reply(ack, {});
    });
    if (env.rank == 0) {
      for (std::uint32_t d = 1; d < env.size; ++d) {
        std::uint64_t v = d * 11;
        eng.send(d, work, std::as_bytes(std::span(&v, 1)));
      }
      ASSERT_TRUE(eng.run_until([&] { return acks.load() == 3; }));
    } else {
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 1; }));
      EXPECT_EQ(sum.load(), env.rank * 11ull);
    }
  });
}

TEST_P(TransportSweep, ChainedSpawnAroundRing) {
  with_engine(4, GetParam(), [](Env& env, ParcelEngine& eng,
                                HandlerRegistry& reg) {
    std::atomic<bool> done{false};
    HandlerId hop = 0;
    hop = reg.add([&](Context& ctx) {
      std::uint64_t hops;
      std::memcpy(&hops, ctx.args().data(), 8);
      if (hops == 0) {
        done.store(true);
        return;
      }
      --hops;
      ctx.spawn((ctx.rank() + 1) % ctx.size(), hop,
                std::as_bytes(std::span(&hops, 1)));
    });
    if (env.rank == 0) {
      std::uint64_t hops = 8;  // two full laps on 4 ranks
      eng.send(1, hop, std::as_bytes(std::span(&hops, 1)));
    }
    // The token visits ranks 1,2,3,0,1,2,3,0,1 and terminates on rank 1
    // with hops==0; every other rank dispatches it exactly twice.
    if (env.rank == 1) {
      ASSERT_TRUE(eng.run_until([&] { return done.load(); }));
    } else {
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 2; }));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportSweep,
                         ::testing::Values(Kind::kPhoton, Kind::kTwoSided));

TEST(ParcelEngine, UnregisteredHandlerThrows) {
  with_engine(2, Kind::kPhoton, [](Env& env, ParcelEngine& eng,
                                   HandlerRegistry&) {
    if (env.rank == 0) {
      eng.send(1, 42, {});  // no handler 42 registered
      env.bootstrap.barrier(env.rank);
    } else {
      util::Deadline dl(2'000'000'000ULL);
      bool threw = false;
      while (!dl.expired()) {
        try {
          eng.progress();
        } catch (const std::runtime_error&) {
          threw = true;
          break;
        }
      }
      EXPECT_TRUE(threw);
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST(ParcelEngine, DispatchChargesVirtualTime) {
  Cluster cluster(photon::testing::timed_fabric(2));
  cluster.run([&](Env& env) {
    HandlerRegistry reg;
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    PhotonTransport tr(ph);
    EngineConfig cfg;
    cfg.dispatch_cost_ns = 1000;
    ParcelEngine eng(tr, reg, cfg);
    const HandlerId h = reg.add([](Context&) {});
    if (env.rank == 0) {
      for (int i = 0; i < 10; ++i) eng.send(1, h, {});
    } else {
      const std::uint64_t t0 = env.clock().now();
      ASSERT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 10; }));
      EXPECT_GE(env.clock().now() - t0, 10 * 1000u);
    }
    env.bootstrap.barrier(env.rank);
  });
}

}  // namespace
}  // namespace photon::parcels
