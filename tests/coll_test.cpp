#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "coll/communicator.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon::coll {
namespace {

using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

void with_comm(std::uint32_t nranks,
               const std::function<void(Env&, Communicator&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    Communicator comm(ph);
    body(env, comm);
    env.bootstrap.barrier(env.rank);
  });
}

class RankCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RankCountSweep, BarrierSynchronizesAllRanks) {
  const std::uint32_t n = GetParam();
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<bool> violated{false};
  with_comm(n, [&](Env&, Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      arrived.fetch_add(1);
      comm.barrier();
      // After the barrier every rank must have arrived in this round.
      if (arrived.load() < n * static_cast<std::uint32_t>(round + 1))
        violated.store(true);
      comm.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(RankCountSweep, BroadcastFromEveryRoot) {
  const std::uint32_t n = GetParam();
  with_comm(n, [&](Env& env, Communicator& comm) {
    for (std::uint32_t root = 0; root < n; ++root) {
      std::vector<std::uint64_t> data(17, env.rank == root ? 1000 + root : 0);
      comm.broadcast(std::as_writable_bytes(std::span(data)), root);
      for (auto v : data) ASSERT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(RankCountSweep, AllreduceSumMatchesFormula) {
  const std::uint32_t n = GetParam();
  with_comm(n, [&](Env& env, Communicator& comm) {
    std::vector<std::uint64_t> data(33);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = env.rank * 100 + i;
    comm.allreduce(std::span(data), ReduceOp::kSum);
    for (std::size_t i = 0; i < data.size(); ++i) {
      std::uint64_t expect = 0;
      for (std::uint32_t r = 0; r < n; ++r) expect += r * 100 + i;
      ASSERT_EQ(data[i], expect) << "element " << i;
    }
  });
}

TEST_P(RankCountSweep, AllgatherCollectsInRankOrder) {
  const std::uint32_t n = GetParam();
  with_comm(n, [&](Env& env, Communicator& comm) {
    std::uint64_t mine = 7000 + env.rank;
    std::vector<std::uint64_t> all(n);
    comm.allgather(std::as_bytes(std::span(&mine, 1)),
                   std::as_writable_bytes(std::span(all)));
    for (std::uint32_t r = 0; r < n; ++r) ASSERT_EQ(all[r], 7000 + r);
  });
}

TEST_P(RankCountSweep, AlltoallPermutesBlocks) {
  const std::uint32_t n = GetParam();
  with_comm(n, [&](Env& env, Communicator& comm) {
    std::vector<std::uint64_t> send(n), recv(n, 0);
    for (std::uint32_t d = 0; d < n; ++d) send[d] = env.rank * 1000 + d;
    comm.alltoall(std::as_bytes(std::span(send)),
                  std::as_writable_bytes(std::span(recv)), sizeof(std::uint64_t));
    for (std::uint32_t s = 0; s < n; ++s)
      ASSERT_EQ(recv[s], s * 1000 + env.rank);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCountSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

TEST(Collectives, ReduceToNonZeroRoot) {
  with_comm(4, [](Env& env, Communicator& comm) {
    std::vector<std::int64_t> data(9, static_cast<std::int64_t>(env.rank + 1));
    comm.reduce(std::span(data), ReduceOp::kProd, /*root=*/2);
    if (env.rank == 2) {
      for (auto v : data) ASSERT_EQ(v, 24);  // 1*2*3*4
    }
  });
}

TEST(Collectives, MinMaxAndBitwiseOps) {
  with_comm(4, [](Env& env, Communicator& comm) {
    std::vector<std::uint64_t> v{env.rank + 10ull};
    comm.allreduce(std::span(v), ReduceOp::kMin);
    ASSERT_EQ(v[0], 10u);
    v[0] = env.rank + 10ull;
    comm.allreduce(std::span(v), ReduceOp::kMax);
    ASSERT_EQ(v[0], 13u);
    v[0] = 1ull << env.rank;
    comm.allreduce(std::span(v), ReduceOp::kBor);
    ASSERT_EQ(v[0], 0xFu);
    v[0] = env.rank;
    comm.allreduce(std::span(v), ReduceOp::kBxor);
    ASSERT_EQ(v[0], 0u ^ 1u ^ 2u ^ 3u);
  });
}

TEST(Collectives, DoubleSumIsExactForIntegers) {
  with_comm(3, [](Env& env, Communicator& comm) {
    double v = static_cast<double>(env.rank + 1);
    v = comm.allreduce_one(v, ReduceOp::kSum);
    ASSERT_DOUBLE_EQ(v, 6.0);
  });
}

TEST(Collectives, GatherToRoot) {
  with_comm(4, [](Env& env, Communicator& comm) {
    std::uint64_t mine = env.rank * env.rank;
    std::vector<std::uint64_t> all(4, ~0ull);
    comm.gather(std::as_bytes(std::span(&mine, 1)),
                std::as_writable_bytes(std::span(all)), /*root=*/1);
    if (env.rank == 1) {
      for (std::uint32_t r = 0; r < 4; ++r)
        ASSERT_EQ(all[r], std::uint64_t{r} * r);
    }
  });
}

TEST(Collectives, LargeBroadcastChunksAcrossEagerLimit) {
  with_comm(3, [](Env& env, Communicator& comm) {
    // Default eager threshold is 8 KiB; 100 KB forces multi-chunk blocks.
    std::vector<std::byte> data(100'000);
    if (env.rank == 0) {
      auto p = photon::testing::pattern(data.size(), 77);
      std::memcpy(data.data(), p.data(), data.size());
    }
    comm.broadcast(data, 0);
    auto expect = photon::testing::pattern(data.size(), 77);
    ASSERT_EQ(std::memcmp(data.data(), expect.data(), data.size()), 0);
  });
}

TEST(Collectives, BackToBackMixedCollectives) {
  with_comm(4, [](Env& env, Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      comm.barrier();
      std::uint64_t v = env.rank + static_cast<std::uint64_t>(i);
      v = comm.allreduce_one(v, ReduceOp::kSum);
      ASSERT_EQ(v, 6u + 4u * static_cast<std::uint64_t>(i));
      std::vector<std::uint64_t> data(
          1, env.rank == static_cast<fabric::Rank>(i % 4) ? v : 0);
      comm.broadcast(std::as_writable_bytes(std::span(data)),
                     static_cast<fabric::Rank>(i % 4));
      ASSERT_EQ(data[0], v);
    }
  });
}

TEST(Collectives, VirtualTimeGrowsLogarithmically) {
  // Barrier cost in virtual time should grow ~log2(P), a key R-8 shape.
  auto barrier_vtime = [](std::uint32_t n) {
    Cluster cluster(photon::testing::timed_fabric(n));
    std::atomic<std::uint64_t> max_vt{0};
    cluster.run([&](Env& env) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      Communicator comm(ph);
      env.bootstrap.barrier(env.rank);
      const std::uint64_t t0 = env.clock().now();
      comm.barrier();
      const std::uint64_t dt = env.clock().now() - t0;
      std::uint64_t cur = max_vt.load();
      while (cur < dt && !max_vt.compare_exchange_weak(cur, dt)) {
      }
      env.bootstrap.barrier(env.rank);
    });
    return max_vt.load();
  };
  const auto t2 = barrier_vtime(2);
  const auto t8 = barrier_vtime(8);
  EXPECT_GT(t8, t2);
  EXPECT_LT(t8, t2 * 8);  // sub-linear: dissemination is log P rounds
}

}  // namespace
}  // namespace photon::coll
