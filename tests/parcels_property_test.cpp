// Parcel-runtime property tests: transport parity (the same seeded program
// must compute the same answer over Photon and over the two-sided
// baseline), randomized spawn trees, and large-body sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "parcels/parcel_engine.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace photon::parcels {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

enum class Kind { kPhoton, kTwoSided };

/// Runs a seeded scatter/ack program and returns the checksum accumulated
/// on rank 0.
std::uint64_t run_scatter_program(Kind kind, std::uint64_t seed,
                                  std::uint32_t nranks, int rounds) {
  Cluster cluster(quiet_fabric(nranks));
  std::atomic<std::uint64_t> result{0};
  cluster.run([&](Env& env) {
    HandlerRegistry reg;
    auto body = [&](ParcelEngine& eng) {
      std::atomic<std::uint64_t> local_sum{0};
      std::atomic<int> acks{0};
      const HandlerId ack = reg.add([&](Context& ctx) {
        std::uint64_t v;
        std::memcpy(&v, ctx.args().data(), 8);
        local_sum.fetch_add(v);
        acks.fetch_add(1);
      });
      const HandlerId work = reg.add([&, ack](Context& ctx) {
        std::uint64_t v;
        std::memcpy(&v, ctx.args().data(), 8);
        std::uint64_t r = v * 2654435761u + ctx.rank();
        ctx.reply(ack, std::as_bytes(std::span(&r, 1)));
      });
      const HandlerId stop = reg.add([&](Context&) { acks.fetch_add(1000000); });

      env.bootstrap.barrier(env.rank);
      if (env.rank == 0) {
        util::Xoshiro256 rng(seed);
        int expected = 0;
        for (int i = 0; i < rounds; ++i) {
          const auto dst =
              static_cast<fabric::Rank>(1 + rng.below(nranks - 1));
          std::uint64_t v = rng.next();
          eng.send(dst, work, std::as_bytes(std::span(&v, 1)));
          ++expected;
        }
        EXPECT_TRUE(eng.run_until([&] { return acks.load() == expected; }));
        result.store(local_sum.load());
        for (fabric::Rank d = 1; d < nranks; ++d) eng.send(d, stop, {});
      } else {
        EXPECT_TRUE(eng.run_until([&] { return acks.load() >= 1000000; }));
      }
      env.bootstrap.barrier(env.rank);
    };
    if (kind == Kind::kPhoton) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      PhotonTransport tr(ph);
      ParcelEngine eng(tr, reg);
      body(eng);
    } else {
      msg::Engine me(env.nic, env.bootstrap, msg::Config{});
      MsgTransport tr(me);
      ParcelEngine eng(tr, reg);
      body(eng);
    }
  });
  return result.load();
}

TEST(ParcelParity, TransportsComputeIdenticalResults) {
  for (std::uint64_t seed : {1ull, 42ull, 777ull}) {
    const auto a = run_scatter_program(Kind::kPhoton, seed, 4, 60);
    const auto b = run_scatter_program(Kind::kTwoSided, seed, 4, 60);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_NE(a, 0u);
  }
}

class BodySizeSweep
    : public ::testing::TestWithParam<std::tuple<Kind, std::size_t>> {};

TEST_P(BodySizeSweep, BodiesArriveIntact) {
  const auto [kind, size] = GetParam();
  Cluster cluster(quiet_fabric(2));
  cluster.run([&, size = size, kind = kind](Env& env) {
    HandlerRegistry reg;
    auto body = [&](ParcelEngine& eng) {
      std::atomic<bool> ok{false};
      const HandlerId check = reg.add([&](Context& ctx) {
        auto expect = pattern(size, static_cast<std::uint8_t>(size % 250));
        ok.store(ctx.args().size() == size &&
                 (size == 0 || std::memcmp(ctx.args().data(), expect.data(),
                                           size) == 0));
      });
      env.bootstrap.barrier(env.rank);
      if (env.rank == 0) {
        eng.send(1, check, pattern(size, static_cast<std::uint8_t>(size % 250)));
        env.bootstrap.barrier(env.rank);
        eng.run_until([&] { return true; });
      } else {
        EXPECT_TRUE(eng.run_until([&] { return eng.parcels_dispatched() >= 1; }));
        EXPECT_TRUE(ok.load());
        env.bootstrap.barrier(env.rank);
      }
      env.bootstrap.barrier(env.rank);
    };
    if (kind == Kind::kPhoton) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      PhotonTransport tr(ph);
      ParcelEngine eng(tr, reg);
      body(eng);
    } else {
      msg::Engine me(env.nic, env.bootstrap, msg::Config{});
      MsgTransport tr(me);
      ParcelEngine eng(tr, reg);
      body(eng);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BodySizeSweep,
    ::testing::Combine(::testing::Values(Kind::kPhoton, Kind::kTwoSided),
                       ::testing::Values<std::size_t>(0, 1, 64, 8192, 8193,
                                                      100000)));

// Randomized spawn tree: every parcel spawns children until a depth limit;
// a global counter of dispatched parcels must equal the tree size computed
// analytically from the seed.
TEST(ParcelProperty, RandomSpawnTreeCountsMatch) {
  constexpr std::uint32_t kRanks = 4;
  Cluster cluster(quiet_fabric(kRanks));
  std::atomic<std::uint64_t> total_dispatched{0};
  // Precompute expected tree size with the same deterministic rule the
  // handler uses: node (depth, path) has children iff depth < 3, count =
  // 1 + (hash(path) % 2).
  std::function<std::uint64_t(std::uint64_t, int)> tree_size =
      [&](std::uint64_t path, int depth) -> std::uint64_t {
    if (depth >= 3) return 1;
    const std::uint64_t kids = 1 + ((path * 2654435761u) >> 7) % 2;
    std::uint64_t n = 1;
    for (std::uint64_t k = 0; k < kids; ++k)
      n += tree_size(path * 31 + k + 1, depth + 1);
    return n;
  };
  const std::uint64_t expected = tree_size(1, 0);

  cluster.run([&](Env& env) {
    HandlerRegistry reg;
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    PhotonTransport tr(ph);
    ParcelEngine eng(tr, reg);

    struct Node {
      std::uint64_t path;
      std::uint32_t depth;
    };
    std::atomic<bool> stop{false};
    HandlerId grow = 0;
    const HandlerId stop_h = reg.add([&](Context&) { stop.store(true); });
    grow = reg.add([&](Context& ctx) {
      Node n;
      std::memcpy(&n, ctx.args().data(), sizeof(n));
      total_dispatched.fetch_add(1);
      if (n.depth >= 3) return;
      const std::uint64_t kids = 1 + ((n.path * 2654435761u) >> 7) % 2;
      for (std::uint64_t k = 0; k < kids; ++k) {
        Node child{n.path * 31 + k + 1, n.depth + 1};
        ctx.spawn(static_cast<fabric::Rank>((n.path + k) % ctx.size()), grow,
                  std::as_bytes(std::span<const Node, 1>(&child, 1)));
      }
    });

    env.bootstrap.barrier(env.rank);
    if (env.rank == 0) {
      Node root{1, 0};
      eng.send(1 % kRanks, grow, std::as_bytes(std::span<const Node, 1>(&root, 1)));
    }
    // Everyone serves until the global count converges (checked by rank 0
    // polling the shared atomic), then rank 0 broadcasts stop.
    if (env.rank == 0) {
      EXPECT_TRUE(eng.run_until(
          [&] { return total_dispatched.load() == expected; }));
      for (fabric::Rank d = 1; d < kRanks; ++d) eng.send(d, stop_h, {});
      eng.run_until([&] { return true; });
    } else {
      EXPECT_TRUE(eng.run_until([&] { return stop.load(); }));
    }
    env.bootstrap.barrier(env.rank);
  });
  EXPECT_EQ(total_dispatched.load(), expected);
}

}  // namespace
}  // namespace photon::parcels
