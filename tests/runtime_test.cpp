#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon::runtime {
namespace {

using photon::testing::quiet_fabric;

TEST(Exchanger, AllExchangeDeliversEveryBlob) {
  Exchanger ex(4);
  std::vector<std::thread> ts;
  std::atomic<int> failures{0};
  for (std::uint32_t r = 0; r < 4; ++r) {
    ts.emplace_back([&, r] {
      std::vector<std::byte> blob(r + 1, static_cast<std::byte>(r));
      auto all = ex.all_exchange(r, blob);
      for (std::uint32_t s = 0; s < 4; ++s) {
        if (all[s].size() != s + 1 ||
            all[s][0] != static_cast<std::byte>(s))
          ++failures;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Exchanger, ConsecutiveRoundsDoNotBleed) {
  Exchanger ex(3);
  std::vector<std::thread> ts;
  std::atomic<int> failures{0};
  for (std::uint32_t r = 0; r < 3; ++r) {
    ts.emplace_back([&, r] {
      for (std::uint32_t round = 0; round < 50; ++round) {
        const std::uint64_t v = (std::uint64_t{round} << 8) | r;
        auto all = ex.all_gather(r, v);
        for (std::uint32_t s = 0; s < 3; ++s)
          if (all[s] != ((std::uint64_t{round} << 8) | s)) ++failures;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Exchanger, BarrierSynchronizes) {
  Exchanger ex(4);
  std::atomic<int> phase{0};
  std::vector<std::thread> ts;
  std::atomic<int> violations{0};
  for (std::uint32_t r = 0; r < 4; ++r) {
    ts.emplace_back([&, r] {
      phase.fetch_add(1);
      ex.barrier(r);
      if (phase.load() != 4) ++violations;
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(Cluster, RunsBodyOncePerRank) {
  Cluster cluster(quiet_fabric(4));
  std::atomic<std::uint32_t> mask{0};
  cluster.run([&](Env& env) {
    mask.fetch_or(1u << env.rank);
    EXPECT_EQ(env.size, 4u);
    EXPECT_EQ(env.nic.rank(), env.rank);
  });
  EXPECT_EQ(mask.load(), 0xFu);
}

TEST(Cluster, PropagatesRankExceptions) {
  Cluster cluster(quiet_fabric(2));
  EXPECT_THROW(
      cluster.run([&](Env& env) {
        if (env.rank == 1) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(Cluster, RunIsRepeatable) {
  Cluster cluster(quiet_fabric(2));
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    std::atomic<int> count{0};
    cluster.run([&](Env&) { count.fetch_add(1); });
    total += count.load();
  }
  EXPECT_EQ(total, 6);
}

TEST(Cluster, ResetVirtualTimeZeroesClocks) {
  fabric::FabricConfig cfg = photon::testing::timed_fabric(2);
  Cluster cluster(cfg);
  cluster.run([&](Env& env) { env.clock().add(1000); });
  EXPECT_GT(cluster.fabric().nic(0).clock().now(), 0u);
  cluster.reset_virtual_time();
  EXPECT_EQ(cluster.fabric().nic(0).clock().now(), 0u);
  EXPECT_EQ(cluster.fabric().nic(1).clock().now(), 0u);
}

TEST(Cluster, CrossRankRdmaInsideRun) {
  Cluster cluster(quiet_fabric(2));
  std::vector<std::uint64_t> cells(2, 0);
  struct Info {
    std::uint64_t addr;
    std::uint64_t rkey;
  };
  cluster.run([&](Env& env) {
    auto mr = env.nic.registry().register_memory(&cells[env.rank], 8,
                                                 fabric::kAccessAll);
    auto infos = env.bootstrap.all_gather(
        env.rank, Info{mr.value().begin(), mr.value().rkey});
    const fabric::Rank peer = 1 - env.rank;
    const std::uint64_t v = 100 + env.rank;
    ASSERT_EQ(env.nic.post_put_inline(peer, &v, 8,
                                      {infos[peer].addr, infos[peer].rkey}, 0,
                                      0, false, false),
              Status::Ok);
    env.bootstrap.barrier(env.rank);
  });
  EXPECT_EQ(cells[0], 101u);
  EXPECT_EQ(cells[1], 100u);
}

}  // namespace
}  // namespace photon::runtime
