// Epoch-fenced peer recovery: the reconnect/fence/resync protocol that
// un-latches Down.
//
//   * PeerHealthProperty — randomized transition-matrix property test for
//     the Up/Suspect/Down/Probing/Recovering lattice: monotone epoch and
//     generation counters, and no interleaving of observations resurrects
//     a peer without the explicit fence path.
//   * NicRecovery       — the tentpole contract at the fabric layer: a peer
//     driven Down by a scripted outage returns to kUp after the link
//     reopens and a fence runs; frames from the dead epoch are counted as
//     stale_epoch_drops and never delivered.
//   * CoreRecovery      — auto_recover policy at the Photon layer: posts
//     fail fast while the link is cut, then transparently fence and flow
//     once it reopens; payloads are byte-exact post-recovery; ops that
//     failed with PeerUnreachable stay failed (at-most-once).
//   * CollShrinkRejoin  — Communicator::shrink()/rejoin(): collectives over
//     the contracted group, then over the re-admitted full group.
//   * RecoverySoak      — scripted link flapping (down/up/down/up) during a
//     mixed parcel + one-sided put/get workload. Runs under PHOTON_CHECK
//     and TSan in CI: zero checker violations, clean quiesce on every
//     cycle, byte-exact payloads after each recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "coll/communicator.hpp"
#include "core/photon.hpp"
#include "fabric/fabric.hpp"
#include "parcels/transport.hpp"
#include "resilience/peer_health.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"

namespace photon {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;
using resilience::PeerHealth;
using resilience::PeerState;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 5'000'000'000ULL;  // 5 s wall

// ---- PeerHealth property test ------------------------------------------------

/// Reference model of one peer slot, mirroring peer_health.hpp exactly
/// (including the pre-CAS epoch publish in complete_recovery).
struct ModelSlot {
  PeerState state = PeerState::kUp;
  std::uint32_t fails = 0;
  std::uint32_t epoch = 0;
};

struct Model {
  explicit Model(std::uint32_t npeers, resilience::PeerHealthConfig cfg)
      : cfg_(cfg), slots_(npeers) {}

  void success(std::uint32_t p) {
    ModelSlot& s = slots_[p];
    if (s.state != PeerState::kUp && s.state != PeerState::kSuspect) return;
    s.fails = 0;
    s.state = PeerState::kUp;
  }
  void failure(std::uint32_t p) {
    ModelSlot& s = slots_[p];
    if (s.state == PeerState::kDown) return;
    if (s.state == PeerState::kProbing || s.state == PeerState::kRecovering) {
      down(s);
      return;
    }
    if (++s.fails >= cfg_.down_after)
      down(s);
    else if (s.fails >= cfg_.suspect_after)
      s.state = PeerState::kSuspect;
  }
  void force_down(std::uint32_t p) { down(slots_[p]); }
  bool begin_probe(std::uint32_t p) {
    if (slots_[p].state != PeerState::kDown) return false;
    slots_[p].state = PeerState::kProbing;
    return true;
  }
  bool mark_recovering(std::uint32_t p) {
    if (slots_[p].state != PeerState::kProbing) return false;
    slots_[p].state = PeerState::kRecovering;
    return true;
  }
  bool complete_recovery(std::uint32_t p, std::uint32_t e) {
    ModelSlot& s = slots_[p];
    if (e <= s.epoch) return false;
    s.epoch = e;  // published even when the state CAS below loses
    s.fails = 0;
    if (s.state != PeerState::kRecovering) return false;
    s.state = PeerState::kUp;
    ++up_gen;
    return true;
  }

  resilience::PeerHealthConfig cfg_;
  std::vector<ModelSlot> slots_;
  std::uint64_t down_gen = 0;
  std::uint64_t up_gen = 0;

 private:
  void down(ModelSlot& s) {
    if (s.state != PeerState::kDown) ++down_gen;
    s.state = PeerState::kDown;
  }
};

TEST(PeerHealthProperty, RandomizedSequencesMatchTransitionMatrix) {
  constexpr std::uint32_t kPeers = 4;
  for (std::uint32_t seed : {1u, 17u, 4242u}) {
    resilience::PeerHealthConfig cfg;  // suspect_after=1, down_after=3
    PeerHealth h(kPeers, cfg);
    Model m(kPeers, cfg);
    std::mt19937 rng(seed);
    std::uint64_t last_down_gen = 0, last_up_gen = 0;
    std::vector<std::uint32_t> last_epoch(kPeers, 0);

    for (int step = 0; step < 20000; ++step) {
      const std::uint32_t p = rng() % kPeers;
      const PeerState before = h.state(p);
      const int op = static_cast<int>(rng() % 6);
      bool fenced = false;
      switch (op) {
        case 0:
          h.record_success(p);
          m.success(p);
          break;
        case 1: {
          // record_failure returns the post-transition state.
          const PeerState got = h.record_failure(p);
          m.failure(p);
          EXPECT_EQ(got, m.slots_[p].state) << "step " << step;
          break;
        }
        case 2:
          h.force_down(p);
          m.force_down(p);
          break;
        case 3:
          EXPECT_EQ(h.begin_probe(p), m.begin_probe(p));
          break;
        case 4:
          EXPECT_EQ(h.mark_recovering(p), m.mark_recovering(p));
          break;
        case 5: {
          const std::uint32_t e = h.epoch(p) + 1;
          const bool got = h.complete_recovery(p, e);
          EXPECT_EQ(got, m.complete_recovery(p, e));
          fenced = got;
          // A stale epoch can never win.
          EXPECT_FALSE(h.complete_recovery(p, e));
          m.complete_recovery(p, e);
          break;
        }
      }
      const PeerState after = h.state(p);
      EXPECT_EQ(after, m.slots_[p].state) << "step " << step << " op " << op;
      EXPECT_EQ(h.epoch(p), m.slots_[p].epoch);
      EXPECT_EQ(h.down_generation(), m.down_gen);
      EXPECT_EQ(h.up_generation(), m.up_gen);

      // Monotone counters.
      EXPECT_GE(h.down_generation(), last_down_gen);
      EXPECT_GE(h.up_generation(), last_up_gen);
      EXPECT_GE(h.epoch(p), last_epoch[p]);
      last_down_gen = h.down_generation();
      last_up_gen = h.up_generation();
      last_epoch[p] = h.epoch(p);

      // No resurrection without a fence: a peer observed outside Up/Suspect
      // returns to Up only through a successful complete_recovery, and that
      // fence always bumps the epoch.
      if ((before == PeerState::kDown || before == PeerState::kProbing ||
           before == PeerState::kRecovering) &&
          after == PeerState::kUp) {
        EXPECT_TRUE(fenced) << "op " << op << " resurrected without a fence";
        EXPECT_GT(h.epoch(p), 0u);
      }
      // usable() is exactly {Up, Suspect}.
      EXPECT_EQ(h.usable(p),
                after == PeerState::kUp || after == PeerState::kSuspect);
    }
  }
}

// ---- NIC-level fence: Down -> reopen -> kUp, stale frames dropped -----------

TEST(NicRecovery, FenceReturnsPeerToUpAndDropsPreFenceFrames) {
  Cluster cluster(quiet_fabric(2));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    env.bootstrap.barrier(env.rank);

    if (env.rank == 1) {
      // Two pre-outage messages land in rank 0's recv CQ (delivery is
      // synchronous) but are not consumed yet.
      ASSERT_EQ(ph.send_with_completion(0, pattern(64, 1), std::nullopt, 100,
                                        kWait),
                Status::Ok);
      ASSERT_EQ(ph.send_with_completion(0, pattern(64, 2), std::nullopt, 101,
                                        kWait),
                Status::Ok);
      env.bootstrap.barrier(env.rank);  // frames parked at rank 0

      // Scripted outage toward rank 0, then reopen and fence.
      env.cluster.fabric().kill(0);
      ASSERT_TRUE(env.nic.peer_down(0));
      EXPECT_EQ(env.nic.health().state(0), PeerState::kDown);
      // Link still cut: the probe aborts back to Down without fencing.
      EXPECT_FALSE(env.nic.try_recover(0));
      EXPECT_EQ(env.nic.health().state(0), PeerState::kDown);

      env.cluster.fabric().revive(0);
      ASSERT_TRUE(env.nic.try_recover(0));
      EXPECT_EQ(env.nic.health().state(0), PeerState::kUp);
      EXPECT_FALSE(env.nic.peer_down(0));
      EXPECT_EQ(env.nic.tx_epoch(0), 1u);
      EXPECT_GE(env.nic.counters().recoveries.load(), 1u);

      // Post-fence traffic flows (the Photon layer resyncs on the epoch
      // edge transparently).
      ASSERT_EQ(ph.send_with_completion(0, pattern(64, 3), std::nullopt, 200,
                                        kWait),
                Status::Ok);
      env.bootstrap.barrier(env.rank);  // rank 0 may now consume
      env.bootstrap.barrier(env.rank);  // rank 0 done verifying
    } else {
      env.bootstrap.barrier(env.rank);  // pre-outage frames parked here
      env.bootstrap.barrier(env.rank);  // rank 1 fenced + sent fresh frame

      // Only the post-fence message may surface; the dead epoch's frames
      // are counted and dropped, never delivered.
      core::ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      EXPECT_EQ(ev.id, 200u);
      const auto expect = pattern(64, 3);
      ASSERT_EQ(ev.payload.size(), expect.size());
      EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), expect.size()),
                0);
      EXPECT_FALSE(ph.probe_event().has_value());
      EXPECT_GE(env.nic.counters().stale_epoch_drops.load(), 2u);
      env.bootstrap.barrier(env.rank);
    }
  });
}

// ---- Photon auto_recover policy ---------------------------------------------

TEST(CoreRecovery, AutoRecoverFailsFastWhileCutThenFencesTransparently) {
  fabric::FabricConfig fc = quiet_fabric(2);
  fc.nic.auto_recover = true;
  Cluster cluster(fc);
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(4096, std::byte{0});
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());
    auto all = ph.exchange_descriptors(desc.value());
    env.bootstrap.barrier(env.rank);

    if (env.rank == 0) {
      const auto payload = pattern(512, 9);
      std::memcpy(buf.data(), payload.data(), payload.size());

      env.cluster.fabric().kill(1);
      // Link still cut: the auto-probe aborts within its stall budget and
      // the post fails fast — it must NOT hang or silently succeed.
      EXPECT_EQ(ph.try_put_with_completion(1, core::local_slice(desc.value(), 0, 512),
                                           core::slice(all[1], 0, 512), 7,
                                           std::nullopt),
                Status::PeerUnreachable);
      EXPECT_TRUE(ph.peer_down(1));

      // Reopen: the next post runs the fence itself and succeeds.
      env.cluster.fabric().revive(1);
      ASSERT_EQ(ph.put_with_completion(1, core::local_slice(desc.value(), 0, 512),
                                       core::slice(all[1], 0, 512), 8,
                                       std::nullopt, kWait),
                Status::Ok);
      core::LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, 8u);
      EXPECT_FALSE(ph.peer_down(1));

      // Read the bytes back one-sided: byte-exact post-recovery.
      std::vector<std::byte> scratch(512);
      auto sdesc = ph.register_buffer(scratch.data(), scratch.size());
      ASSERT_TRUE(sdesc.ok());
      ASSERT_EQ(ph.get_with_completion(1, core::local_mut_slice(sdesc.value(), 0, 512),
                                       core::slice(all[1], 0, 512), 9,
                                       std::nullopt, kWait),
                Status::Ok);
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, 9u);
      EXPECT_EQ(std::memcmp(scratch.data(), payload.data(), 512), 0);
      EXPECT_GE(env.nic.counters().recoveries.load(), 1u);
      EXPECT_GE(env.nic.counters().recovery_probes.load(), 2u);
      ph.unregister_buffer(sdesc.value());
    }
    env.bootstrap.barrier(env.rank);
    EXPECT_EQ(ph.quiesce(kWait), Status::Ok);
    env.bootstrap.barrier(env.rank);
    ph.unregister_buffer(desc.value());
  });
}

// ---- Communicator shrink/rejoin ---------------------------------------------

TEST(CollShrinkRejoin, CollectivesSurviveShrinkThenRejoin) {
  Cluster cluster(quiet_fabric(3));
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    env.bootstrap.barrier(env.rank);

    // Warm-up collective over the full group.
    std::vector<std::uint64_t> v{env.rank + 1ull};
    comm.allreduce(std::span(v), coll::ReduceOp::kSum);
    EXPECT_EQ(v[0], 6u);  // 1+2+3

    if (env.rank == 0) env.cluster.fabric().kill(2);
    env.bootstrap.barrier(env.rank);  // everyone observes the kill

    if (env.rank != 2) {
      // Survivors contract the group and keep computing.
      EXPECT_EQ(comm.shrink(), 1u);
      EXPECT_EQ(comm.group_size(), 2u);
      std::vector<std::uint64_t> w{env.rank + 10ull};
      comm.allreduce(std::span(w), coll::ReduceOp::kSum);
      EXPECT_EQ(w[0], 21u);  // 10+11
      comm.barrier();
    } else {
      // The victim's own view never shrank (the outage cut the others'
      // links toward it, not its links toward them).
      EXPECT_EQ(comm.group_size(), 3u);
    }
    env.bootstrap.barrier(env.rank);

    if (env.rank == 0) env.cluster.fabric().revive(2);
    env.bootstrap.barrier(env.rank);

    // Everyone (survivors and the recovering rank) runs the rejoin.
    EXPECT_EQ(comm.rejoin(2), Status::Ok);
    EXPECT_EQ(comm.group_size(), 3u);

    // Full-group collectives flow again, byte-exact.
    std::vector<std::uint64_t> z{env.rank + 100ull};
    comm.allreduce(std::span(z), coll::ReduceOp::kSum);
    EXPECT_EQ(z[0], 303u);  // 100+101+102
    comm.barrier();

    env.bootstrap.barrier(env.rank);
    EXPECT_EQ(ph.quiesce(kWait), Status::Ok);
    env.bootstrap.barrier(env.rank);
  });
}

// ---- Soak: link flapping under a mixed workload -----------------------------

TEST(RecoverySoak, LinkFlapDuringMixedWorkloadStaysClean) {
  fabric::FabricConfig fc = quiet_fabric(2);
  fc.nic.auto_recover = true;
  Cluster cluster(fc);
  cluster.run([&](Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    parcels::PhotonTransport tr(ph);
    const fabric::Rank peer = env.rank ^ 1u;

    // One-sided landing zone on each rank; rank 0 is the only initiator of
    // raw put/get (local ids only — nothing enters the peer's parcel event
    // stream, and the peer never touches the RDMA'd bytes).
    std::vector<std::byte> buf(8192, std::byte{0});
    auto desc = ph.register_buffer(buf.data(), buf.size());
    ASSERT_TRUE(desc.ok());
    auto all = ph.exchange_descriptors(desc.value());
    std::vector<std::byte> scratch(1024);
    auto sdesc = ph.register_buffer(scratch.data(), scratch.size());
    ASSERT_TRUE(sdesc.ok());
    env.bootstrap.barrier(env.rank);

    constexpr int kParcels = 8;
    // Both directions exchange kParcels small parcels and verify payloads
    // byte-exact (per-peer eager order is preserved).
    auto exchange = [&](int round) {
      for (int i = 0; i < kParcels; ++i) {
        const auto body = pattern(96, round * 64 + i + env.rank * 31);
        ASSERT_EQ(tr.send(peer, 1, body), Status::Ok);
      }
      int got = 0;
      std::uint32_t spins = 0;
      while (got < kParcels) {
        if (auto p = tr.poll()) {
          EXPECT_EQ(p->handler, 1u);
          EXPECT_EQ(p->src, peer);
          const auto expect = pattern(96, round * 64 + got + peer * 31);
          ASSERT_EQ(p->args.size(), expect.size());
          EXPECT_EQ(
              std::memcmp(p->args.data(), expect.data(), expect.size()), 0);
          ++got;
        } else {
          tr.progress();
          ph.idle_wait_step(spins);
        }
      }
    };
    // Rank 0 pushes a fresh pattern into the peer's buffer and reads it
    // back one-sided; byte-exact round trip proves the post-recovery epoch
    // carries data correctly.
    auto rdma_round = [&](int round) {
      if (env.rank != 0) return;
      const auto payload = pattern(512, 200 + round);
      std::memcpy(buf.data() + 4096, payload.data(), payload.size());
      const std::uint64_t put_id = 0x9000u + static_cast<std::uint64_t>(round);
      ASSERT_EQ(ph.put_with_completion(
                    1, core::local_slice(desc.value(), 4096, 512),
                    core::slice(all[1], 4096, 512), put_id, std::nullopt,
                    kWait),
                Status::Ok);
      core::LocalComplete lc;
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, put_id);
      ASSERT_EQ(ph.get_with_completion(
                    1, core::local_mut_slice(sdesc.value(), 0, 512),
                    core::slice(all[1], 4096, 512), put_id + 1, std::nullopt,
                    kWait),
                Status::Ok);
      ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
      EXPECT_EQ(lc.id, put_id + 1);
      EXPECT_EQ(std::memcmp(scratch.data(), payload.data(), 512), 0);
    };

    constexpr int kCycles = 2;
    for (int cycle = 0; cycle < kCycles; ++cycle) {
      // Healthy phase: mixed traffic both directions. The first round after
      // a revive exercises the transparent auto-fence.
      exchange(cycle * 2);
      rdma_round(cycle * 2);
      env.bootstrap.barrier(env.rank);

      // Outage: cut the link toward rank 1. Only rank 0's NIC is affected;
      // rank 1 sits at the barrier. Posts fail fast — the auto-probe aborts
      // inside its stall budget while the window is closed.
      if (env.rank == 0) {
        env.cluster.fabric().kill(1);
        EXPECT_EQ(tr.send(1, 1, pattern(96, 7)), Status::PeerUnreachable);
        EXPECT_EQ(ph.try_put_with_completion(
                      1, core::local_slice(desc.value(), 4096, 256),
                      core::slice(all[1], 4096, 256), 0xdead, std::nullopt),
                  Status::PeerUnreachable);
        EXPECT_TRUE(ph.peer_down(1));
        env.cluster.fabric().revive(1);
      }
      env.bootstrap.barrier(env.rank);

      // Post-revive phase: traffic flows again through the new epoch.
      exchange(cycle * 2 + 1);
      rdma_round(cycle * 2 + 1);
      env.bootstrap.barrier(env.rank);
    }

    // Finalize: everything drains, nothing leaked, nothing violated.
    EXPECT_EQ(tr.quiesce(kWait), Status::Ok);
    EXPECT_EQ(ph.quiesce(kWait), Status::Ok);
    env.bootstrap.barrier(env.rank);
    EXPECT_EQ(env.nic.checker().violation_count(), 0u);
    if (env.rank == 0) {
      EXPECT_GE(env.nic.counters().recoveries.load(),
                static_cast<std::uint64_t>(kCycles));
      const auto totals = env.cluster.fabric().resilience_totals();
      EXPECT_GE(totals.recoveries, static_cast<std::uint64_t>(kCycles));
    }
    env.bootstrap.barrier(env.rank);
    ph.unregister_buffer(sdesc.value());
    ph.unregister_buffer(desc.value());
  });
}

}  // namespace
}  // namespace photon
