// Chrome about:tracing export: well-formedness (validated by a minimal JSON
// parser in this file), span derivation from tracer streams, name escaping.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>

#include "telemetry/chrome_trace.hpp"
#include "util/trace.hpp"

namespace photon::telemetry {
namespace {

using util::TraceKind;
using util::Tracer;

// ---- minimal JSON well-formedness validator ---------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return false;
    if (s_[start] == '-' && pos_ == start + 1) return false;  // bare minus
    return std::isdigit(static_cast<unsigned char>(s_[start])) ||
           s_[start] == '-';
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
            else
              ++pos_;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
};

bool valid_json(const std::string& s) { return JsonValidator(s).valid(); }

std::size_t count_substr(const std::string& hay, std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size()))
    ++n;
  return n;
}

// ---- validator sanity -------------------------------------------------------

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(valid_json(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})"));
  EXPECT_TRUE(valid_json("[]"));
  EXPECT_FALSE(valid_json(R"({"a":1,})"));
  EXPECT_FALSE(valid_json(R"({"a" 1})"));
  EXPECT_FALSE(valid_json("{\"a\":\"unterminated}"));
  EXPECT_FALSE(valid_json(R"({"a":1} trailing)"));
  EXPECT_FALSE(valid_json("{\"a\":\"raw\ncontrol\"}"));
}

// ---- ChromeTrace ------------------------------------------------------------

TEST(ChromeTrace, EmptyTraceIsWellFormed) {
  ChromeTrace ct;
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(ct.event_count(), 0u);
}

TEST(ChromeTrace, EmptyTracerIsSafe) {
  Tracer t;
  ChromeTrace ct;
  ct.add_tracer(t, 0);
  EXPECT_EQ(ct.event_count(), 0u);
  EXPECT_TRUE(valid_json(ct.to_json()));
  EXPECT_TRUE(valid_json(t.to_chrome_json()));
}

TEST(ChromeTrace, DerivesSpansFromPostAndLocalDone) {
  Tracer t;
  // Two completed puts to peer 1 and one still in flight.
  t.record(1000, TraceKind::kPut, 1, 256, 7);
  t.record(2000, TraceKind::kPut, 1, 256, 8);
  t.record(5000, TraceKind::kLocalDone, 1, 256, 7);
  t.record(6000, TraceKind::kLocalDone, 1, 256, 8);
  t.record(9000, TraceKind::kPut, 1, 256, 9);  // unpaired

  ChromeTrace ct;
  ct.add_tracer(t, 0);
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  // Two spans (completed ops) and one instant (in-flight op).
  EXPECT_EQ(count_substr(j, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_substr(j, "\"ph\":\"i\""), 1u);
  // 4.000 us duration for id 7 (5000ns - 1000ns), emitted in microseconds.
  EXPECT_NE(j.find("\"dur\":4"), std::string::npos) << j;
}

TEST(ChromeTrace, FifoPairsReusedIds) {
  Tracer t;
  // Same (peer, id) posted twice; completions pair FIFO.
  t.record(100, TraceKind::kEagerSend, 2, 64, 5);
  t.record(200, TraceKind::kEagerSend, 2, 64, 5);
  t.record(300, TraceKind::kLocalDone, 2, 64, 5);
  t.record(700, TraceKind::kLocalDone, 2, 64, 5);
  ChromeTrace ct;
  ct.add_tracer(t, 0);
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_EQ(count_substr(j, "\"ph\":\"X\""), 2u);
  // First span: 100->300 (0.2 us); second: 200->700 (0.5 us).
  EXPECT_NE(j.find("\"dur\":0.2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"dur\":0.5"), std::string::npos) << j;
}

TEST(ChromeTrace, MultiRankTraceGetsPerRankThreadsAndMetadata) {
  Tracer t0;
  Tracer t1;
  t0.record(10, TraceKind::kPut, 1, 8, 1);
  t0.record(50, TraceKind::kLocalDone, 1, 8, 1);
  t1.record(40, TraceKind::kRemoteEvent, 0, 8, 1);
  t1.record(60, TraceKind::kStall, 0, 0, 0);

  ChromeTrace ct;
  ct.add_tracer(t0, 0);
  ct.add_tracer(t1, 1);
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  // thread_name metadata for both ranks, events on tids 0 and 1.
  EXPECT_EQ(count_substr(j, "\"thread_name\""), 2u);
  EXPECT_NE(j.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(j.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(j.find("\"tid\":1"), std::string::npos);
  // Remote event and stall stay instants.
  EXPECT_EQ(count_substr(j, "\"ph\":\"i\""), 2u);
}

TEST(ChromeTrace, EscapesNamesInInstantsAndSpans) {
  ChromeTrace ct;
  ct.add_instant(0, "quote\" back\\slash \nnewline", 100);
  ct.add_span(0, "tab\there", 200, 50);
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find(R"(quote\" back\\slash \nnewline)"), std::string::npos);
  EXPECT_NE(j.find(R"(tab\there)"), std::string::npos);
}

TEST(ChromeTrace, SpanArgsSpliceAsRawJson) {
  ChromeTrace ct;
  ct.add_span(3, "op", 1000, 500, R"({"peer":7,"bytes":4096})");
  const std::string j = ct.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find(R"("args":{"peer":7,"bytes":4096})"), std::string::npos);
}

TEST(TracerChromeJson, InstantsForEveryEventKind) {
  Tracer t;
  t.record(100, TraceKind::kPut, 1, 64, 11);
  t.record(200, TraceKind::kRemoteEvent, 0, 64, 11);
  t.record(300, TraceKind::kStall, 1, 0, 0);
  const std::string j = t.to_chrome_json(/*rank=*/2);
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_EQ(count_substr(j, "\"ph\":\"i\""), 3u);
  EXPECT_NE(j.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(j.find("put"), std::string::npos);
  EXPECT_NE(j.find("stall"), std::string::npos);
}

}  // namespace
}  // namespace photon::telemetry
