// Flow-control mechanics: eager-ring credits, pads/wrap behaviour,
// ledger-slot reuse, credit returns, and the introspection counters.
#include <gtest/gtest.h>

#include <cstring>

#include "core/photon.hpp"
#include "runtime/cluster.hpp"
#include "test_helpers.hpp"
#include "util/timing.hpp"

namespace photon::core {
namespace {

using photon::testing::quiet_fabric;
using runtime::Cluster;
using runtime::Env;

constexpr std::uint64_t kWait = 2'000'000'000ULL;

void with_photon(std::uint32_t nranks, const Config& cfg,
                 const std::function<void(Env&, Photon&)>& body) {
  Cluster cluster(quiet_fabric(nranks));
  cluster.run([&](Env& env) {
    Photon ph(env.nic, env.bootstrap, cfg);
    body(env, ph);
    env.bootstrap.barrier(env.rank);
  });
}

TEST(Credits, RingCreditsStartFullAndShrinkWithTraffic) {
  Config cfg;
  cfg.eager_ring_bytes = 1u << 14;
  cfg.eager_threshold = 512;
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      EXPECT_EQ(ph.ring_credits_available(1), cfg.eager_ring_bytes);
      std::vector<std::byte> payload(512);
      ASSERT_EQ(ph.try_send_with_completion(1, payload, std::nullopt, 1),
                Status::Ok);
      EXPECT_EQ(ph.ring_credits_available(1),
                cfg.eager_ring_bytes - ring_footprint(512));
      env.bootstrap.barrier(env.rank);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST(Credits, LedgerSlotsStartFullAndShrink) {
  Config cfg;
  cfg.ledger_entries = 16;
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      EXPECT_EQ(ph.ledger_slots_available(1), 16u);
      ASSERT_EQ(ph.try_signal(1, 1), Status::Ok);
      ASSERT_EQ(ph.try_signal(1, 2), Status::Ok);
      EXPECT_EQ(ph.ledger_slots_available(1), 14u);
      env.bootstrap.barrier(env.rank);
    } else {
      ProbeEvent ev;
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      env.bootstrap.barrier(env.rank);
    }
  });
}

TEST(Credits, CreditsReturnAfterConsumerDrains) {
  Config cfg;
  cfg.eager_ring_bytes = 4096;
  cfg.eager_threshold = 512;
  cfg.credit_return_denominator = 4;  // return per 1 KiB consumed
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      std::vector<std::byte> payload(512);
      // Send 6 messages (6 * 528 = 3168 bytes of ring).
      for (int i = 0; i < 6; ++i)
        ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt,
                                          static_cast<std::uint64_t>(i), kWait),
                  Status::Ok);
      env.bootstrap.barrier(env.rank);  // receiver has drained everything
      // Wait until credits recover to (near) full.
      util::Deadline dl(kWait);
      while (ph.ring_credits_available(1) < cfg.eager_ring_bytes - 1024 &&
             !dl.expired()) {
        ph.progress();
        (void)ph.progress_jump();
      }
      EXPECT_GE(ph.ring_credits_available(1), cfg.eager_ring_bytes - 1024);
    } else {
      for (int i = 0; i < 6; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
      EXPECT_GE(ph.stats().credit_returns, 1u);
    }
  });
}

// Pads: message sizes that do not divide the ring force wrap padding; the
// stream must stay intact across many wraps and the pad count must grow.
TEST(Credits, WrapPadsPreserveStreamIntegrity) {
  Config cfg;
  cfg.eager_ring_bytes = 4096;
  cfg.eager_threshold = 700;  // footprint 716: never divides 4096
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    constexpr int kN = 100;
    if (env.rank == 0) {
      std::vector<std::byte> payload(700);
      for (int i = 0; i < kN; ++i) {
        std::memcpy(payload.data(), &i, sizeof(i));
        ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt,
                                          static_cast<std::uint64_t>(i), kWait),
                  Status::Ok);
      }
      env.bootstrap.barrier(env.rank);
      EXPECT_GE(ph.stats().pads, 10u);  // many wraps
    } else {
      for (int i = 0; i < kN; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        EXPECT_EQ(ev.id, static_cast<std::uint64_t>(i));
        int got = -1;
        std::memcpy(&got, ev.payload.data(), sizeof(got));
        EXPECT_EQ(got, i);
      }
      env.bootstrap.barrier(env.rank);
    }
  });
}

// Ring-capacity property: with a ring sized for exactly k messages, k posts
// succeed and the (k+1)-th reports Retry.
class RingCapacity : public ::testing::TestWithParam<int> {};

TEST_P(RingCapacity, ExactCapacityEnforced) {
  const int k = GetParam();
  Config cfg;
  cfg.eager_threshold = 256;
  const std::size_t footprint = ring_footprint(256);
  cfg.eager_ring_bytes = footprint * static_cast<std::size_t>(k);
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      std::vector<std::byte> payload(256);
      for (int i = 0; i < k; ++i)
        ASSERT_EQ(ph.try_send_with_completion(1, payload, std::nullopt, 1),
                  Status::Ok)
            << "post " << i << " of " << k;
      EXPECT_EQ(ph.try_send_with_completion(1, payload, std::nullopt, 1),
                Status::Retry);
      // Unblock the receiver's expected count.
      env.bootstrap.barrier(env.rank);
    } else {
      env.bootstrap.barrier(env.rank);
      for (int i = 0; i < k; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingCapacity, ::testing::Values(2, 3, 5, 8));

TEST(Credits, LedgerWrapsManyTimes) {
  Config cfg;
  cfg.ledger_entries = 4;
  with_photon(2, cfg, [&](Env& env, Photon& ph) {
    constexpr std::uint64_t kN = 100;  // 25 full wraps
    if (env.rank == 0) {
      for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(ph.signal(1, i, kWait), Status::Ok);
    } else {
      for (std::uint64_t i = 0; i < kN; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
        ASSERT_EQ(ev.id, i);
      }
    }
  });
}

TEST(Credits, StatsAccumulateConsistently) {
  with_photon(2, Config{}, [&](Env& env, Photon& ph) {
    if (env.rank == 0) {
      std::vector<std::byte> payload(100);
      for (int i = 0; i < 5; ++i)
        ASSERT_EQ(ph.send_with_completion(1, payload, std::nullopt, 1, kWait),
                  Status::Ok);
      ASSERT_EQ(ph.signal(1, 9, kWait), Status::Ok);
      EXPECT_EQ(ph.stats().eager_sent, 5u);
      EXPECT_EQ(ph.stats().eager_bytes, 500u);
      EXPECT_EQ(ph.stats().signals, 1u);
      env.bootstrap.barrier(env.rank);
    } else {
      for (int i = 0; i < 6; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
      EXPECT_EQ(ph.stats().events_delivered, 6u);
      env.bootstrap.barrier(env.rank);
    }
  });
}

// Local-id delivery under load: every send with a local id produces exactly
// one LocalComplete, in order.
TEST(Credits, LocalCompletionsMatchPostsUnderLoad) {
  with_photon(2, Config{}, [&](Env& env, Photon& ph) {
    constexpr std::uint64_t kN = 300;
    if (env.rank == 0) {
      std::vector<std::byte> payload(64);
      for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(ph.send_with_completion(1, payload, i, 0, kWait), Status::Ok);
      for (std::uint64_t i = 0; i < kN; ++i) {
        LocalComplete lc;
        ASSERT_EQ(ph.wait_local(lc, kWait), Status::Ok);
        ASSERT_EQ(lc.id, i);
        ASSERT_EQ(lc.peer, 1u);
      }
    } else {
      for (std::uint64_t i = 0; i < kN; ++i) {
        ProbeEvent ev;
        ASSERT_EQ(ph.wait_event(ev, kWait), Status::Ok);
      }
    }
  });
}

}  // namespace
}  // namespace photon::core
