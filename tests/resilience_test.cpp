// Reliable-delivery layer: CRC32C, retry policy, peer health, fault
// targeting, and the NIC retransmission machinery under scripted wire
// faults (drop / ack-drop / corruption / delay / link flaps / peer death).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fabric/fabric.hpp"
#include "resilience/crc32c.hpp"
#include "resilience/peer_health.hpp"
#include "resilience/retry.hpp"
#include "test_helpers.hpp"

namespace photon::fabric {
namespace {

using photon::testing::pattern;
using photon::testing::quiet_fabric;

// ---- CRC32C -----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 check value for the Castagnoli polynomial.
  const char digits[] = "123456789";
  EXPECT_EQ(resilience::crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(resilience::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SeedChainingMatchesOneShot) {
  auto buf = pattern(1000, 3);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{499},
                            std::size_t{999}, std::size_t{1000}}) {
    const std::uint32_t head = resilience::crc32c(buf.data(), split);
    const std::uint32_t whole =
        resilience::crc32c(buf.data() + split, buf.size() - split, head);
    EXPECT_EQ(whole, resilience::crc32c(buf.data(), buf.size()))
        << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto buf = pattern(64, 9);
  const std::uint32_t good = resilience::crc32c(buf.data(), buf.size());
  for (std::size_t bit = 0; bit < buf.size() * 8; bit += 37) {
    auto damaged = buf;
    damaged[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    EXPECT_NE(resilience::crc32c(damaged.data(), damaged.size()), good)
        << "bit " << bit;
  }
}

// ---- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicAndBounded) {
  resilience::RetryPolicy rp;
  for (std::uint32_t attempt = 1; attempt <= 12; ++attempt) {
    const std::uint64_t a = rp.backoff_ns(attempt, /*key=*/42);
    EXPECT_EQ(a, rp.backoff_ns(attempt, 42)) << "attempt " << attempt;
    // Base doubles up to the cap; jitter adds at most a quarter on top.
    std::uint64_t base = rp.rto_ns;
    for (std::uint32_t i = 1; i < attempt && base < rp.max_backoff_ns; ++i)
      base <<= 1;
    if (base > rp.max_backoff_ns) base = rp.max_backoff_ns;
    EXPECT_GE(a, base);
    EXPECT_LE(a, base + base / 4 + 1);
  }
}

TEST(RetryPolicy, JitterDecorrelatesStreams) {
  resilience::RetryPolicy rp;
  // Not a hard requirement of any one pair, but across a handful of stream
  // keys the jitter must not collapse to a constant.
  bool differs = false;
  const std::uint64_t first = rp.backoff_ns(3, 0);
  for (std::uint64_t key = 1; key < 8; ++key)
    differs = differs || rp.backoff_ns(3, key) != first;
  EXPECT_TRUE(differs);
}

// ---- PeerHealth -------------------------------------------------------------

TEST(PeerHealth, UpSuspectDownTransitionsAndLatch) {
  resilience::PeerHealth h(2);  // suspect_after=1, down_after=3
  EXPECT_EQ(h.state(1), resilience::PeerState::kUp);

  EXPECT_EQ(h.record_failure(1), resilience::PeerState::kSuspect);
  EXPECT_FALSE(h.down(1));
  h.record_success(1);
  EXPECT_EQ(h.state(1), resilience::PeerState::kUp);

  EXPECT_EQ(h.record_failure(1), resilience::PeerState::kSuspect);
  EXPECT_EQ(h.record_failure(1), resilience::PeerState::kSuspect);
  EXPECT_EQ(h.down_generation(), 0u);
  EXPECT_EQ(h.record_failure(1), resilience::PeerState::kDown);
  EXPECT_TRUE(h.down(1));
  EXPECT_EQ(h.down_generation(), 1u);

  // Down is latched: successes and further failures change nothing.
  h.record_success(1);
  EXPECT_TRUE(h.down(1));
  EXPECT_EQ(h.record_failure(1), resilience::PeerState::kDown);
  EXPECT_EQ(h.down_generation(), 1u);

  // The other peer is untouched.
  EXPECT_EQ(h.state(0), resilience::PeerState::kUp);
}

TEST(PeerHealth, ForceDownBumpsGenerationOnce) {
  resilience::PeerHealth h(3);
  h.force_down(2);
  EXPECT_TRUE(h.down(2));
  EXPECT_EQ(h.down_generation(), 1u);
  h.force_down(2);  // idempotent
  EXPECT_EQ(h.down_generation(), 1u);
  h.force_down(0);
  EXPECT_EQ(h.down_generation(), 2u);
}

TEST(PeerHealth, PeerStateNames) {
  EXPECT_STREQ(peer_state_name(resilience::PeerState::kUp), "Up");
  EXPECT_STREQ(peer_state_name(resilience::PeerState::kSuspect), "Suspect");
  EXPECT_STREQ(peer_state_name(resilience::PeerState::kDown), "Down");
}

// ---- FaultInjector targeting ------------------------------------------------

TEST(FaultInjector, PerPeerAndNthTargeting) {
  FaultInjector fi;
  fi.arm({OpCode::Put, Status::FaultInjected, /*only_peer=*/Rank{2},
          /*nth=*/3});
  EXPECT_TRUE(fi.armed());

  // Wrong peer and wrong op never count against the plan entry.
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put, Rank{1}).has_value());
  EXPECT_FALSE(fi.maybe_fail(OpCode::Get, Rank{2}).has_value());

  // Matching posts count down; the third fires.
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put, Rank{2}).has_value());
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put, Rank{2}).has_value());
  auto st = fi.maybe_fail(OpCode::Put, Rank{2});
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(*st, Status::FaultInjected);
  EXPECT_EQ(fi.fired(), 1u);
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.maybe_fail(OpCode::Put, Rank{2}).has_value());
}

TEST(FaultInjector, LegacyAnyPeerFaultStillFiresOnNextMatch) {
  FaultInjector fi;
  // Pre-targeting aggregate init: op + status only, filters defaulted.
  fi.arm({OpCode::Put, Status::InvalidKey, std::nullopt, 1});
  EXPECT_FALSE(fi.maybe_fail(OpCode::Send, Rank{1}).has_value());
  auto st = fi.maybe_fail(OpCode::Put, Rank{1});
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(*st, Status::InvalidKey);
}

// ---- NIC reliable delivery under scripted wire faults -----------------------

class WireFaultTest : public ::testing::Test {
 protected:
  WireFaultTest() : fab(quiet_fabric(2)), a(fab.nic(0)), b(fab.nic(1)) {
    src.resize(4096);
    dst.resize(4096);
    auto p = pattern(src.size());
    std::memcpy(src.data(), p.data(), p.size());
    src_mr = a.registry().register_memory(src.data(), src.size(), kAccessAll)
                 .value();
    dst_mr = b.registry().register_memory(dst.data(), dst.size(), kAccessAll)
                 .value();
  }

  LocalRef lref(std::size_t off, std::size_t len) {
    return {src.data() + off, len, src_mr.lkey};
  }
  RemoteRef rref(std::size_t off) {
    return {dst_mr.begin() + off, dst_mr.rkey};
  }

  Fabric fab;
  Nic& a;
  Nic& b;
  std::vector<std::byte> src, dst;
  MemoryRegion src_mr, dst_mr;
};

TEST_F(WireFaultTest, DroppedFrameIsMaskedByRetransmission) {
  a.faults().arm_wire({WireFault::kDrop, OpCode::Put, Rank{1}});
  ASSERT_EQ(a.post_put(1, lref(0, 4096), rref(0), 7, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
  EXPECT_EQ(a.counters().wire_drops.load(), 1u);
  EXPECT_GE(a.counters().retransmits.load(), 1u);
  EXPECT_GE(a.faults().fired(), 1u);
  // The retransmission cost is charged in virtual time, not hidden.
  EXPECT_GT(c.vtime, 0u);
}

TEST_F(WireFaultTest, CorruptedFrameIsRejectedByCrcAndRetransmitted) {
  a.faults().arm_wire({WireFault::kCorrupt, OpCode::Put, Rank{1}});
  ASSERT_EQ(a.post_put(1, lref(0, 4096), rref(0), 8, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  // The damaged frame was discarded before touching memory; the clean
  // retransmission landed the true payload.
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
  EXPECT_EQ(a.counters().wire_corruptions.load(), 1u);
  EXPECT_EQ(b.counters().crc_rejects.load(), 1u);
  EXPECT_GE(a.counters().retransmits.load(), 1u);
}

TEST_F(WireFaultTest, LostAckDuplicateIsSuppressedAtTarget) {
  a.faults().arm_wire({WireFault::kAckDrop, OpCode::PutImm, Rank{1}});
  ASSERT_EQ(a.post_put_imm(1, lref(0, 256), rref(0), 0xABCD, 9, true),
            Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 256), 0);
  EXPECT_EQ(a.counters().wire_ack_drops.load(), 1u);
  EXPECT_EQ(b.counters().dup_suppressed.load(), 1u);
  // Exactly one target event despite the retransmission.
  Completion ev;
  ASSERT_EQ(b.jump_recv(ev), Status::Ok);
  EXPECT_EQ(ev.imm, 0xABCDu);
  EXPECT_EQ(b.poll_recv(ev), Status::NotFound);
}

TEST_F(WireFaultTest, AtomicDuplicateReplaysCachedResult) {
  auto* ctr = reinterpret_cast<std::uint64_t*>(dst.data());
  *ctr = 100;
  a.faults().arm_wire({WireFault::kAckDrop, OpCode::FetchAdd, Rank{1}});
  ASSERT_EQ(a.post_fetch_add(1, rref(0), 5, 11), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  // The duplicate must not re-execute: one increment, and the fetched value
  // replayed from the responder cache is the original.
  EXPECT_EQ(c.result, 100u);
  EXPECT_EQ(*ctr, 105u);
  EXPECT_EQ(b.counters().dup_suppressed.load(), 1u);
}

TEST_F(WireFaultTest, DelaySpikeArrivesLateButIntact) {
  a.faults().arm_wire(
      {WireFault::kDelay, OpCode::Put, Rank{1}, /*nth=*/1, /*delay_ns=*/70'000});
  ASSERT_EQ(a.post_put(1, lref(0, 512), rref(0), 12, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 512), 0);
  EXPECT_EQ(a.counters().wire_delays.load(), 1u);
  EXPECT_EQ(a.counters().retransmits.load(), 0u);
  EXPECT_GE(c.vtime, 70'000u);
}

TEST_F(WireFaultTest, LinkFlapWindowStallsThenDelivers) {
  a.faults().set_link_window({Rank{1}, /*down_from=*/0, /*up_at=*/50'000});
  ASSERT_EQ(a.post_put(1, lref(0, 1024), rref(0), 13, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 1024), 0);
  EXPECT_GE(a.counters().link_down_stalls.load(), 1u);
  EXPECT_GE(c.vtime, 50'000u);  // nothing crossed the wire while it was down
}

TEST_F(WireFaultTest, PermanentLinkCutTimesOutAtTheDeadline) {
  a.faults().set_link_window({Rank{1}, 0, kLinkDownForever});
  const auto before = pattern(dst.size(), 0);  // dst stays all-initial
  std::memcpy(dst.data(), before.data(), before.size());
  ASSERT_EQ(a.post_put(1, lref(0, 2048), rref(0), 14, true), Status::Ok);
  Completion c;
  ASSERT_EQ(a.jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Timeout);
  EXPECT_EQ(c.wr_id, 14u);
  // Failure is stamped at the op's virtual deadline, not at infinity.
  EXPECT_GE(c.vtime, a.config().retry.deadline_ns);
  EXPECT_EQ(a.counters().op_timeouts.load(), 1u);
  EXPECT_EQ(std::memcmp(dst.data(), before.data(), 2048), 0);
  // One budget exhaustion -> Suspect (not yet Down).
  EXPECT_EQ(a.health().state(1), resilience::PeerState::kSuspect);
  EXPECT_FALSE(a.peer_down(1));
}

TEST_F(WireFaultTest, RepeatedTimeoutsLatchPeerDownAndFastFail) {
  a.faults().set_link_window({Rank{1}, 0, kLinkDownForever});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(a.post_put(1, lref(0, 64), rref(0), 20 + i, true), Status::Ok);
    Completion c;
    ASSERT_EQ(a.jump_send(c), Status::Ok);
    ASSERT_EQ(c.status, Status::Timeout);
  }
  EXPECT_TRUE(a.peer_down(1));
  // Down is observed at post time: synchronous fast-fail, no completion.
  EXPECT_EQ(a.post_put(1, lref(0, 64), rref(0), 30, true),
            Status::PeerUnreachable);
  EXPECT_EQ(a.counters().peer_unreachable.load(), 1u);
  Completion c;
  EXPECT_EQ(a.poll_send(c), Status::NotFound);
  EXPECT_EQ(a.in_flight(1), 0u);
}

TEST(FabricKill, MarksPeerDownOnEveryNicAndCutsLinks) {
  Fabric fab(quiet_fabric(3));
  fab.kill(2);
  EXPECT_TRUE(fab.nic(0).peer_down(2));
  EXPECT_TRUE(fab.nic(1).peer_down(2));
  EXPECT_FALSE(fab.nic(0).peer_down(1));

  std::vector<std::byte> buf(64), far(64);
  auto mr =
      fab.nic(0).registry().register_memory(buf.data(), buf.size(), kAccessAll);
  auto mr1 =
      fab.nic(1).registry().register_memory(far.data(), far.size(), kAccessAll);
  ASSERT_TRUE(mr.ok());
  ASSERT_TRUE(mr1.ok());
  EXPECT_EQ(fab.nic(0).post_put(2, {buf.data(), 64, mr.value().lkey},
                                {mr1.value().begin(), mr1.value().rkey}, 1,
                                true),
            Status::PeerUnreachable);
  // Survivors keep talking.
  ASSERT_EQ(fab.nic(0).post_put(1, {buf.data(), 64, mr.value().lkey},
                                {mr1.value().begin(), mr1.value().rkey}, 2,
                                true),
            Status::Ok);
  Completion c;
  ASSERT_EQ(fab.nic(0).jump_send(c), Status::Ok);
  EXPECT_EQ(c.status, Status::Ok);
}

TEST_F(WireFaultTest, ResilienceTotalsAggregateAcrossNics) {
  a.faults().arm_wire({WireFault::kDrop, OpCode::Put, Rank{1}});
  a.faults().arm_wire({WireFault::kCorrupt, OpCode::Put, Rank{1}, /*nth=*/2});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(a.post_put(1, lref(0, 128), rref(0), 40 + i, true), Status::Ok);
    Completion c;
    ASSERT_EQ(a.jump_send(c), Status::Ok);
    ASSERT_EQ(c.status, Status::Ok);
  }
  const auto t = fab.resilience_totals();
  EXPECT_EQ(t.retransmits, a.counters().retransmits.load() +
                               b.counters().retransmits.load());
  EXPECT_GE(t.retransmits, 2u);
  EXPECT_EQ(t.crc_rejects, 1u);  // counted at the target NIC
  EXPECT_GE(t.wire_faults_fired, 2u);
  EXPECT_EQ(t.op_timeouts, 0u);
}

TEST_F(WireFaultTest, RandomLossyWireIsSeededAndEventuallyMasked) {
  FaultInjector::WireRandomConfig cfg;
  cfg.only_peer = Rank{1};
  cfg.drop_p = 0.25;
  cfg.corrupt_p = 0.1;
  cfg.seed = 2024;
  a.faults().set_wire_random(cfg);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.post_put(1, lref(0, 4096), rref(0), 100 + i, true), Status::Ok);
    Completion c;
    ASSERT_EQ(a.jump_send(c), Status::Ok);
    ASSERT_EQ(c.status, Status::Ok) << "op " << i;
    ASSERT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0) << "op " << i;
  }
  EXPECT_GT(a.counters().retransmits.load(), 0u);
  EXPECT_GT(a.counters().wire_drops.load(), 0u);
  const std::uint64_t fired_once = a.faults().fired();
  EXPECT_GT(fired_once, 0u);
  EXPECT_EQ(a.health().state(1), resilience::PeerState::kUp);
}

}  // namespace
}  // namespace photon::fabric
