// R-6 (ledger ablation): completion-ledger sizing.
//
// Part 1: signal throughput and producer stall count vs ledger depth for a
// fixed stream — small ledgers throttle the producer (back-pressure waits
// for credit returns); beyond the effective pipeline depth the curve is
// flat. Part 2: probe/dispatch cost at the consumer vs number of peers
// signalling concurrently (ledger polling is O(1) per event regardless of
// peer count).
#include <benchmark/benchmark.h>

#include <atomic>
#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::mops;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::size_t kCount = 20000;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

struct DepthResult {
  double rate_mops;
  std::uint64_t stalls;
};

DepthResult depth_experiment(std::size_t depth) {
  std::atomic<std::uint64_t> stalls{0};
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Config cfg;
    cfg.ledger_entries = depth;
    core::Photon ph(env.nic, env.bootstrap, cfg);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (std::size_t i = 0; i < kCount; ++i) {
        if (ph.signal(1, i, kWait) != Status::Ok)
          throw std::runtime_error("signal failed");
      }
      stalls.store(ph.stats().ledger_stalls);
    } else {
      for (std::size_t i = 0; i < kCount; ++i) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("event missing");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return {mops(kCount, vt), stalls.load()};
}

/// All peers signal rank 0 concurrently; measure the consumer's event rate.
double fanin_rate_mops(std::uint32_t nranks) {
  const std::size_t per_peer = 4000;
  const std::uint64_t vt =
      run_spmd_vtime(bench_fabric(nranks), [&](runtime::Env& env) {
        core::Photon ph(env.nic, env.bootstrap, core::Config{});
        benchsupport::sync_reset(env);
        if (env.rank == 0) {
          const std::size_t total = per_peer * (nranks - 1);
          for (std::size_t i = 0; i < total; ++i) {
            core::ProbeEvent ev;
            if (ph.wait_event(ev, kWait) != Status::Ok)
              throw std::runtime_error("event missing");
          }
        } else {
          for (std::size_t i = 0; i < per_peer; ++i) {
            if (ph.signal(0, i, kWait) != Status::Ok)
              throw std::runtime_error("signal failed");
          }
        }
        env.bootstrap.barrier(env.rank);
      });
  return mops(per_peer * (nranks - 1), vt);
}

std::map<std::size_t, DepthResult> g_depth;
std::map<std::uint32_t, double> g_fanin;

void BM_LedgerDepth(benchmark::State& st) {
  const auto depth = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const auto r = depth_experiment(depth);
    g_depth[depth] = r;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r.rate_mops;
    st.counters["stalls"] = static_cast<double>(r.stalls);
  }
}

void BM_LedgerFanIn(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    const double r = fanin_rate_mops(n);
    g_fanin[n] = r;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r;
  }
}

}  // namespace

BENCHMARK(BM_LedgerDepth)->RangeMultiplier(2)->Range(2, 1024)->UseManualTime()->Iterations(1);
BENCHMARK(BM_LedgerFanIn)->Arg(2)->Arg(3)->Arg(5)->Arg(9)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("ledger");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t1("R-6a  Signal rate vs ledger depth (virtual)");
  t1.columns({"depth", "Mops/s", "producer stalls"});
  for (const auto& [d, r] : g_depth) {
    t1.row({std::to_string(d), benchsupport::Table::num(r.rate_mops),
            std::to_string(r.stalls)});
  }
  t1.print();

  benchsupport::Table t2(
      "R-6b  Consumer event rate vs #signalling peers (virtual)");
  t2.columns({"peers", "Mops/s"});
  for (const auto& [n, r] : g_fanin)
    t2.row({std::to_string(n - 1), benchsupport::Table::num(r)});
  t2.print();
  benchsupport::print_resilience_table();
  return 0;
}
