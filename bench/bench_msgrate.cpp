// R-3 (message-rate figure): small-message rate vs window size.
//
// Rank 0 streams 8-byte notifications to rank 1 with a bounded number of
// outstanding operations. Series: Photon PWC signals (ledger doorbells),
// Photon eager sends, two-sided isends. Expected shape: rate rises with the
// window then flattens at the injection limit; Photon sustains a much
// higher rate (no matching or bounce management per message).
#include <benchmark/benchmark.h>

#include <deque>
#include <thread>
#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::mops;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::size_t kCount = 20000;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

/// Photon signal stream. The window is implicitly the ledger depth; we size
/// the ledger to the requested window to model it directly.
double photon_rate_mops(std::size_t window) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Config cfg;
    cfg.ledger_entries = std::max<std::size_t>(window, 2);
    core::Photon ph(env.nic, env.bootstrap, cfg);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (std::size_t i = 0; i < kCount; ++i) {
        if (ph.signal(1, i, kWait) != Status::Ok)
          throw std::runtime_error("signal failed");
      }
    } else {
      for (std::size_t i = 0; i < kCount; ++i) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("event missing");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return mops(kCount, vt);
}

double eager_rate_mops(std::size_t window) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Config cfg;
    // Tiny messages only; ring sized to hold ~window 8-byte messages
    // (24 B footprint each), bounded below by the config minimum.
    cfg.eager_threshold = 64;
    cfg.eager_ring_bytes = std::max<std::size_t>(
        2 * core::ring_footprint(cfg.eager_threshold) + 16,
        ((window * 24 + 63) / 64) * 64);
    core::Photon ph(env.nic, env.bootstrap, cfg);
    std::uint64_t payload = 0;
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (std::size_t i = 0; i < kCount; ++i) {
        payload = i;
        if (ph.send_with_completion(1, std::as_bytes(std::span(&payload, 1)),
                                    std::nullopt, i, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
      }
    } else {
      for (std::size_t i = 0; i < kCount; ++i) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("event missing");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return mops(kCount, vt);
}

double twosided_rate_mops(std::size_t window) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    msg::Config cfg;
    cfg.send_credits = std::max<std::size_t>(window, 2);
    msg::Engine eng(env.nic, env.bootstrap, cfg);
    std::uint64_t payload = 0;
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      std::deque<msg::ReqId> inflight;
      std::size_t posted = 0;
      util::Deadline dl(kWait);
      while (posted < kCount || !inflight.empty()) {
        bool moved = false;
        while (posted < kCount && inflight.size() < window) {
          payload = posted;
          auto rq = eng.isend(1, 3, std::as_bytes(std::span(&payload, 1)));
          if (!rq.ok()) {
            if (!transient(rq.status()))
              throw std::runtime_error("isend failed");
            break;
          }
          inflight.push_back(rq.value());
          ++posted;
          moved = true;
        }
        if (!inflight.empty()) {
          bool done = false;
          if (eng.test(inflight.front(), done) != Status::Ok)
            throw std::runtime_error("test failed");
          if (done) {
            inflight.pop_front();
            moved = true;
          }
        } else {
          eng.progress();
        }
        // Stalled: jump to the next pending virtual event; yield the core
        // to the receiver when even that is empty.
        if (!moved && !eng.progress_jump()) std::this_thread::yield();
        if (dl.expired()) throw std::runtime_error("stalled");
      }
    } else {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < kCount; ++i) {
        if (!eng.recv(0, 3, std::as_writable_bytes(std::span(&sink, 1)), kWait)
                 .ok())
          throw std::runtime_error("recv failed");
      }
    }
  });
  return mops(kCount, vt);
}

std::map<std::size_t, std::array<double, 3>> g_rows;

void BM_PhotonSignalRate(benchmark::State& st) {
  const auto w = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double r = photon_rate_mops(w);
    g_rows[w][0] = r;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r;
  }
}
void BM_PhotonEagerRate(benchmark::State& st) {
  const auto w = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double r = eager_rate_mops(w);
    g_rows[w][1] = r;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r;
  }
}
void BM_TwoSidedRate(benchmark::State& st) {
  const auto w = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double r = twosided_rate_mops(w);
    g_rows[w][2] = r;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r;
  }
}

}  // namespace

BENCHMARK(BM_PhotonSignalRate)->RangeMultiplier(2)->Range(1, 256)->UseManualTime()->Iterations(1);
BENCHMARK(BM_PhotonEagerRate)->RangeMultiplier(2)->Range(1, 256)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedRate)->RangeMultiplier(2)->Range(1, 256)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("msgrate");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t("R-3  8-byte message rate vs window (virtual Mops/s)");
  t.columns({"window", "pwc_signal", "eager", "two-sided", "signal/2s"});
  for (const auto& [w, cols] : g_rows) {
    t.row({std::to_string(w), benchsupport::Table::num(cols[0]),
           benchsupport::Table::num(cols[1]), benchsupport::Table::num(cols[2]),
           cols[2] > 0 ? benchsupport::Table::num(cols[0] / cols[2]) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
