// R-13 (algorithm ablation): binomial-tree vs pipelined-ring broadcast.
//
// Tree: ceil(log2 P) rounds, each moving the whole payload — best when
// latency dominates (small payloads). Ring pipeline: P-2+chunks chunk
// steps with every link busy — best when bandwidth dominates (large
// payloads). The crossover position is the design datum; it should move
// left (toward smaller payloads) as P grows.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "coll/communicator.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kReps = 10;

double bcast_us(std::uint32_t n, std::size_t bytes, bool pipelined) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    std::vector<std::byte> data(bytes);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) {
      if (pipelined)
        comm.broadcast_pipelined(data, 0);
      else
        comm.broadcast(data, 0);
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

struct Key {
  std::uint32_t ranks;
  std::size_t bytes;
  bool operator<(const Key& o) const {
    return std::tie(ranks, bytes) < std::tie(o.ranks, o.bytes);
  }
};
std::map<Key, std::array<double, 2>> g_rows;

void BM_TreeBcast(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  const auto bytes = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    const double us = bcast_us(n, bytes, false);
    g_rows[{n, bytes}][0] = us;
    st.SetIterationTime(us / 1e6);
  }
}
void BM_RingBcast(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  const auto bytes = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    const double us = bcast_us(n, bytes, true);
    g_rows[{n, bytes}][1] = us;
    st.SetIterationTime(us / 1e6);
  }
}

}  // namespace

BENCHMARK(BM_TreeBcast)
    ->ArgsProduct({{4, 8}, {1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 22}})
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_RingBcast)
    ->ArgsProduct({{4, 8}, {1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 22}})
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("bcast_ablation");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-13  Broadcast algorithm ablation: tree vs pipelined ring (virtual us)");
  t.columns({"P", "bytes", "tree", "ring", "winner"});
  for (const auto& [k, c] : g_rows) {
    t.row({std::to_string(k.ranks), benchsupport::Table::bytes(k.bytes),
           benchsupport::Table::num(c[0]), benchsupport::Table::num(c[1]),
           c[0] < c[1] ? "tree" : "ring"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
