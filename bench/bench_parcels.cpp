// R-7 (runtime-integration figure): active-message performance over both
// transports.
//
// Part 1: parcel round-trip latency vs parcel size (request handler replies
// immediately). Part 2: fan-out throughput — rank 0 sprays parcels at 3
// workers that ack every k-th parcel. Expected shape: the Photon transport
// wins clearly at small/medium parcels (eager ring + doorbell vs tag match
// + bounce copy) and converges for large bodies where wire bytes dominate.
#include <benchmark/benchmark.h>

#include <atomic>
#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "parcels/parcel_engine.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;
using parcels::Context;
using parcels::HandlerId;
using parcels::HandlerRegistry;
using parcels::ParcelEngine;

namespace {

constexpr int kIters = 200;

template <typename MakeTransport>
double pingpong_us(std::size_t size, MakeTransport&& make) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    HandlerRegistry reg;
    auto transport_holder = make(env);
    parcels::Transport& tr = *transport_holder.second;
    ParcelEngine eng(tr, reg);
    std::atomic<int> pongs{0};
    std::atomic<int> pings{0};
    const HandlerId pong = reg.add([&](Context&) { pongs.fetch_add(1); });
    const HandlerId ping = reg.add([&, pong](Context& ctx) {
      pings.fetch_add(1);
      ctx.reply(pong, ctx.args());
    });
    std::vector<std::byte> payload(size);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (int i = 0; i < kIters; ++i) {
        eng.send(1, ping, payload);
        if (!eng.run_until([&] { return pongs.load() == i + 1; }))
          throw std::runtime_error("pong missing");
      }
    } else {
      if (!eng.run_until([&] { return pings.load() == kIters; }))
        throw std::runtime_error("pings missing");
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

template <typename MakeTransport>
double fanout_kpps(std::size_t size, MakeTransport&& make) {
  constexpr int kPer = 600;
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(4), [&](runtime::Env& env) {
    HandlerRegistry reg;
    auto transport_holder = make(env);
    parcels::Transport& tr = *transport_holder.second;
    ParcelEngine eng(tr, reg);
    std::atomic<int> acks{0};
    std::atomic<int> works{0};
    const HandlerId ack = reg.add([&](Context&) { acks.fetch_add(1); });
    const HandlerId work = reg.add([&, ack](Context& ctx) {
      const int n = works.fetch_add(1) + 1;
      if (n % 50 == 0) ctx.reply(ack, {});  // sparse acks for flow pacing
    });
    std::vector<std::byte> payload(size);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (int i = 0; i < kPer; ++i) {
        for (fabric::Rank d = 1; d < 4; ++d) eng.send(d, work, payload);
        (void)eng.progress();
      }
      if (!eng.run_until([&] { return acks.load() >= 3 * kPer / 50; }))
        throw std::runtime_error("acks missing");
    } else {
      if (!eng.run_until([&] { return works.load() >= kPer; }))
        throw std::runtime_error("work missing");
    }
    env.bootstrap.barrier(env.rank);
  });
  return 3.0 * kPer / (static_cast<double>(vt) / 1e9) / 1e3;  // k parcels/s
}

auto make_photon = [](runtime::Env& env) {
  auto ph = std::make_shared<core::Photon>(env.nic, env.bootstrap, core::Config{});
  auto tr = std::make_shared<parcels::PhotonTransport>(*ph);
  return std::pair<std::shared_ptr<void>, std::shared_ptr<parcels::Transport>>(
      ph, tr);
};

auto make_twosided = [](runtime::Env& env) {
  auto me = std::make_shared<msg::Engine>(env.nic, env.bootstrap, msg::Config{});
  auto tr = std::make_shared<parcels::MsgTransport>(*me);
  return std::pair<std::shared_ptr<void>, std::shared_ptr<parcels::Transport>>(
      me, tr);
};

std::map<std::size_t, std::array<double, 4>> g_rows;  // lat_ph, lat_2s, thr_ph, thr_2s

void BM_PhotonParcelLatency(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = pingpong_us(size, make_photon);
    g_rows[size][0] = us;
    st.SetIterationTime(us / 1e6);
  }
}
void BM_TwoSidedParcelLatency(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = pingpong_us(size, make_twosided);
    g_rows[size][1] = us;
    st.SetIterationTime(us / 1e6);
  }
}
void BM_PhotonParcelFanout(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double kpps = fanout_kpps(size, make_photon);
    g_rows[size][2] = kpps;
    st.SetIterationTime(1e-3);
    st.counters["kparcels/s"] = kpps;
  }
}
void BM_TwoSidedParcelFanout(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double kpps = fanout_kpps(size, make_twosided);
    g_rows[size][3] = kpps;
    st.SetIterationTime(1e-3);
    st.counters["kparcels/s"] = kpps;
  }
}

}  // namespace

BENCHMARK(BM_PhotonParcelLatency)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedParcelLatency)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536)->UseManualTime()->Iterations(1);
BENCHMARK(BM_PhotonParcelFanout)->Arg(64)->Arg(512)->Arg(4096)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedParcelFanout)->Arg(64)->Arg(512)->Arg(4096)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("parcels");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t("R-7  Parcel runtime over both transports (virtual)");
  t.columns({"parcel", "lat photon us", "lat 2s us", "2s/ph", "fanout ph k/s",
             "fanout 2s k/s"});
  for (const auto& [size, c] : g_rows) {
    t.row({benchsupport::Table::bytes(size), benchsupport::Table::num(c[0]),
           benchsupport::Table::num(c[1]),
           c[0] > 0 ? benchsupport::Table::num(c[1] / c[0]) : "-",
           c[2] > 0 ? benchsupport::Table::num(c[2], 1) : "-",
           c[3] > 0 ? benchsupport::Table::num(c[3], 1) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
