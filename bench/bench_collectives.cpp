// R-8 (collectives figure): RMA collective latency vs rank count.
//
// Series: Photon's RMA collectives (dissemination barrier, binomial
// broadcast, recursive-doubling allreduce) vs a naive two-sided baseline
// (linear gather+release barrier, linear root broadcast, gather+bcast
// allreduce — what a runtime gets without an optimized collective layer).
// Expected shape: RMA collectives grow ~log2(P); naive ones grow ~P.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "coll/communicator.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kReps = 50;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

enum Col { kPhBarrier, kNaiveBarrier, kPhBcast, kNaiveBcast, kPhAllred, kNaiveAllred };
std::map<std::uint32_t, std::array<double, 6>> g_rows;

double photon_barrier_us(std::uint32_t n) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) comm.barrier();
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

double naive_barrier_us(std::uint32_t n) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) {
      // Linear: everyone reports to rank 0; rank 0 releases everyone.
      const msg::Tag tag = static_cast<msg::Tag>(i);
      if (env.rank == 0) {
        std::byte b{};
        for (std::uint32_t r = 1; r < n; ++r)
          if (!eng.recv(msg::kAnySource, tag, std::span(&b, 1), kWait).ok())
            throw std::runtime_error("barrier recv failed");
        for (std::uint32_t r = 1; r < n; ++r)
          if (eng.send(r, tag, std::span<const std::byte>(&b, 1), kWait) !=
              Status::Ok)
            throw std::runtime_error("barrier send failed");
      } else {
        std::byte b{};
        if (eng.send(0, tag, std::span<const std::byte>(&b, 1), kWait) !=
            Status::Ok)
          throw std::runtime_error("barrier send failed");
        if (!eng.recv(0, tag, std::span(&b, 1), kWait).ok())
          throw std::runtime_error("barrier recv failed");
      }
    }
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

double photon_bcast_us(std::uint32_t n, std::size_t bytes) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    std::vector<std::byte> data(bytes);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) comm.broadcast(data, 0);
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

double naive_bcast_us(std::uint32_t n, std::size_t bytes) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> data(bytes);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) {
      const msg::Tag tag = static_cast<msg::Tag>(i);
      if (env.rank == 0) {
        for (std::uint32_t r = 1; r < n; ++r)
          if (eng.send(r, tag, data, kWait) != Status::Ok)
            throw std::runtime_error("bcast send failed");
      } else {
        if (!eng.recv(0, tag, data, kWait).ok())
          throw std::runtime_error("bcast recv failed");
      }
    }
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

double photon_allreduce_us(std::uint32_t n, std::size_t doubles) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    std::vector<double> data(doubles, 1.0);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i)
      comm.allreduce(std::span(data), coll::ReduceOp::kSum);
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

double naive_allreduce_us(std::uint32_t n, std::size_t doubles) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(n), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<double> data(doubles, 1.0), tmp(doubles);
    benchsupport::sync_reset(env);
    for (int i = 0; i < kReps; ++i) {
      const msg::Tag tag = static_cast<msg::Tag>(i);
      if (env.rank == 0) {
        for (std::uint32_t r = 1; r < n; ++r) {
          if (!eng.recv(msg::kAnySource, tag,
                        std::as_writable_bytes(std::span(tmp)), kWait)
                   .ok())
            throw std::runtime_error("allred recv failed");
          for (std::size_t k = 0; k < doubles; ++k) data[k] += tmp[k];
        }
        for (std::uint32_t r = 1; r < n; ++r)
          if (eng.send(r, tag + (1ull << 32), std::as_bytes(std::span(data)),
                       kWait) != Status::Ok)
            throw std::runtime_error("allred send failed");
      } else {
        if (eng.send(0, tag, std::as_bytes(std::span(data)), kWait) !=
            Status::Ok)
          throw std::runtime_error("allred send failed");
        if (!eng.recv(0, tag + (1ull << 32),
                      std::as_writable_bytes(std::span(data)), kWait)
                 .ok())
          throw std::runtime_error("allred recv failed");
      }
    }
  });
  return static_cast<double>(vt) / kReps / 1e3;
}

void BM_Collectives(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    auto& row = g_rows[n];
    row[kPhBarrier] = photon_barrier_us(n);
    row[kNaiveBarrier] = naive_barrier_us(n);
    row[kPhBcast] = photon_bcast_us(n, 1024);
    row[kNaiveBcast] = naive_bcast_us(n, 1024);
    row[kPhAllred] = photon_allreduce_us(n, 128);
    row[kNaiveAllred] = naive_allreduce_us(n, 128);
    st.SetIterationTime(row[kPhBarrier] / 1e6);
    st.counters["barrier_us"] = row[kPhBarrier];
    st.counters["allreduce_us"] = row[kPhAllred];
  }
}

}  // namespace

BENCHMARK(BM_Collectives)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("collectives");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-8  Collective latency vs ranks (virtual us; bcast 1 KiB, allreduce "
      "128 doubles)");
  t.columns({"P", "barrier rma", "barrier naive", "bcast rma", "bcast naive",
             "allred rma", "allred naive"});
  for (const auto& [n, c] : g_rows) {
    t.row({std::to_string(n), benchsupport::Table::num(c[0]),
           benchsupport::Table::num(c[1]), benchsupport::Table::num(c[2]),
           benchsupport::Table::num(c[3]), benchsupport::Table::num(c[4]),
           benchsupport::Table::num(c[5])});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
