// Progress-path microbenchmarks: host (wall-clock) cost of the completion
// queue and of Photon::progress(), independent of the virtual wire model.
//
// The completion queue is the hot structure of every progress loop: each
// spin polls both CQs, and blocking waits read min_vtime() to decide how
// far to jump. The seed implementation was a flat deque with linear scans,
// so an empty poll and every poll_min cost O(n) in queue depth; the current
// implementation is a (vtime, seq) min-heap with a ready FIFO and a cached
// minimum. To keep the speedup measurable forever, this bench carries a
// verbatim copy of the seed structure (`LegacyCq` below) and reports both
// series side by side.
//
// Series, per depth in {256, 4096, 65536}:
//   push        ns per push into the current queue
//   drain(min)  ns per completion when draining via poll_min
//   poll(empty) ns per poll_ready call when nothing has arrived yet --
//               the dominant cost of a progress spin with events in flight
//   drain(rdy)  ns per completion draining arrived events one at a time
//   batch64     ns per completion draining via poll_ready_batch (span of 64)
//   min_vtime   ns per min_vtime() query on a full queue
// plus one Photon-level row: wall ns per delivered signal for a saturated
// 2-rank signal stream (posts, batched CQ drains, probe queue, wait_event).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "fabric/completion_queue.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

using namespace photon;
using benchsupport::run_spmd_vtime;
using fabric::Completion;
using fabric::CompletionQueue;

namespace {

// ---------------------------------------------------------------------------
// Reference: the pre-heap completion queue (flat deque, linear scans), kept
// here verbatim so the bench compares against a fixed baseline rather than
// against whatever the library currently ships.
class LegacyCq {
 public:
  explicit LegacyCq(std::size_t depth) : depth_(depth) {}

  bool push(const Completion& c) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= depth_) return false;
    items_.push_back(c);
    return true;
  }

  Status poll_ready(Completion& out, std::uint64_t now) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->vtime <= now) {
        out = *it;
        items_.erase(it);
        return Status::Ok;
      }
    }
    return Status::NotFound;
  }

  Status poll_min(Completion& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return Status::NotFound;
    auto min_it = std::min_element(items_.begin(), items_.end(),
                                   [](const Completion& a, const Completion& b) {
                                     return a.vtime < b.vtime;
                                   });
    out = *min_it;
    items_.erase(min_it);
    return Status::Ok;
  }

  std::optional<std::uint64_t> min_vtime() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::uint64_t m = ~std::uint64_t{0};
    for (const auto& c : items_) m = std::min(m, c.vtime);
    return m;
  }

 private:
  mutable std::mutex mutex_;
  std::deque<Completion> items_;
  std::size_t depth_;
};

// ---------------------------------------------------------------------------
constexpr std::uint64_t kFarFuture = ~std::uint64_t{0} >> 1;

std::vector<Completion> make_events(std::size_t n, std::uint64_t vtime_range) {
  util::Xoshiro256 rng(0x9e3779b97f4a7c15ULL + n);
  std::vector<Completion> evs(n);
  for (std::size_t i = 0; i < n; ++i) {
    evs[i].wr_id = i;
    evs[i].peer = static_cast<fabric::Rank>(i % 8);
    evs[i].vtime = vtime_range == 0 ? 0 : rng.below(vtime_range);
  }
  return evs;
}

// Results, collected for the end-of-run table. g_rows[depth] columns match
// the series list in the header comment; index 1/5 hold the legacy series.
struct Row {
  double push_ns = 0;
  double legacy_drain_min_ns = 0;
  double drain_min_ns = 0;
  double legacy_poll_empty_ns = 0;
  double poll_empty_ns = 0;
  double drain_ready_ns = 0;
  double drain_batch_ns = 0;
  double legacy_min_vtime_ns = 0;
  double min_vtime_ns = 0;
};
std::map<std::size_t, Row> g_rows;
double g_progress_ns_per_event = 0;

template <class Fn>
double timed_ns_per_op(std::size_t ops, Fn&& fn) {
  util::WallTimer t;
  fn();
  return static_cast<double>(t.elapsed_ns()) / static_cast<double>(ops);
}

void BM_CqPush(benchmark::State& st) {
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, kFarFuture);
  for (auto _ : st) {
    CompletionQueue cq(depth);
    const double ns = timed_ns_per_op(depth, [&] {
      for (const auto& e : evs) cq.push(e);
    });
    g_rows[depth].push_ns = ns;
    st.SetIterationTime(ns * static_cast<double>(depth) / 1e9);
  }
}

template <class Q>
void drain_min_bench(benchmark::State& st, double Row::*slot) {
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, kFarFuture);
  for (auto _ : st) {
    Q cq(depth);
    for (const auto& e : evs) cq.push(e);
    Completion c;
    const double ns = timed_ns_per_op(depth, [&] {
      while (cq.poll_min(c) == Status::Ok) benchmark::DoNotOptimize(c);
    });
    g_rows[depth].*slot = ns;
    st.SetIterationTime(ns * static_cast<double>(depth) / 1e9);
  }
}
void BM_LegacyDrainMin(benchmark::State& st) {
  drain_min_bench<LegacyCq>(st, &Row::legacy_drain_min_ns);
}
void BM_DrainMin(benchmark::State& st) {
  drain_min_bench<CompletionQueue>(st, &Row::drain_min_ns);
}

// Cost of one progress spin while every event is still in the virtual
// future: poll_ready must report NotFound without disturbing the queue.
template <class Q>
void poll_empty_bench(benchmark::State& st, double Row::*slot) {
  constexpr std::size_t kPolls = 4096;
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, 0);  // then shift into the future
  Q cq(depth);
  for (auto e : evs) {
    e.vtime += kFarFuture;
    cq.push(e);
  }
  for (auto _ : st) {
    Completion c;
    const double ns = timed_ns_per_op(kPolls, [&] {
      for (std::size_t i = 0; i < kPolls; ++i) {
        benchmark::DoNotOptimize(cq.poll_ready(c, /*now=*/0));
      }
    });
    g_rows[depth].*slot = ns;
    st.SetIterationTime(ns * kPolls / 1e9);
  }
}
void BM_LegacyPollEmpty(benchmark::State& st) {
  poll_empty_bench<LegacyCq>(st, &Row::legacy_poll_empty_ns);
}
void BM_PollEmpty(benchmark::State& st) {
  poll_empty_bench<CompletionQueue>(st, &Row::poll_empty_ns);
}

void BM_DrainReady(benchmark::State& st) {
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, 1 << 20);
  for (auto _ : st) {
    CompletionQueue cq(depth);
    for (const auto& e : evs) cq.push(e);
    Completion c;
    const double ns = timed_ns_per_op(depth, [&] {
      while (cq.poll_ready(c, kFarFuture) == Status::Ok)
        benchmark::DoNotOptimize(c);
    });
    g_rows[depth].drain_ready_ns = ns;
    st.SetIterationTime(ns * static_cast<double>(depth) / 1e9);
  }
}

void BM_DrainBatch(benchmark::State& st) {
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, 1 << 20);
  std::array<Completion, 64> out;
  for (auto _ : st) {
    CompletionQueue cq(depth);
    for (const auto& e : evs) cq.push(e);
    const double ns = timed_ns_per_op(depth, [&] {
      std::size_t n = 0;
      while (cq.poll_ready_batch(out, n, kFarFuture) == Status::Ok)
        benchmark::DoNotOptimize(out[0]);
    });
    g_rows[depth].drain_batch_ns = ns;
    st.SetIterationTime(ns * static_cast<double>(depth) / 1e9);
  }
}

template <class Q>
void min_vtime_bench(benchmark::State& st, double Row::*slot) {
  constexpr std::size_t kCalls = 4096;
  const auto depth = static_cast<std::size_t>(st.range(0));
  const auto evs = make_events(depth, kFarFuture);
  Q cq(depth);
  for (const auto& e : evs) cq.push(e);
  for (auto _ : st) {
    const double ns = timed_ns_per_op(kCalls, [&] {
      for (std::size_t i = 0; i < kCalls; ++i)
        benchmark::DoNotOptimize(cq.min_vtime());
    });
    g_rows[depth].*slot = ns;
    st.SetIterationTime(ns * kCalls / 1e9);
  }
}
void BM_LegacyMinVtime(benchmark::State& st) {
  min_vtime_bench<LegacyCq>(st, &Row::legacy_min_vtime_ns);
}
void BM_MinVtime(benchmark::State& st) {
  min_vtime_bench<CompletionQueue>(st, &Row::min_vtime_ns);
}

// Photon-level: wall cost per delivered signal in a saturated 2-rank
// stream. Rank 0 posts back-to-back signals (progress() drains its send CQ
// in batches when the SQ backs up); rank 1 sits in wait_event. The metric
// is total wall time of the SPMD section divided by events -- both ranks'
// progress work included, which is what a runtime system pays.
void BM_ProgressSaturated(benchmark::State& st) {
  constexpr int kEvents = 20000;
  constexpr std::uint64_t kWait = 30'000'000'000ULL;
  for (auto _ : st) {
    util::WallTimer t;
    run_spmd_vtime(benchsupport::bench_fabric(2), [&](runtime::Env& env) {
      core::Photon ph(env.nic, env.bootstrap, core::Config{});
      benchsupport::sync_reset(env);
      if (env.rank == 0) {
        for (int i = 0; i < kEvents; ++i) {
          if (ph.signal(1, static_cast<std::uint64_t>(i), kWait) != Status::Ok)
            throw std::runtime_error("signal failed");
        }
        ph.flush(1, kWait);
      } else {
        core::ProbeEvent ev;
        for (int i = 0; i < kEvents; ++i) {
          if (ph.wait_event(ev, kWait) != Status::Ok)
            throw std::runtime_error("signal missing");
        }
      }
      env.bootstrap.barrier(env.rank);
    });
    const double ns = static_cast<double>(t.elapsed_ns()) / kEvents;
    g_progress_ns_per_event = ns;
    st.SetIterationTime(ns * kEvents / 1e9);
  }
  st.counters["wall_ns_per_event"] = g_progress_ns_per_event;
}

}  // namespace

#define DEPTHS Arg(256)->Arg(4096)->Arg(65536)
BENCHMARK(BM_CqPush)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_LegacyDrainMin)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_DrainMin)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_LegacyPollEmpty)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_PollEmpty)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_DrainReady)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_DrainBatch)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_LegacyMinVtime)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_MinVtime)->DEPTHS->UseManualTime()->Iterations(1);
BENCHMARK(BM_ProgressSaturated)->UseManualTime()->Iterations(1);
#undef DEPTHS

int main(int argc, char** argv) {
  benchsupport::BenchReport report("progress");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using benchsupport::Table;
  Table t("P-1  Completion-queue host cost (wall ns/op; legacy = seed deque)");
  t.columns({"depth", "push", "drain(min)", "legacy", "speedup", "poll(empty)",
             "legacy", "drain(rdy)", "batch64", "min_vtime", "legacy"});
  const auto cell = [](double v) { return v > 0 ? Table::num(v) : std::string("-"); };
  for (const auto& [depth, r] : g_rows) {
    t.row({std::to_string(depth), cell(r.push_ns), cell(r.drain_min_ns),
           cell(r.legacy_drain_min_ns),
           r.drain_min_ns > 0 && r.legacy_drain_min_ns > 0
               ? Table::num(r.legacy_drain_min_ns / r.drain_min_ns, 1) + "x"
               : "-",
           cell(r.poll_empty_ns), cell(r.legacy_poll_empty_ns),
           cell(r.drain_ready_ns), cell(r.drain_batch_ns),
           cell(r.min_vtime_ns), cell(r.legacy_min_vtime_ns)});
  }
  t.print();

  Table p("P-2  Photon::progress() under a saturated 2-rank signal stream");
  p.columns({"metric", "value"});
  p.row({"wall ns/event (both ranks)", Table::num(g_progress_ns_per_event)});
  p.print();
  benchsupport::print_resilience_table();
  // Wall-clock host cost is nondeterministic; the "wall_" prefix tells
  // tools/perf_gate.sh to report it without gating.
  report.metric("wall_progress_ns_per_event", g_progress_ns_per_event);
  return 0;
}
