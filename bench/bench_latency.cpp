// R-1 (latency figure): half-round-trip latency vs message size.
//
// Series: Photon PWC (direct put into a published buffer), Photon eager
// (send_with_completion), Photon GWC (get + remote notify), and the
// two-sided send/recv baseline. Expected shape: PWC beats two-sided at
// small sizes (no matching, no bounce copy); the curves converge as byte
// cost dominates.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/workloads.hpp"
#include "coll/communicator.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::ns_to_us;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kIters = 200;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

core::Config big_eager_config() {
  core::Config cfg;
  cfg.eager_threshold = 64 * 1024;
  cfg.eager_ring_bytes = 1u << 21;
  return cfg;
}

/// PWC direct-put pingpong: half-RTT in virtual ns.
double pwc_latency_ns(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(std::max<std::size_t>(size, 8));
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (ph.put_with_completion(peer, core::local_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("pong missing");
      } else {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("ping missing");
        if (ph.put_with_completion(peer, core::local_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / (2.0 * kIters);
}

/// Eager PWC pingpong.
double eager_latency_ns(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, big_eager_config());
    std::vector<std::byte> payload(size);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (ph.send_with_completion(peer, payload, std::nullopt, 1, kWait) !=
            Status::Ok)
          throw std::runtime_error("send failed");
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("pong missing");
      } else {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("ping missing");
        if (ph.send_with_completion(peer, payload, std::nullopt, 1, kWait) !=
            Status::Ok)
          throw std::runtime_error("send failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / (2.0 * kIters);
}

/// GWC pingpong: each direction is a get + remote notify.
double gwc_latency_ns(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(std::max<std::size_t>(size, 8));
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (ph.get_with_completion(peer, core::local_mut_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("get failed");
        core::ProbeEvent ev;  // peer notifies us when it has pulled back
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("notify missing");
      } else {
        core::ProbeEvent ev;  // our buffer was read
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("notify missing");
        if (ph.get_with_completion(peer, core::local_mut_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("get failed");
      }
    }
    // The final get's remote notify is emitted from progress once its
    // completion is consumed (standard progress-rule semantics); the
    // completion sits in the virtual future, so drain with jumps.
    while (ph.progress_jump()) {
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / (2.0 * kIters);
}

/// Two-sided send/recv pingpong.
double twosided_latency_ns(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> out(size), in(size);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (eng.send(peer, 1, out, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
        if (!eng.recv(peer, 1, in, kWait).ok())
          throw std::runtime_error("recv failed");
      } else {
        if (!eng.recv(peer, 1, in, kWait).ok())
          throw std::runtime_error("recv failed");
        if (eng.send(peer, 1, out, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
      }
    }
  });
  return static_cast<double>(vt) / (2.0 * kIters);
}

std::map<std::size_t, std::array<double, 4>> g_rows;

void record(std::size_t size, int col, double ns) { g_rows[size][static_cast<std::size_t>(col)] = ns; }

void BM_PwcPut(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double ns = pwc_latency_ns(size);
    record(size, 0, ns);
    st.SetIterationTime(ns / 1e9);
  }
  st.counters["size_B"] = static_cast<double>(size);
}

void BM_Eager(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double ns = eager_latency_ns(size);
    record(size, 1, ns);
    st.SetIterationTime(ns / 1e9);
  }
}

void BM_Gwc(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double ns = gwc_latency_ns(size);
    record(size, 2, ns);
    st.SetIterationTime(ns / 1e9);
  }
}

void BM_TwoSided(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double ns = twosided_latency_ns(size);
    record(size, 3, ns);
    st.SetIterationTime(ns / 1e9);
  }
}

}  // namespace

BENCHMARK(BM_PwcPut)->RangeMultiplier(4)->Range(8, 1 << 20)->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Eager)->RangeMultiplier(4)->Range(8, 1 << 16)->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Gwc)->RangeMultiplier(4)->Range(8, 1 << 20)->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TwoSided)->RangeMultiplier(4)->Range(8, 1 << 20)->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("latency");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-1  Half-round-trip latency vs message size (virtual us)");
  t.columns({"size", "pwc_put", "eager", "gwc", "two-sided", "2s/pwc"});
  for (const auto& [size, cols] : g_rows) {
    const double pwc = cols[0], eager = cols[1], gwc = cols[2], ts = cols[3];
    t.row({benchsupport::Table::bytes(size),
           pwc > 0 ? benchsupport::Table::num(ns_to_us(static_cast<std::uint64_t>(pwc))) : "-",
           eager > 0 ? benchsupport::Table::num(eager / 1e3) : "-",
           gwc > 0 ? benchsupport::Table::num(gwc / 1e3) : "-",
           ts > 0 ? benchsupport::Table::num(ts / 1e3) : "-",
           (pwc > 0 && ts > 0) ? benchsupport::Table::num(ts / pwc) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
