// R-10 (atomics figure): remote atomic latency and throughput under
// contention.
//
// Part 1: fetch-add / CAS round-trip latency (blocking, window 1).
// Part 2: aggregate throughput when P-1 ranks hammer either the SAME cell
// (contended) or per-rank cells (spread) on rank 0. Expected shape:
// fetch-add throughput is flat under contention (the NIC serializes
// usefully); a CAS retry loop degrades as contention rises.
#include <benchmark/benchmark.h>

#include <map>
#include <thread>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::mops;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::uint64_t kWait = 30'000'000'000ULL;
constexpr std::size_t kOpsPerRank = 4000;

struct Cells {
  std::vector<std::uint64_t> mem;
  core::BufferDescriptor desc;
};

double fadd_latency_us() {
  constexpr int kIters = 500;
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::uint64_t> mem(8, 0);
    auto desc = ph.register_buffer(mem.data(), mem.size() * 8).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      fabric::Completion c;
      for (int i = 0; i < kIters; ++i) {
        if (env.nic.post_fetch_add(1, {peers[1].addr, peers[1].rkey}, 1, 0) !=
            Status::Ok)
          throw std::runtime_error("fadd failed");
        if (env.nic.wait_send(c, kWait) != Status::Ok)
          throw std::runtime_error("fadd wait failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

double cas_latency_us() {
  constexpr int kIters = 500;
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::uint64_t> mem(8, 0);
    auto desc = ph.register_buffer(mem.data(), mem.size() * 8).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      fabric::Completion c;
      std::uint64_t cur = 0;
      for (int i = 0; i < kIters; ++i) {
        if (env.nic.post_compare_swap(1, {peers[1].addr, peers[1].rkey}, cur,
                                      cur + 1, 0) != Status::Ok)
          throw std::runtime_error("cas failed");
        if (env.nic.wait_send(c, kWait) != Status::Ok)
          throw std::runtime_error("cas wait failed");
        cur = c.result + 1;  // uncontended: swap always succeeds
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

/// Aggregate fetch-add throughput, contended (one cell) or spread.
double fadd_throughput_mops(std::uint32_t nranks, bool contended) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(nranks), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::uint64_t> mem(nranks, 0);
    auto desc = ph.register_buffer(mem.data(), mem.size() * 8).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank != 0) {
      const std::uint64_t off = contended ? 0 : env.rank * 8;
      const fabric::RemoteRef cell{peers[0].addr + off, peers[0].rkey};
      fabric::Completion c;
      std::size_t outstanding = 0;
      for (std::size_t i = 0; i < kOpsPerRank; ++i) {
        while (env.nic.post_fetch_add(0, cell, 1, 0) == Status::QueueFull)
          if (env.nic.poll_send(c) == Status::Ok) --outstanding;
        ++outstanding;
        while (outstanding > 32) {
          if (env.nic.wait_send(c, kWait) != Status::Ok)
            throw std::runtime_error("drain failed");
          --outstanding;
        }
      }
      while (outstanding > 0) {
        if (env.nic.wait_send(c, kWait) != Status::Ok)
          throw std::runtime_error("final drain failed");
        --outstanding;
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return mops(kOpsPerRank * (nranks - 1), vt);
}

/// CAS increment loop (optimistic retry) on one shared counter.
struct CasResult {
  double mops;
  double retries_per_op;
};

CasResult cas_contended(std::uint32_t nranks) {
  std::atomic<std::uint64_t> total_retries{0};
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(nranks), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::uint64_t> mem(1, 0);
    auto desc = ph.register_buffer(mem.data(), 8).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank != 0) {
      const fabric::RemoteRef cell{peers[0].addr, peers[0].rkey};
      fabric::Completion c;
      std::uint64_t seen = 0;
      std::uint64_t retries = 0;
      for (std::size_t i = 0; i < kOpsPerRank / 4; ++i) {
        for (;;) {
          if (env.nic.post_compare_swap(0, cell, seen, seen + 1, 0) !=
              Status::Ok)
            throw std::runtime_error("cas failed");
          if (env.nic.wait_send(c, kWait) != Status::Ok)
            throw std::runtime_error("cas wait failed");
          if (c.result == seen) {
            seen = c.result + 1;  // success; expect our own value next
            // Encourage real-time interleaving on the single-core host so
            // contention actually manifests (virtual time is unaffected).
            std::this_thread::yield();
            break;
          }
          seen = c.result;  // lost the race; retry from the observed value
          ++retries;
        }
      }
      total_retries.fetch_add(retries);
    }
    env.bootstrap.barrier(env.rank);
  });
  const std::size_t ops = kOpsPerRank / 4 * (nranks - 1);
  return {mops(ops, vt),
          static_cast<double>(total_retries.load()) / static_cast<double>(ops)};
}

std::map<std::uint32_t, std::array<double, 4>> g_thr;  // fadd_spread, fadd_cont, cas_mops, cas_retries
double g_fadd_lat = 0, g_cas_lat = 0;

void BM_FaddLatency(benchmark::State& st) {
  for (auto _ : st) {
    g_fadd_lat = fadd_latency_us();
    st.SetIterationTime(g_fadd_lat / 1e6);
  }
}
void BM_CasLatency(benchmark::State& st) {
  for (auto _ : st) {
    g_cas_lat = cas_latency_us();
    st.SetIterationTime(g_cas_lat / 1e6);
  }
}
void BM_FaddSpread(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    g_thr[n][0] = fadd_throughput_mops(n, false);
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = g_thr[n][0];
  }
}
void BM_FaddContended(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    g_thr[n][1] = fadd_throughput_mops(n, true);
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = g_thr[n][1];
  }
}
void BM_CasContended(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    const auto r = cas_contended(n);
    g_thr[n][2] = r.mops;
    g_thr[n][3] = r.retries_per_op;
    st.SetIterationTime(1e-3);
    st.counters["Mops"] = r.mops;
    st.counters["retries"] = r.retries_per_op;
  }
}

}  // namespace

BENCHMARK(BM_FaddLatency)->UseManualTime()->Iterations(1);
BENCHMARK(BM_CasLatency)->UseManualTime()->Iterations(1);
BENCHMARK(BM_FaddSpread)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1);
BENCHMARK(BM_FaddContended)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1);
BENCHMARK(BM_CasContended)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("atomics");
  // The contended-CAS series retries on real interleaving, so total op
  // counts drift slightly run-to-run; gate with tolerance, not exactly.
  report.deterministic(false);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("R-10a  Remote atomic round-trip latency: fetch-add %.2f us, "
              "CAS %.2f us\n\n",
              g_fadd_lat, g_cas_lat);
  benchsupport::Table t("R-10b  Atomic throughput vs ranks (virtual)");
  t.columns({"ranks", "fadd spread Mops", "fadd 1-cell Mops", "cas-loop Mops",
             "cas retries/op"});
  for (const auto& [n, c] : g_thr) {
    t.row({std::to_string(n), benchsupport::Table::num(c[0]),
           benchsupport::Table::num(c[1]), benchsupport::Table::num(c[2]),
           benchsupport::Table::num(c[3])});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
