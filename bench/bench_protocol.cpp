// R-5 (protocol-crossover figure + eager-threshold ablation).
//
// Part 1: eager vs rendezvous cost per message across sizes — eager pays a
// staging copy on both ends but needs one wire message; rendezvous pays a
// buffer-advertisement round trip but moves data zero-copy. The crossover
// should land near the configured default threshold.
//
// Part 2 (ablation): end-to-end pingpong latency at fixed sizes while the
// automatic-path threshold varies, showing how threshold choice moves the
// achieved latency.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kIters = 100;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

/// Forced eager transfer (threshold raised above every tested size).
double eager_path_us(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Config cfg;
    cfg.eager_threshold = 256 * 1024;
    cfg.eager_ring_bytes = 1u << 22;
    core::Photon ph(env.nic, env.bootstrap, cfg);
    std::vector<std::byte> payload(size);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (int i = 0; i < kIters; ++i) {
        if (ph.send_with_completion(1, payload, std::nullopt, 1, kWait) !=
            Status::Ok)
          throw std::runtime_error("send failed");
        core::ProbeEvent ack;
        if (ph.wait_event(ack, kWait) != Status::Ok)
          throw std::runtime_error("ack missing");
      }
    } else {
      for (int i = 0; i < kIters; ++i) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("event missing");
        if (ph.signal(0, 1, kWait) != Status::Ok)
          throw std::runtime_error("ack failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

/// Forced rendezvous: advertise, os_put, FIN — per message.
double rndv_path_us(std::size_t size) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(size);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 1) {
        auto rq = ph.post_recv_buffer_rq(0, desc, static_cast<std::uint64_t>(i));
        if (!rq.ok()) throw std::runtime_error("advert failed");
        if (ph.wait(rq.value(), kWait) != Status::Ok)
          throw std::runtime_error("fin missing");
      } else {
        auto rb = ph.wait_send_rq(1, static_cast<std::uint64_t>(i), kWait);
        if (!rb.ok()) throw std::runtime_error("advert missing");
        auto put = ph.post_os_put(1, core::local_slice(desc, 0, size),
                                  rb.value());
        if (!put.ok()) throw std::runtime_error("os_put failed");
        if (ph.wait(put.value(), kWait) != Status::Ok)
          throw std::runtime_error("os_put wait failed");
        if (ph.send_fin(1, rb.value()) != Status::Ok)
          throw std::runtime_error("fin failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

std::map<std::size_t, std::array<double, 2>> g_crossover;
std::map<std::size_t, std::map<std::size_t, double>> g_ablation;

void BM_EagerPath(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = eager_path_us(size);
    g_crossover[size][0] = us;
    st.SetIterationTime(us / 1e6);
  }
}
void BM_RndvPath(benchmark::State& st) {
  const auto size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = rndv_path_us(size);
    g_crossover[size][1] = us;
    st.SetIterationTime(us / 1e6);
  }
}

/// Ablation: two-sided engine auto-picks eager vs rendezvous by threshold.
void BM_ThresholdAblation(benchmark::State& st) {
  const auto threshold = static_cast<std::size_t>(st.range(0));
  const auto size = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    const std::uint64_t vt =
        run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
          msg::Config cfg;
          cfg.eager_threshold = threshold;
          msg::Engine eng(env.nic, env.bootstrap, cfg);
          std::vector<std::byte> buf(size);
          benchsupport::sync_reset(env);
          for (int i = 0; i < kIters; ++i) {
            if (env.rank == 0) {
              if (eng.send(1, 1, buf, kWait) != Status::Ok)
                throw std::runtime_error("send failed");
              if (!eng.recv(1, 2, buf, kWait).ok())
                throw std::runtime_error("recv failed");
            } else {
              if (!eng.recv(0, 1, buf, kWait).ok())
                throw std::runtime_error("recv failed");
              if (eng.send(0, 2, buf, kWait) != Status::Ok)
                throw std::runtime_error("send failed");
            }
          }
        });
    const double us = static_cast<double>(vt) / kIters / 1e3;
    g_ablation[threshold][size] = us;
    st.SetIterationTime(us / 1e6);
  }
}

}  // namespace

BENCHMARK(BM_EagerPath)->RangeMultiplier(2)->Range(1 << 10, 128 << 10)->UseManualTime()->Iterations(1);
BENCHMARK(BM_RndvPath)->RangeMultiplier(2)->Range(1 << 10, 128 << 10)->UseManualTime()->Iterations(1);
BENCHMARK(BM_ThresholdAblation)
    ->ArgsProduct({{2048, 8192, 32768}, {4096, 16384, 65536}})
    ->UseManualTime()
    ->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("protocol");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t1(
      "R-5a  Eager vs rendezvous per-message cost (virtual us)");
  t1.columns({"size", "eager", "rendezvous", "winner"});
  for (const auto& [size, cols] : g_crossover) {
    t1.row({benchsupport::Table::bytes(size),
            benchsupport::Table::num(cols[0]),
            benchsupport::Table::num(cols[1]),
            cols[0] < cols[1] ? "eager" : "rendezvous"});
  }
  t1.print();

  benchsupport::Table t2(
      "R-5b  Threshold ablation: round-trip vs threshold (virtual us)");
  t2.columns({"threshold", "4K msg", "16K msg", "64K msg"});
  for (const auto& [th, sizes] : g_ablation) {
    t2.row({benchsupport::Table::bytes(th),
            benchsupport::Table::num(sizes.at(4096)),
            benchsupport::Table::num(sizes.at(16384)),
            benchsupport::Table::num(sizes.at(65536))});
  }
  t2.print();
  benchsupport::print_resilience_table();
  return 0;
}
