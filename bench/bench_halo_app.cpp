// R-12 (application figure): 2-D Jacobi halo exchange, Photon one-sided
// ghost pushes vs two-sided send/recv ghost exchange.
//
// The application kernel (pack, exchange, unpack, sweep) is identical in
// both variants; only the exchange mechanism differs. Expected shape:
// per-iteration time is lower with one-sided pushes, with the advantage
// concentrated in the communication fraction (shrinks as the local grid —
// and thus the compute share — grows).
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "coll/communicator.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::uint32_t kPx = 2, kPy = 2;
constexpr int kIters = 40;
constexpr std::uint64_t kWait = 30'000'000'000ULL;
constexpr std::uint64_t kComputePerCellNs = 2;

struct Geometry {
  std::uint32_t rank;
  std::uint32_t cx() const { return rank % kPx; }
  std::uint32_t cy() const { return rank / kPx; }
  std::uint32_t west() const { return cx() == 0 ? UINT32_MAX : rank - 1; }
  std::uint32_t east() const { return cx() == kPx - 1 ? UINT32_MAX : rank + 1; }
  std::uint32_t north() const { return cy() == 0 ? UINT32_MAX : rank - kPx; }
  std::uint32_t south() const {
    return cy() == kPy - 1 ? UINT32_MAX : rank + kPx;
  }
};

/// One-sided variant: parity-double-buffered ghost strips pushed with PWC.
double photon_iter_us(std::size_t nx) {
  const std::size_t strip_bytes = nx * sizeof(double);
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(kPx * kPy), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    coll::Communicator comm(ph);
    Geometry g{env.rank};
    std::vector<double> halo(12 * nx, 0.0);
    auto desc =
        ph.register_buffer(halo.data(), halo.size() * sizeof(double)).value();
    auto peers = ph.exchange_descriptors(desc);
    std::unordered_map<int, int> arrived;
    enum { W, E, N, S };
    struct Push {
      std::uint32_t nbr;
      int out_dir, in_dir;
    };
    const Push pushes[] = {{g.west(), W, E}, {g.east(), E, W},
                           {g.north(), N, S}, {g.south(), S, N}};
    comm.barrier();
    for (auto& ev : comm.take_foreign_events())
      ++arrived[static_cast<int>(ev.id >> 8)];
    benchsupport::sync_reset(env);

    for (int it = 0; it < kIters; ++it) {
      env.clock().add(4 * nx * 2);  // pack cost (~2 ns/element)
      int expected = 0;
      for (const Push& p : pushes) {
        if (p.nbr == UINT32_MAX) continue;
        const std::uint64_t rid =
            (static_cast<std::uint64_t>(it) << 8) | p.in_dir;
        const std::size_t in_off =
            (4 + 4 * (it & 1) + p.in_dir) * strip_bytes;
        if (ph.put_with_completion(
                p.nbr, core::local_slice(desc, p.out_dir * strip_bytes,
                                         strip_bytes),
                core::slice(peers[p.nbr], in_off, strip_bytes), std::nullopt,
                rid, kWait) != Status::Ok)
          throw std::runtime_error("halo put failed");
        ++expected;
      }
      while (arrived[it] < expected) {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("halo wait failed");
        ++arrived[static_cast<int>(ev.id >> 8)];
      }
      arrived.erase(it);
      env.clock().add(4 * nx * 2);              // unpack
      env.clock().add(nx * nx * kComputePerCellNs);  // sweep
    }
    comm.barrier();
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

/// Two-sided variant: the same kernel with send/recv ghost exchange.
double twosided_iter_us(std::size_t nx) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(kPx * kPy), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    Geometry g{env.rank};
    std::vector<double> strips(8 * nx, 0.0);
    enum { W, E, N, S };
    struct Xfer {
      std::uint32_t nbr;
      int out_dir, in_dir;
    };
    const Xfer xfers[] = {{g.west(), W, E}, {g.east(), E, W},
                          {g.north(), N, S}, {g.south(), S, N}};
    benchsupport::sync_reset(env);

    for (int it = 0; it < kIters; ++it) {
      env.clock().add(4 * nx * 2);  // pack
      // Post all receives, then all sends, then wait (the standard pattern).
      std::vector<msg::ReqId> rqs;
      for (const Xfer& x : xfers) {
        if (x.nbr == UINT32_MAX) continue;
        // Data from the neighbor in direction `out_dir` fills that ghost;
        // the neighbor tagged it with *our* slot direction (its in_dir).
        auto rq = eng.irecv(
            x.nbr, static_cast<msg::Tag>((it << 8) | x.out_dir),
            std::as_writable_bytes(std::span(
                strips.data() + (4 + x.out_dir) * nx, nx)));
        if (!rq.ok()) throw std::runtime_error("halo irecv failed");
        rqs.push_back(rq.value());
      }
      for (const Xfer& x : xfers) {
        if (x.nbr == UINT32_MAX) continue;
        // The strip we send lands tagged with the direction the *receiver*
        // sees it from.
        if (eng.send(x.nbr, static_cast<msg::Tag>((it << 8) | x.in_dir),
                     std::as_bytes(std::span(strips.data() + x.out_dir * nx,
                                             nx)),
                     kWait) != Status::Ok)
          throw std::runtime_error("halo send failed");
      }
      for (auto rq : rqs)
        if (eng.wait(rq, nullptr, kWait) != Status::Ok)
          throw std::runtime_error("halo wait failed");
      env.clock().add(4 * nx * 2);
      env.clock().add(nx * nx * kComputePerCellNs);
    }
  });
  return static_cast<double>(vt) / kIters / 1e3;
}

std::map<std::size_t, std::array<double, 2>> g_rows;

void BM_PhotonHalo(benchmark::State& st) {
  const auto nx = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = photon_iter_us(nx);
    g_rows[nx][0] = us;
    st.SetIterationTime(us / 1e6);
  }
}
void BM_TwoSidedHalo(benchmark::State& st) {
  const auto nx = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double us = twosided_iter_us(nx);
    g_rows[nx][1] = us;
    st.SetIterationTime(us / 1e6);
  }
}

}  // namespace

BENCHMARK(BM_PhotonHalo)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedHalo)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("halo_app");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-12  2-D halo-exchange iteration time on a 2x2 grid (virtual us)");
  t.columns({"local N", "photon", "two-sided", "speedup"});
  for (const auto& [nx, c] : g_rows) {
    t.row({std::to_string(nx), benchsupport::Table::num(c[0]),
           benchsupport::Table::num(c[1]),
           c[0] > 0 ? benchsupport::Table::num(c[1] / c[0]) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
