// R-11 (robustness ablation): shape stability across wire calibrations.
//
// The substitution argument in DESIGN.md rests on the *shape* of the
// Photon-vs-two-sided comparison being insensitive to the absolute wire
// parameters. This bench re-runs the R-1 small-message (64 B) and
// mid-message (16 KiB) comparison under three calibrations — a low-latency
// fat fabric (EDR-class), the default (FDR-class), and a slow commodity
// fabric — and reports the speedup in each. The winner must not flip.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kIters = 200;
constexpr std::uint64_t kWait = 30'000'000'000ULL;

struct Calibration {
  const char* name;
  fabric::WireConfig wire;
};

std::vector<Calibration> calibrations() {
  fabric::WireConfig fast;   // EDR-ish: 0.8 us, ~11 GB/s
  fast.latency_ns = 800;
  fast.per_byte_ns = 0.09;
  fast.gap_ns = 20;
  fast.send_overhead_ns = 80;
  fast.recv_overhead_ns = 60;
  fabric::WireConfig mid;    // default FDR-ish
  fabric::WireConfig slow;   // commodity: 5 us, ~1.2 GB/s
  slow.latency_ns = 5000;
  slow.per_byte_ns = 0.8;
  slow.gap_ns = 120;
  slow.send_overhead_ns = 300;
  slow.recv_overhead_ns = 250;
  return {{"fast", fast}, {"default", mid}, {"slow", slow}};
}

double pwc_us(const fabric::WireConfig& wire, std::size_t size) {
  fabric::FabricConfig fcfg;
  fcfg.nranks = 2;
  fcfg.wire = wire;
  const std::uint64_t vt = run_spmd_vtime(fcfg, [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(size);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (ph.put_with_completion(peer, core::local_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("pong missing");
      } else {
        core::ProbeEvent ev;
        if (ph.wait_event(ev, kWait) != Status::Ok)
          throw std::runtime_error("ping missing");
        if (ph.put_with_completion(peer, core::local_slice(desc, 0, size),
                                   core::slice(peers[peer], 0, size),
                                   std::nullopt, 1, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  return static_cast<double>(vt) / (2.0 * kIters) / 1e3;
}

double twosided_us(const fabric::WireConfig& wire, std::size_t size) {
  fabric::FabricConfig fcfg;
  fcfg.nranks = 2;
  fcfg.wire = wire;
  const std::uint64_t vt = run_spmd_vtime(fcfg, [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> buf(size);
    const fabric::Rank peer = 1 - env.rank;
    benchsupport::sync_reset(env);
    for (int i = 0; i < kIters; ++i) {
      if (env.rank == 0) {
        if (eng.send(peer, 1, buf, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
        if (!eng.recv(peer, 1, buf, kWait).ok())
          throw std::runtime_error("recv failed");
      } else {
        if (!eng.recv(peer, 1, buf, kWait).ok())
          throw std::runtime_error("recv failed");
        if (eng.send(peer, 1, buf, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
      }
    }
  });
  return static_cast<double>(vt) / (2.0 * kIters) / 1e3;
}

struct Row {
  double pwc64, ts64, pwc16k, ts16k;
};
std::map<std::string, Row> g_rows;

void BM_WireAblation(benchmark::State& st) {
  const auto cals = calibrations();
  const auto& cal = cals[static_cast<std::size_t>(st.range(0))];
  for (auto _ : st) {
    Row r;
    r.pwc64 = pwc_us(cal.wire, 64);
    r.ts64 = twosided_us(cal.wire, 64);
    r.pwc16k = pwc_us(cal.wire, 16384);
    r.ts16k = twosided_us(cal.wire, 16384);
    g_rows[cal.name] = r;
    st.SetIterationTime(r.pwc64 / 1e6);
    st.counters["speedup64"] = r.ts64 / r.pwc64;
    st.counters["speedup16k"] = r.ts16k / r.pwc16k;
  }
  st.SetLabel(cal.name);
}

}  // namespace

BENCHMARK(BM_WireAblation)->Arg(0)->Arg(1)->Arg(2)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("wire_ablation");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-11  Shape stability across wire calibrations (virtual us)");
  t.columns({"calibration", "pwc 64B", "2s 64B", "speedup", "pwc 16K",
             "2s 16K", "speedup16k"});
  for (const auto& [name, r] : g_rows) {
    t.row({name, benchsupport::Table::num(r.pwc64),
           benchsupport::Table::num(r.ts64),
           benchsupport::Table::num(r.ts64 / r.pwc64),
           benchsupport::Table::num(r.pwc16k),
           benchsupport::Table::num(r.ts16k),
           benchsupport::Table::num(r.ts16k / r.pwc16k)});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
