// R-4 (overlap figure): communication/computation overlap.
//
// A fixed 512 KiB transfer is paired with a variable compute phase. The
// asynchronous one-sided initiator posts the put, computes, then waits for
// its local completion: total ≈ max(comm, comp). The blocking two-sided
// sender completes the transfer first: total ≈ comm + comp. The overlap
// ratio (comm + comp - total) / min(comm, comp) is ~1 for Photon and ~0 for
// blocking sends.
#include <benchmark/benchmark.h>

#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::size_t kBytes = 512u << 10;
constexpr std::uint64_t kWait = 30'000'000'000ULL;
constexpr int kReps = 50;

struct OverlapResult {
  double total_us;
  double overlap;  ///< (comm + comp - total) / min(comm, comp)
};

/// Baseline transfer time with zero compute (measured, not assumed).
std::uint64_t photon_comm_ns() {
  return run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(kBytes);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (int r = 0; r < kReps; ++r) {
        if (ph.put_with_completion(1, core::local_slice(desc, 0, kBytes),
                                   core::slice(peers[1], 0, kBytes), 1,
                                   std::nullopt, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
        core::LocalComplete lc;
        if (ph.wait_local(lc, kWait) != Status::Ok)
          throw std::runtime_error("wait failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  }) / kReps;
}

OverlapResult photon_overlap(std::uint64_t comm_ns, double comp_frac) {
  const auto comp_ns = static_cast<std::uint64_t>(comm_ns * comp_frac);
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(kBytes);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      for (int r = 0; r < kReps; ++r) {
        if (ph.put_with_completion(1, core::local_slice(desc, 0, kBytes),
                                   core::slice(peers[1], 0, kBytes), 1,
                                   std::nullopt, kWait) != Status::Ok)
          throw std::runtime_error("put failed");
        env.clock().add(comp_ns);  // compute while the wire moves data
        core::LocalComplete lc;
        if (ph.wait_local(lc, kWait) != Status::Ok)
          throw std::runtime_error("wait failed");
      }
    }
    env.bootstrap.barrier(env.rank);
  });
  const double total = static_cast<double>(vt) / kReps;
  const double denom = static_cast<double>(std::min(comm_ns, comp_ns));
  const double overlap =
      denom > 0 ? (static_cast<double>(comm_ns + comp_ns) - total) / denom : 0;
  return {total / 1e3, overlap};
}

std::uint64_t twosided_comm_ns() {
  return run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> buf(kBytes);
    benchsupport::sync_reset(env);
    for (int r = 0; r < kReps; ++r) {
      if (env.rank == 0) {
        if (eng.send(1, 1, buf, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
      } else {
        if (!eng.recv(0, 1, buf, kWait).ok())
          throw std::runtime_error("recv failed");
      }
    }
  }) / kReps;
}

OverlapResult twosided_overlap(std::uint64_t comm_ns, double comp_frac) {
  const auto comp_ns = static_cast<std::uint64_t>(comm_ns * comp_frac);
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::byte> buf(kBytes);
    benchsupport::sync_reset(env);
    for (int r = 0; r < kReps; ++r) {
      if (env.rank == 0) {
        // Blocking send, then compute: the classic no-overlap pattern.
        if (eng.send(1, 1, buf, kWait) != Status::Ok)
          throw std::runtime_error("send failed");
        env.clock().add(comp_ns);
      } else {
        if (!eng.recv(0, 1, buf, kWait).ok())
          throw std::runtime_error("recv failed");
      }
    }
  });
  const double total = static_cast<double>(vt) / kReps;
  const double denom = static_cast<double>(std::min(comm_ns, comp_ns));
  const double overlap =
      denom > 0 ? (static_cast<double>(comm_ns + comp_ns) - total) / denom : 0;
  return {total / 1e3, overlap};
}

std::map<int, std::array<double, 4>> g_rows;  // comp% -> totals+overlaps
std::uint64_t g_ph_comm = 0, g_ts_comm = 0;

void BM_PhotonOverlap(benchmark::State& st) {
  if (g_ph_comm == 0) g_ph_comm = photon_comm_ns();
  const int pct = static_cast<int>(st.range(0));
  for (auto _ : st) {
    const auto r = photon_overlap(g_ph_comm, pct / 100.0);
    g_rows[pct][0] = r.total_us;
    g_rows[pct][1] = r.overlap;
    st.SetIterationTime(r.total_us / 1e6);
    st.counters["overlap"] = r.overlap;
  }
}

void BM_TwoSidedOverlap(benchmark::State& st) {
  if (g_ts_comm == 0) g_ts_comm = twosided_comm_ns();
  const int pct = static_cast<int>(st.range(0));
  for (auto _ : st) {
    const auto r = twosided_overlap(g_ts_comm, pct / 100.0);
    g_rows[pct][2] = r.total_us;
    g_rows[pct][3] = r.overlap;
    st.SetIterationTime(r.total_us / 1e6);
    st.counters["overlap"] = r.overlap;
  }
}

}  // namespace

BENCHMARK(BM_PhotonOverlap)->DenseRange(25, 200, 25)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedOverlap)->DenseRange(25, 200, 25)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("overlap");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-4  Overlap: 512 KiB transfer + compute (virtual us; overlap in "
      "[0,1])");
  t.columns({"comp/comm %", "photon_total", "photon_ovl", "2s_total",
             "2s_ovl"});
  for (const auto& [pct, cols] : g_rows) {
    t.row({std::to_string(pct), benchsupport::Table::num(cols[0], 1),
           benchsupport::Table::num(cols[1]), benchsupport::Table::num(cols[2], 1),
           benchsupport::Table::num(cols[3])});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
