// R-2 (bandwidth figure): streaming bandwidth vs message size.
//
// A window of outstanding transfers from rank 0 to rank 1. Series: Photon
// direct puts (zero-copy into a published buffer) vs two-sided isends.
// Expected shape: both saturate the modeled link; Photon reaches saturation
// at smaller message sizes (no per-message matching/copy overheads).
#include <benchmark/benchmark.h>

#include <deque>
#include <thread>
#include <map>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::mbps;
using benchsupport::run_spmd_vtime;

namespace {

constexpr int kWindow = 32;
constexpr std::uint64_t kTotalBytes = 32u << 20;  // per experiment
constexpr std::uint64_t kWait = 30'000'000'000ULL;

double photon_bw_mbps(std::size_t size) {
  const std::size_t count = std::max<std::size_t>(kTotalBytes / size, kWindow);
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::byte> buf(size * 2);
    auto desc = ph.register_buffer(buf.data(), buf.size()).value();
    auto peers = ph.exchange_descriptors(desc);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      std::size_t completed = 0, posted = 0;
      while (completed < count) {
        while (posted < count && posted - completed < kWindow) {
          std::optional<std::uint64_t> rid;
          if (posted + 1 == count) rid = 1;  // final notify to the target
          if (ph.put_with_completion(1, core::local_slice(desc, 0, size),
                                     core::slice(peers[1], 0, size), posted,
                                     rid, kWait) != Status::Ok)
            throw std::runtime_error("put failed");
          ++posted;
        }
        core::LocalComplete lc;
        if (ph.wait_local(lc, kWait) != Status::Ok)
          throw std::runtime_error("completion missing");
        ++completed;
      }
    } else {
      // Target CPU is idle until the final notify — the one-sided promise.
      core::ProbeEvent ev;
      if (ph.wait_event(ev, kWait) != Status::Ok)
        throw std::runtime_error("final notify missing");
    }
    env.bootstrap.barrier(env.rank);
  });
  return mbps(count * size, vt);
}

double twosided_bw_mbps(std::size_t size) {
  const std::size_t count = std::max<std::size_t>(kTotalBytes / size, kWindow);
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(2), [&](runtime::Env& env) {
    msg::Config mcfg;
    msg::Engine eng(env.nic, env.bootstrap, mcfg);
    std::vector<std::byte> buf(size);
    benchsupport::sync_reset(env);
    if (env.rank == 0) {
      std::deque<msg::ReqId> window;
      std::size_t posted = 0, completed = 0;
      util::Deadline dl(kWait);
      while (completed < count) {
        while (posted < count && window.size() < kWindow) {
          auto rq = eng.isend(1, 7, buf);
          if (rq.ok()) {
            window.push_back(rq.value());
            ++posted;
          } else if (transient(rq.status())) {
            break;  // credits exhausted; drain first
          } else {
            throw std::runtime_error("isend failed");
          }
        }
        if (window.empty()) {
          eng.progress();
          if (!eng.progress_jump()) std::this_thread::yield();
          if (dl.expired()) throw std::runtime_error("stalled");
          continue;
        }
        if (eng.wait(window.front(), nullptr, kWait) != Status::Ok)
          throw std::runtime_error("send wait failed");
        window.pop_front();
        ++completed;
      }
    } else {
      std::vector<std::byte> in(size);
      for (std::size_t i = 0; i < count; ++i) {
        if (!eng.recv(0, 7, in, kWait).ok())
          throw std::runtime_error("recv failed");
      }
    }
  });
  return mbps(count * size, vt);
}

std::map<std::size_t, std::array<double, 2>> g_rows;

void BM_PhotonStream(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double bw = photon_bw_mbps(size);
    g_rows[size][0] = bw;
    st.SetIterationTime(1e-3);  // bandwidth is the metric; time is nominal
    st.counters["MB/s"] = bw;
  }
}

void BM_TwoSidedStream(benchmark::State& st) {
  const std::size_t size = static_cast<std::size_t>(st.range(0));
  for (auto _ : st) {
    const double bw = twosided_bw_mbps(size);
    g_rows[size][1] = bw;
    st.SetIterationTime(1e-3);
    st.counters["MB/s"] = bw;
  }
}

}  // namespace

BENCHMARK(BM_PhotonStream)->RangeMultiplier(4)->Range(1 << 10, 4 << 20)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedStream)->RangeMultiplier(4)->Range(1 << 10, 4 << 20)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("bandwidth");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t("R-2  Streaming bandwidth vs message size (virtual MB/s)");
  t.columns({"size", "photon_put", "two-sided", "photon/2s"});
  for (const auto& [size, cols] : g_rows) {
    t.row({benchsupport::Table::bytes(size),
           benchsupport::Table::num(cols[0], 1),
           benchsupport::Table::num(cols[1], 1),
           cols[1] > 0 ? benchsupport::Table::num(cols[0] / cols[1]) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
