// R-9 (irregular-access figure): GUPS-style random remote updates.
//
// A distributed table of 64-bit counters; every rank streams random
// increments at random owners. Photon path: one-sided fetch-add — a single
// wire round trip, no target CPU. Two-sided path: request/reply — the owner
// must receive, apply, and respond. Expected shape: one-sided sustains a
// multiple of the two-sided update rate, and the gap persists as ranks
// scale.
#include <benchmark/benchmark.h>

#include <map>
#include <thread>

#include "benchsupport/harness.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/table.hpp"
#include "benchsupport/workloads.hpp"

using namespace photon;
using benchsupport::bench_fabric;
using benchsupport::mops;
using benchsupport::run_spmd_vtime;

namespace {

constexpr std::size_t kUpdatesPerRank = 4000;
constexpr std::uint32_t kSlots = 4096;
constexpr std::uint64_t kWait = 30'000'000'000ULL;
constexpr std::size_t kWindow = 64;

double photon_mups(std::uint32_t nranks) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(nranks), [&](runtime::Env& env) {
    core::Photon ph(env.nic, env.bootstrap, core::Config{});
    std::vector<std::uint64_t> shard(kSlots, 0);
    auto desc = ph.register_buffer(shard.data(), shard.size() * 8).value();
    auto shards = ph.exchange_descriptors(desc);
    auto stream = benchsupport::gups_stream(kUpdatesPerRank, nranks, kSlots,
                                            500 + env.rank);
    benchsupport::sync_reset(env);
    std::size_t outstanding = 0;
    fabric::Completion c;
    for (const auto& u : stream) {
      const fabric::RemoteRef cell{shards[u.rank].addr + u.slot * 8,
                                   shards[u.rank].rkey};
      while (env.nic.post_fetch_add(u.rank, cell, 1, 0) == Status::QueueFull)
        if (env.nic.poll_send(c) == Status::Ok) --outstanding;
      ++outstanding;
      while (outstanding > kWindow) {
        if (env.nic.wait_send(c, kWait) != Status::Ok)
          throw std::runtime_error("drain failed");
        --outstanding;
      }
    }
    while (outstanding > 0) {
      if (env.nic.wait_send(c, kWait) != Status::Ok)
        throw std::runtime_error("final drain failed");
      --outstanding;
    }
    env.bootstrap.barrier(env.rank);
  });
  return mops(kUpdatesPerRank * nranks, vt);
}

double twosided_mups(std::uint32_t nranks) {
  const std::uint64_t vt = run_spmd_vtime(bench_fabric(nranks), [&](runtime::Env& env) {
    msg::Engine eng(env.nic, env.bootstrap, msg::Config{});
    std::vector<std::uint64_t> shard(kSlots, 0);
    auto stream = benchsupport::gups_stream(kUpdatesPerRank, nranks, kSlots,
                                            500 + env.rank);
    benchsupport::sync_reset(env);
    // Each rank is both updater and owner: interleave sending requests with
    // serving incoming ones. Request: {slot}; reply: empty ack.
    std::size_t sent = 0, acked = 0, served = 0;
    const std::size_t expect_serve = kUpdatesPerRank;  // expectation: uniform
    std::uint64_t done_peers = 0;
    util::Deadline dl(kWait);
    auto serve_one = [&]() -> bool {
      auto info = eng.iprobe(msg::kAnySource, msg::kAnyTag);
      if (!info) return false;
      if (info->tag == 1) {  // update request
        std::uint64_t slot = 0;
        auto r = eng.recv(info->source, 1,
                          std::as_writable_bytes(std::span(&slot, 1)), kWait);
        if (!r.ok()) throw std::runtime_error("serve recv failed");
        ++shard[slot % kSlots];
        env.clock().add(20);  // apply cost
        if (eng.send(info->source, 2, {}, kWait) != Status::Ok)
          throw std::runtime_error("ack failed");
        ++served;
      } else if (info->tag == 2) {  // ack
        if (!eng.recv(info->source, 2, {}, kWait).ok())
          throw std::runtime_error("ack recv failed");
        ++acked;
      } else {  // done marker
        if (!eng.recv(info->source, 3, {}, kWait).ok())
          throw std::runtime_error("done recv failed");
        ++done_peers;
      }
      return true;
    };
    while (sent < stream.size() || acked < sent) {
      bool moved = false;
      if (sent < stream.size() && sent - acked < kWindow) {
        std::uint64_t slot = stream[sent].slot;
        if (eng.send(stream[sent].rank, 1, std::as_bytes(std::span(&slot, 1)),
                     kWait) != Status::Ok)
          throw std::runtime_error("request failed");
        ++sent;
        moved = true;
      }
      while (serve_one()) moved = true;
      if (!moved && !eng.progress_jump()) std::this_thread::yield();
      if (dl.expired()) throw std::runtime_error("gups stalled");
    }
    // Tell peers we are done issuing; keep serving until all are done.
    for (std::uint32_t r = 0; r < env.size; ++r)
      if (r != env.rank && eng.send(r, 3, {}, kWait) != Status::Ok)
        throw std::runtime_error("done send failed");
    while (done_peers < env.size - 1) {
      if (!serve_one() && !eng.progress_jump()) std::this_thread::yield();
      if (dl.expired()) throw std::runtime_error("gups drain stalled");
    }
    (void)expect_serve;
    (void)served;
  });
  return mops(kUpdatesPerRank * nranks, vt);
}

std::map<std::uint32_t, std::array<double, 2>> g_rows;

void BM_PhotonGups(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    const double r = photon_mups(n);
    g_rows[n][0] = r;
    st.SetIterationTime(1e-3);
    st.counters["MUPS"] = r;
  }
}
void BM_TwoSidedGups(benchmark::State& st) {
  const auto n = static_cast<std::uint32_t>(st.range(0));
  for (auto _ : st) {
    const double r = twosided_mups(n);
    g_rows[n][1] = r;
    st.SetIterationTime(1e-3);
    st.counters["MUPS"] = r;
  }
}

}  // namespace

BENCHMARK(BM_PhotonGups)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1);
BENCHMARK(BM_TwoSidedGups)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1);

int main(int argc, char** argv) {
  benchsupport::BenchReport report("gups");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchsupport::Table t(
      "R-9  Random remote updates, aggregate rate (virtual MUPS)");
  t.columns({"ranks", "one-sided fadd", "two-sided req/rep", "ratio"});
  for (const auto& [n, c] : g_rows) {
    t.row({std::to_string(n), benchsupport::Table::num(c[0]),
           benchsupport::Table::num(c[1]),
           c[1] > 0 ? benchsupport::Table::num(c[0] / c[1]) : "-"});
  }
  t.print();
  benchsupport::print_resilience_table();
  return 0;
}
