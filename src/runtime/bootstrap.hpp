// Out-of-band bootstrap exchange (stands in for PMI/slurm).
//
// Real Photon exchanges buffer descriptors {addr, rkey, size} through the
// job launcher before any RMA can happen; this Exchanger provides the same
// collective all-exchange over shared memory for the threads-as-ranks
// harness. It is *not* part of the modeled data path (no virtual-time
// charges) — exactly like PMI traffic in the real system.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "fabric/types.hpp"

namespace photon::runtime {

class Exchanger {
 public:
  explicit Exchanger(std::uint32_t nranks)
      : nranks_(nranks), blobs_(nranks), result_(nranks) {}

  /// Collective: every rank contributes a blob; returns all blobs indexed by
  /// rank. Reusable for consecutive rounds.
  std::vector<std::vector<std::byte>> all_exchange(fabric::Rank me,
                                                   std::span<const std::byte> blob);

  /// Collective barrier (zero-byte exchange).
  void barrier(fabric::Rank me) { (void)all_exchange(me, {}); }

  /// Unblock every waiter and make collective calls throw until
  /// clear_abort(). Used by the harness when a rank dies so its peers fail
  /// fast instead of deadlocking in a barrier.
  void abort();
  void clear_abort();

  /// Typed convenience for trivially copyable descriptors.
  template <typename T>
  std::vector<T> all_gather(fabric::Rank me, const T& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = all_exchange(
        me, std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(&mine), sizeof(T)));
    std::vector<T> out(nranks_);
    for (std::uint32_t r = 0; r < nranks_; ++r)
      std::memcpy(&out[r], raw[r].data(), sizeof(T));
    return out;
  }

  std::uint32_t size() const noexcept { return nranks_; }

 private:
  std::uint32_t nranks_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::vector<std::vector<std::byte>> blobs_;
  std::vector<std::vector<std::byte>> result_;
  std::uint32_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace photon::runtime
