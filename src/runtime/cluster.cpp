#include "runtime/cluster.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace photon::runtime {

Cluster::Cluster(const fabric::FabricConfig& cfg)
    : fabric_(cfg), bootstrap_(cfg.nranks) {}

void Cluster::run(const std::function<void(Env&)>& body) {
  const std::uint32_t n = fabric_.size();
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Env env{r, n, fabric_.nic(r), bootstrap_, *this};
      try {
        body(env);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers stuck in bootstrap collectives so the whole
        // section fails fast instead of deadlocking on join.
        bootstrap_.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  bootstrap_.clear_abort();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void Cluster::reset_virtual_time() {
  for (fabric::Rank r = 0; r < fabric_.size(); ++r) {
    fabric_.nic(r).clock().reset();
    fabric_.nic(r).reset_stream_time();
  }
  fabric_.wire().reset();
}

}  // namespace photon::runtime
