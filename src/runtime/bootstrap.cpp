#include "runtime/bootstrap.hpp"

#include <stdexcept>

namespace photon::runtime {

std::vector<std::vector<std::byte>> Exchanger::all_exchange(
    fabric::Rank me, std::span<const std::byte> blob) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) throw std::runtime_error("bootstrap exchange aborted");
  blobs_[me].assign(blob.begin(), blob.end());
  if (++arrived_ == nranks_) {
    result_ = blobs_;
    arrived_ = 0;
    ++generation_;
    done_.notify_all();
    return result_;
  }
  const std::uint64_t my_gen = generation_;
  done_.wait(lock, [&] { return generation_ != my_gen || aborted_; });
  if (generation_ == my_gen && aborted_) {
    --arrived_;  // withdraw our contribution; round never completed
    throw std::runtime_error("bootstrap exchange aborted");
  }
  return result_;
}

void Exchanger::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  done_.notify_all();
}

void Exchanger::clear_abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = false;
}

}  // namespace photon::runtime
