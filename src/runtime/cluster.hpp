// Threads-as-ranks SPMD harness.
//
// A Cluster owns one Fabric and one bootstrap Exchanger; run() launches one
// thread per rank, hands each an Env, joins them, and rethrows the first
// rank exception. run() may be called repeatedly against the same fabric
// (the virtual clocks and wire state persist unless reset).
#pragma once

#include <functional>
#include <memory>

#include "fabric/fabric.hpp"
#include "runtime/bootstrap.hpp"

namespace photon::runtime {

class Cluster;

/// Everything a rank's body needs.
struct Env {
  fabric::Rank rank;
  std::uint32_t size;
  fabric::Nic& nic;
  Exchanger& bootstrap;
  Cluster& cluster;

  fabric::VClock& clock() { return nic.clock(); }
};

class Cluster {
 public:
  explicit Cluster(const fabric::FabricConfig& cfg);

  fabric::Fabric& fabric() noexcept { return fabric_; }
  Exchanger& bootstrap() noexcept { return bootstrap_; }
  std::uint32_t size() const noexcept { return fabric_.size(); }

  /// SPMD section: body(env) runs once per rank, concurrently.
  void run(const std::function<void(Env&)>& body);

  /// Reset all virtual clocks and wire-resource timestamps (between
  /// benchmark repetitions).
  void reset_virtual_time();

 private:
  fabric::Fabric fabric_;
  Exchanger bootstrap_;
};

}  // namespace photon::runtime
