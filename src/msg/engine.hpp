// Two-sided messaging baseline: tagged send/recv with MPI-like matching
// (posted-receive queue + unexpected queue, wildcard source/tag), an eager
// protocol through pre-posted bounce buffers, and a receiver-driven
// rendezvous (RTS -> RDMA get -> FIN) for large messages.
//
// This is the comparator the Photon paper measures against: it runs over
// the *same* simulated fabric, so Photon-vs-two-sided deltas reflect
// protocol mechanism (matching, bounce copies, extra wire trips), not
// substrate differences. The matching and copy CPU costs are explicit,
// calibrated knobs charged to the virtual clock.
//
// Threading: one Engine per rank, owned by that rank's thread.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fabric/nic.hpp"
#include "msg/wire.hpp"
#include "runtime/bootstrap.hpp"
#include "util/expected.hpp"

namespace photon::msg {

using Tag = std::uint64_t;
inline constexpr Tag kAnyTag = ~std::uint64_t{0};
inline constexpr fabric::Rank kAnySource = ~std::uint32_t{0};

struct Config {
  std::size_t eager_threshold = 8192;  ///< <=: eager; >: rendezvous
  std::size_t bounce_count = 512;      ///< pre-posted receive bounce buffers
  std::size_t send_credits = 64;       ///< outstanding eager sends per peer
  std::uint64_t match_cost_ns = 60;    ///< per-message tag-matching CPU cost
  double copy_per_byte_ns = 0.05;      ///< bounce copy-in/copy-out
  std::uint64_t reg_cost_ns = 500;     ///< on-the-fly registration (rendezvous)
};

struct RecvInfo {
  fabric::Rank source = 0;
  Tag tag = 0;
  std::size_t len = 0;       ///< bytes delivered
  bool truncated = false;
};

using ReqId = std::uint64_t;
inline constexpr ReqId kInvalidReq = 0;

struct MsgStats {
  std::uint64_t eager_sends = 0;
  std::uint64_t rndv_sends = 0;
  std::uint64_t recvs_completed = 0;
  std::uint64_t expected_hits = 0;    ///< message matched a posted recv
  std::uint64_t unexpected_hits = 0;  ///< recv matched a queued message
  std::uint64_t credit_acks = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t registrations = 0;
};

class Engine {
 public:
  static constexpr std::uint64_t kDefaultTimeoutNs = 10'000'000'000ULL;

  /// Collective across ranks (pre-posts bounce receives).
  Engine(fabric::Nic& nic, runtime::Exchanger& oob, const Config& cfg);
  /// Folds MsgStats into the process metrics registry (when enabled) as
  /// "msg.*" counters before tearing the bounce slab down.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  fabric::Rank rank() const noexcept { return nic_.rank(); }
  std::uint32_t size() const noexcept { return nranks_; }
  const Config& config() const noexcept { return cfg_; }
  const MsgStats& stats() const noexcept { return stats_; }
  fabric::VClock& clock() noexcept { return nic_.clock(); }
  fabric::Nic& nic() noexcept { return nic_; }

  // ---- nonblocking ----------------------------------------------------------
  util::Result<ReqId> isend(fabric::Rank dst, Tag tag,
                            std::span<const std::byte> data);
  util::Result<ReqId> irecv(fabric::Rank src, Tag tag, std::span<std::byte> out);

  /// Nonblocking completion check; consumes the request when done and fills
  /// `info` (recv requests only; may be null).
  Status test(ReqId rq, bool& done, RecvInfo* info = nullptr);
  Status wait(ReqId rq, RecvInfo* info = nullptr,
              std::uint64_t timeout_ns = kDefaultTimeoutNs);

  /// Is a matching message (eager or RTS) already here?
  std::optional<RecvInfo> iprobe(fabric::Rank src, Tag tag);

  // ---- blocking convenience ---------------------------------------------------
  Status send(fabric::Rank dst, Tag tag, std::span<const std::byte> data,
              std::uint64_t timeout_ns = kDefaultTimeoutNs);
  util::Result<RecvInfo> recv(fabric::Rank src, Tag tag, std::span<std::byte> out,
                              std::uint64_t timeout_ns = kDefaultTimeoutNs);

  void progress();
  /// Idle-wait step: consume the earliest pending fabric completion even if
  /// its virtual arrival is in the future (jumps the clock). False if none.
  bool progress_jump();
  /// One idle-wait iteration: yield once, then jump, then back off.
  void idle_wait_step(std::uint32_t& spins);

 private:
  void fold_stats() const;

  struct PostedRecv {
    fabric::Rank src;
    Tag tag;
    std::span<std::byte> out;
    ReqId rq;
  };
  struct Unexpected {
    fabric::Rank src = 0;
    Tag tag = 0;
    bool is_rts = false;
    std::vector<std::byte> payload;  ///< eager data
    // RTS fields:
    std::uint64_t sender_req = 0;
    std::uint64_t addr = 0;
    std::uint64_t rkey = 0;
    std::size_t size = 0;
  };
  struct ReqInfo {
    bool done = false;
    Status status = Status::Ok;
    RecvInfo info{};
  };
  enum class OpKind : std::uint8_t { kEagerSend, kCtrlSend, kRndvGet };
  struct OpRecord {
    OpKind kind = OpKind::kCtrlSend;
    ReqId request = kInvalidReq;  ///< eager send / rndv-get request
    // rndv-get bookkeeping:
    fabric::Rank peer = 0;
    std::uint64_t sender_req = 0;
    fabric::MrKey dereg_lkey = fabric::kInvalidKey;
    RecvInfo info{};
    bool in_use = false;
  };
  struct RndvSendState {
    fabric::MrKey lkey = fabric::kInvalidKey;  ///< to deregister on FIN
    fabric::Rank peer = 0;                     ///< FIN source (health sweep)
  };

  static bool matches(fabric::Rank want_src, Tag want_tag, fabric::Rank src,
                      Tag tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  /// Reclaim protocol state wedged on peers newly declared Down: rendezvous
  /// sends whose FIN can never arrive and posted receives pinned to a dead
  /// source complete with Status::PeerUnreachable. Gated on the NIC health
  /// generation counter.
  void sweep_peer_health();
  /// Post gate for `dst`: re-opens the per-peer channel on the NIC's fenced
  /// tx-epoch edge (send credits restart at full) and, when auto_recover is
  /// configured, runs the reconnect/fence protocol for a Down peer. Returns
  /// false when the peer stays unusable.
  bool ensure_peer(fabric::Rank dst);
  Status send_ctrl(fabric::Rank dst, const MsgHeader& h,
                   std::span<const std::byte> payload);
  void repost_bounce(std::size_t slot);
  void handle_incoming(const fabric::Completion& c);
  void handle_eager(fabric::Rank src, const MsgHeader& h, const std::byte* body);
  void handle_rts(fabric::Rank src, const MsgHeader& h);
  void start_rndv_get(fabric::Rank src, const Unexpected& rts,
                      std::span<std::byte> out, ReqId rq);
  void deliver_eager(const PostedRecv& pr, fabric::Rank src, Tag tag,
                     const std::byte* body, std::size_t len);
  void handle_send_completion(const fabric::Completion& c);
  void maybe_ack_credits(fabric::Rank src);
  void charge_match() { nic_.clock().add(cfg_.match_cost_ns); }
  void charge_copy(std::size_t bytes) {
    nic_.clock().add(static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                                cfg_.copy_per_byte_ns));
  }

  std::uint64_t alloc_op(OpRecord rec);
  ReqId alloc_request();
  void complete_request(ReqId rq, Status st, const RecvInfo& info);

  fabric::Nic& nic_;
  runtime::Exchanger* oob_ = nullptr;
  std::uint32_t nranks_;
  Config cfg_;
  MsgStats stats_;

  // Bounce pool: one registered slab carved into recv slots plus one send
  // staging slot (reusable immediately; see fabric execution model).
  std::vector<std::byte> slab_;
  fabric::MrKey slab_lkey_ = fabric::kInvalidKey;
  std::size_t slot_bytes_ = 0;

  std::deque<PostedRecv> posted_;
  std::deque<Unexpected> unexpected_;

  std::vector<OpRecord> ops_;
  std::vector<std::uint64_t> free_ops_;

  std::unordered_map<ReqId, ReqInfo> requests_;
  std::unordered_map<std::uint64_t, RndvSendState> rndv_sends_;
  ReqId next_request_ = 1;

  std::vector<std::uint32_t> credits_;           ///< per-dst remaining
  std::vector<std::uint32_t> since_ack_;         ///< per-src processed count
  std::uint64_t health_gen_seen_ = 0;            ///< last reacted-to down gen
  /// Last NIC connection epochs the channel state is synced to: tx (my
  /// fences toward the peer; see ensure_peer) and rx (the peer's fences
  /// toward me; see handle_incoming).
  std::vector<std::uint32_t> tx_epoch_seen_;
  std::vector<std::uint32_t> rx_epoch_seen_;
};

}  // namespace photon::msg
