// Wire protocol for the two-sided baseline (MPI-over-verbs style).
//
// Every NIC-level send starts with a MsgHeader. Small payloads ride inline
// after the header (eager); large ones use RTS -> matched get -> FIN
// (receiver-driven rendezvous, as MVAPICH/OpenMPI do on RDMA fabrics).
#pragma once

#include <cstdint>

namespace photon::msg {

enum class Proto : std::uint32_t {
  kEager = 1,
  kRts = 2,        ///< sender->receiver: "data ready at {addr, rkey}"
  kFin = 3,        ///< receiver->sender: "your RTS'd buffer was consumed"
  kCreditAck = 4,  ///< receiver->sender: eager-credit return
};

/// MsgHeader::flags bit: `crc` holds a CRC32C of the eager payload. Stamped
/// only when the fabric has in-flight faults armed (end-to-end integrity on
/// top of the wire-level frame CRC).
inline constexpr std::uint32_t kMsgFlagCrc = 1;

struct MsgHeader {
  std::uint64_t tag = 0;
  std::uint32_t proto = 0;   ///< Proto
  std::uint32_t size = 0;    ///< payload bytes (eager) / transfer size (RTS)
  std::uint64_t sender_req = 0;  ///< sender-side request id (RTS/FIN)
  std::uint64_t addr = 0;    ///< RTS: source buffer address
  std::uint64_t rkey = 0;    ///< RTS: source buffer rkey
  std::uint64_t aux = 0;     ///< CreditAck: credits returned
  std::uint32_t crc = 0;     ///< CRC32C of the eager payload (kMsgFlagCrc)
  std::uint32_t flags = 0;
};
static_assert(sizeof(MsgHeader) == 56);

}  // namespace photon::msg
