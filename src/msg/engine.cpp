#include "msg/engine.hpp"

#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "check/hooks.hpp"
#include "resilience/crc32c.hpp"
#include "telemetry/hooks.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace photon::msg {

using fabric::Rank;

Engine::Engine(fabric::Nic& nic, runtime::Exchanger& oob, const Config& cfg)
    : nic_(nic), nranks_(oob.size()), cfg_(cfg) {
  if (cfg_.bounce_count < 2) throw std::invalid_argument("bounce_count >= 2");
  if (cfg_.send_credits < 2) throw std::invalid_argument("send_credits >= 2");
  slot_bytes_ = sizeof(MsgHeader) + cfg_.eager_threshold;
  slab_.assign(slot_bytes_ * (cfg_.bounce_count + 1), std::byte{0});
  auto mr = nic_.registry().register_memory(slab_.data(), slab_.size(),
                                            fabric::kAccessAll);
  if (!mr.ok()) throw std::runtime_error("bounce slab registration failed");
  slab_lkey_ = mr.value().lkey;

  for (std::size_t s = 0; s < cfg_.bounce_count; ++s) repost_bounce(s);

  credits_.assign(nranks_, static_cast<std::uint32_t>(cfg_.send_credits));
  since_ack_.assign(nranks_, 0);
  tx_epoch_seen_.assign(nranks_, 0);
  rx_epoch_seen_.assign(nranks_, 0);

  // All ranks ready before any traffic (PMI-style fence).
  oob.barrier(rank());
  oob_ = &oob;
}

Engine::~Engine() {
  // Peers may still be transmitting into our bounce slab; fence before
  // tearing it down (symmetric SPMD destruction assumed).
  if (oob_ != nullptr) oob_->barrier(rank());
  PHOTON_TELEM_HOOK(fold_stats());
  nic_.registry().deregister(slab_lkey_);
}

void Engine::fold_stats() const {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::process();
  if (!reg.enabled()) return;
  auto add = [&reg](const char* name, std::uint64_t v) {
    if (v != 0) reg.counter(std::string("msg.") + name).add(v);
  };
  add("eager_sends", stats_.eager_sends);
  add("rndv_sends", stats_.rndv_sends);
  add("recvs_completed", stats_.recvs_completed);
  add("expected_hits", stats_.expected_hits);
  add("unexpected_hits", stats_.unexpected_hits);
  add("credit_acks", stats_.credit_acks);
  add("credit_stalls", stats_.credit_stalls);
  add("bytes_sent", stats_.bytes_sent);
  add("registrations", stats_.registrations);
}

void Engine::repost_bounce(std::size_t slot) {
  std::byte* p = slab_.data() + slot * slot_bytes_;
  const Status st =
      nic_.post_recv(fabric::LocalMutRef{p, slot_bytes_, slab_lkey_}, slot);
  if (st != Status::Ok)
    log::error("msg: bounce repost failed: ", status_name(st));
}

std::uint64_t Engine::alloc_op(OpRecord rec) {
  rec.in_use = true;
  if (!free_ops_.empty()) {
    const std::uint64_t idx = free_ops_.back();
    free_ops_.pop_back();
    ops_[idx] = rec;
    return idx;
  }
  ops_.push_back(rec);
  return ops_.size() - 1;
}

ReqId Engine::alloc_request() {
  const ReqId rq = next_request_++;
  requests_.emplace(rq, ReqInfo{});
  return rq;
}

void Engine::complete_request(ReqId rq, Status st, const RecvInfo& info) {
  auto it = requests_.find(rq);
  if (it == requests_.end()) {
    log::warn("msg: completion for unknown request ", rq);
    return;
  }
  it->second.done = true;
  it->second.status = st;
  it->second.info = info;
  // Release any request-anchored shadow spans (rndv windows). Requests with
  // no shadow op (eager sends) are silently ignored by the checker.
  PHOTON_CHECK_HOOK(
      nic_.checker().on_request_done(rank(), check::RequestNs::kMsg, rq));
}

Status Engine::send_ctrl(Rank dst, const MsgHeader& h,
                         std::span<const std::byte> payload) {
  std::byte* staging = slab_.data() + cfg_.bounce_count * slot_bytes_;
  std::memcpy(staging, &h, sizeof(h));
  if (!payload.empty())
    std::memcpy(staging + sizeof(h), payload.data(), payload.size());
  return nic_.post_send(
      dst, fabric::LocalRef{staging, sizeof(h) + payload.size(), slab_lkey_}, 0,
      0, /*signaled=*/false);
}

// ---- send side ------------------------------------------------------------------

util::Result<ReqId> Engine::isend(Rank dst, Tag tag,
                                  std::span<const std::byte> data) {
  if (dst >= nranks_ || tag == kAnyTag) return Status::BadArgument;
  if (!ensure_peer(dst)) return Status::PeerUnreachable;

  if (data.size() <= cfg_.eager_threshold) {
    if (credits_[dst] == 0) {
      ++stats_.credit_stalls;
      return Status::Retry;
    }
    const ReqId rq = alloc_request();
    MsgHeader h;
    h.tag = tag;
    h.proto = static_cast<std::uint32_t>(Proto::kEager);
    h.size = static_cast<std::uint32_t>(data.size());
    if (!data.empty() && nic_.faults().wire_armed()) {
      h.crc = resilience::crc32c(data.data(), data.size());
      h.flags |= kMsgFlagCrc;
    }
    charge_copy(data.size());  // staging copy-in
    std::byte* staging = slab_.data() + cfg_.bounce_count * slot_bytes_;
    std::memcpy(staging, &h, sizeof(h));
    if (!data.empty())
      std::memcpy(staging + sizeof(h), data.data(), data.size());
    OpRecord rec;
    rec.kind = OpKind::kEagerSend;
    rec.request = rq;
    const std::uint64_t wr_id = alloc_op(rec);
    const Status st = nic_.post_send(
        dst, fabric::LocalRef{staging, sizeof(h) + data.size(), slab_lkey_}, 0,
        wr_id, true);
    if (st != Status::Ok) {
      ops_[wr_id].in_use = false;
      free_ops_.push_back(wr_id);
      requests_.erase(rq);
      return st;
    }
    --credits_[dst];
    ++stats_.eager_sends;
    stats_.bytes_sent += data.size();
    return rq;
  }

  // Rendezvous: register the user buffer, advertise it, complete on FIN.
  auto mr = nic_.registry().register_memory(
      const_cast<void*>(static_cast<const void*>(data.data())), data.size(),
      fabric::kRemoteRead | fabric::kLocalRead);
  if (!mr.ok()) return mr.status();
  nic_.clock().add(cfg_.reg_cost_ns);
  ++stats_.registrations;
  const ReqId rq = alloc_request();
  MsgHeader h;
  h.tag = tag;
  h.proto = static_cast<std::uint32_t>(Proto::kRts);
  h.size = static_cast<std::uint32_t>(data.size());
  h.sender_req = rq;
  h.addr = mr.value().begin();
  h.rkey = mr.value().rkey;
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    // The registered source is advertised to the peer (RTS) and stays
    // read-pinned until its FIN completes the request.
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kAdvert;
    pi.initiator = rank();
    pi.target = dst;
    pi.local_addr = data.data();
    pi.local_len = data.size();
    pi.local_lkey = mr.value().lkey;
    pi.request = rq;
    pi.request_ns = check::RequestNs::kMsg;
    pi.advert_is_send = true;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  const Status st = send_ctrl(dst, h, {});
  if (st != Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    nic_.registry().deregister(mr.value().lkey);
    requests_.erase(rq);
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  rndv_sends_.emplace(rq, RndvSendState{mr.value().lkey, dst});
  ++stats_.rndv_sends;
  stats_.bytes_sent += data.size();
  return rq;
}

// ---- receive side ----------------------------------------------------------------

util::Result<ReqId> Engine::irecv(Rank src, Tag tag, std::span<std::byte> out) {
  const ReqId rq = alloc_request();
  charge_match();
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(src, tag, it->src, it->tag)) continue;
    Unexpected u = std::move(*it);
    unexpected_.erase(it);
    ++stats_.unexpected_hits;
    if (u.is_rts) {
      start_rndv_get(u.src, u, out, rq);
    } else {
      const std::size_t n = std::min(u.payload.size(), out.size());
      PHOTON_CHECK_HOOK(
          if (n > 0) nic_.checker().note_user_write(rank(), out.data(), n));
      if (n > 0) std::memcpy(out.data(), u.payload.data(), n);
      charge_copy(n);
      RecvInfo info{u.src, u.tag, n, u.payload.size() > out.size()};
      complete_request(rq, info.truncated ? Status::Truncated : Status::Ok,
                       info);
      ++stats_.recvs_completed;
    }
    return rq;
  }
  posted_.push_back({src, tag, out, rq});
  return rq;
}

void Engine::start_rndv_get(Rank src, const Unexpected& rts,
                            std::span<std::byte> out, ReqId rq) {
  const std::size_t n = std::min(rts.size, out.size());
  RecvInfo info{src, rts.tag, n, rts.size > out.size()};
  if (n == 0) {
    // Nothing to pull; FIN immediately.
    MsgHeader fin;
    fin.proto = static_cast<std::uint32_t>(Proto::kFin);
    fin.sender_req = rts.sender_req;
    send_ctrl(src, fin, {});
    complete_request(rq, info.truncated ? Status::Truncated : Status::Ok, info);
    ++stats_.recvs_completed;
    return;
  }
  auto mr = nic_.registry().register_memory(out.data(), n,
                                            fabric::kLocalWrite);
  if (!mr.ok()) {
    complete_request(rq, mr.status(), info);
    return;
  }
  nic_.clock().add(cfg_.reg_cost_ns);
  ++stats_.registrations;
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    // The sender's advertised window governs the remote side; this op pins
    // only its local destination until the get completes the request.
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kRndvGet;
    pi.initiator = rank();
    pi.target = src;
    pi.local_addr = out.data();
    pi.local_len = n;
    pi.local_lkey = mr.value().lkey;
    pi.remote_addr = rts.addr;
    pi.remote_len = n;
    pi.remote_rkey = rts.rkey;
    pi.request = rq;
    pi.request_ns = check::RequestNs::kMsg;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  OpRecord rec;
  rec.kind = OpKind::kRndvGet;
  rec.request = rq;
  rec.peer = src;
  rec.sender_req = rts.sender_req;
  rec.dereg_lkey = mr.value().lkey;
  rec.info = info;
  const std::uint64_t wr_id = alloc_op(rec);
  const Status st =
      nic_.post_get(src, fabric::LocalMutRef{out.data(), n, mr.value().lkey},
                    fabric::RemoteRef{rts.addr, rts.rkey}, wr_id);
  if (st != Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    ops_[wr_id].in_use = false;
    free_ops_.push_back(wr_id);
    nic_.registry().deregister(mr.value().lkey);
    complete_request(rq, st, info);
    return;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
}

void Engine::deliver_eager(const PostedRecv& pr, Rank src, Tag tag,
                           const std::byte* body, std::size_t len) {
  const std::size_t n = std::min(len, pr.out.size());
  PHOTON_CHECK_HOOK(
      if (n > 0) nic_.checker().note_user_write(rank(), pr.out.data(), n));
  if (n > 0) std::memcpy(pr.out.data(), body, n);
  charge_copy(n);
  RecvInfo info{src, tag, n, len > pr.out.size()};
  complete_request(pr.rq, info.truncated ? Status::Truncated : Status::Ok, info);
  ++stats_.recvs_completed;
  ++stats_.expected_hits;
}

// ---- incoming traffic ---------------------------------------------------------------

void Engine::handle_incoming(const fabric::Completion& c) {
  const std::size_t slot = static_cast<std::size_t>(c.wr_id);
  if (c.peer < nranks_ && c.epoch < nic_.rx_epoch(c.peer)) {
    // Pre-fence frame from a peer that has since reconnected. The NIC
    // already counted it as a stale-epoch drop but hands Recv completions
    // up so the bounce slot is not leaked: discard the payload unseen.
    repost_bounce(slot);
    return;
  }
  if (c.peer < nranks_ && c.epoch != rx_epoch_seen_[c.peer]) {
    // New channel incarnation: the peer restarted with full send credits,
    // so processed-since-ack counts from the dead epoch must not be acked.
    rx_epoch_seen_[c.peer] = c.epoch;
    since_ack_[c.peer] = 0;
  }
  const std::byte* p = slab_.data() + slot * slot_bytes_;
  MsgHeader h;
  std::memcpy(&h, p, sizeof(h));
  const std::byte* body = p + sizeof(h);
  const Rank src = c.peer;

  switch (static_cast<Proto>(h.proto)) {
    case Proto::kEager:
      handle_eager(src, h, body);
      ++since_ack_[src];
      maybe_ack_credits(src);
      break;
    case Proto::kRts:
      handle_rts(src, h);
      break;
    case Proto::kFin: {
      auto it = rndv_sends_.find(h.sender_req);
      if (it != rndv_sends_.end()) {
        // Complete (releasing the advert's shadow span) before tearing the
        // registration down, so the teardown sees a quiescent region.
        complete_request(h.sender_req, Status::Ok, RecvInfo{});
        nic_.registry().deregister(it->second.lkey);
        rndv_sends_.erase(it);
      } else {
        log::warn("msg: FIN for unknown rndv send ", h.sender_req);
      }
      break;
    }
    case Proto::kCreditAck:
      credits_[src] += static_cast<std::uint32_t>(h.aux);
      break;
    default:
      log::warn("msg: unknown proto ", h.proto);
      break;
  }
  repost_bounce(slot);
}

void Engine::handle_eager(Rank src, const MsgHeader& h, const std::byte* body) {
  if ((h.flags & kMsgFlagCrc) != 0 &&
      resilience::crc32c(body, h.size) != h.crc) {
    log::error("msg: eager payload CRC mismatch from rank ", src);
    return;  // drop: wire-level retransmission should have caught this
  }
  charge_match();
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(it->src, it->tag, src, h.tag)) continue;
    PostedRecv pr = *it;
    posted_.erase(it);
    deliver_eager(pr, src, h.tag, body, h.size);
    return;
  }
  Unexpected u;
  u.src = src;
  u.tag = h.tag;
  u.payload.assign(body, body + h.size);
  charge_copy(h.size);  // unexpected-queue buffering copy
  unexpected_.push_back(std::move(u));
}

void Engine::handle_rts(Rank src, const MsgHeader& h) {
  charge_match();
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(it->src, it->tag, src, h.tag)) continue;
    PostedRecv pr = *it;
    posted_.erase(it);
    Unexpected rts;
    rts.src = src;
    rts.tag = h.tag;
    rts.is_rts = true;
    rts.sender_req = h.sender_req;
    rts.addr = h.addr;
    rts.rkey = h.rkey;
    rts.size = h.size;
    start_rndv_get(src, rts, pr.out, pr.rq);
    ++stats_.expected_hits;
    return;
  }
  Unexpected u;
  u.src = src;
  u.tag = h.tag;
  u.is_rts = true;
  u.sender_req = h.sender_req;
  u.addr = h.addr;
  u.rkey = h.rkey;
  u.size = h.size;
  unexpected_.push_back(u);
}

void Engine::maybe_ack_credits(Rank src) {
  if (since_ack_[src] < cfg_.send_credits / 2) return;
  MsgHeader h;
  h.proto = static_cast<std::uint32_t>(Proto::kCreditAck);
  h.aux = since_ack_[src];
  if (send_ctrl(src, h, {}) == Status::Ok) {
    since_ack_[src] = 0;
    ++stats_.credit_acks;
  }
}

void Engine::handle_send_completion(const fabric::Completion& c) {
  if (c.wr_id >= ops_.size() || !ops_[c.wr_id].in_use) return;
  OpRecord rec = ops_[c.wr_id];
  ops_[c.wr_id].in_use = false;
  free_ops_.push_back(c.wr_id);

  switch (rec.kind) {
    case OpKind::kEagerSend:
      complete_request(rec.request, c.status, RecvInfo{});
      break;
    case OpKind::kRndvGet: {
      // Complete first: the request anchor releases the destination's shadow
      // pin before the registration is torn down.
      complete_request(rec.request,
                       c.status == Status::Ok && rec.info.truncated
                           ? Status::Truncated
                           : c.status,
                       rec.info);
      nic_.registry().deregister(rec.dereg_lkey);
      if (c.status == Status::Ok) {
        MsgHeader fin;
        fin.proto = static_cast<std::uint32_t>(Proto::kFin);
        fin.sender_req = rec.sender_req;
        send_ctrl(rec.peer, fin, {});
      }
      ++stats_.recvs_completed;
      break;
    }
    case OpKind::kCtrlSend:
      break;
  }
}

void Engine::sweep_peer_health() {
  const std::uint64_t gen = nic_.health().down_generation();
  if (gen == health_gen_seen_) return;
  health_gen_seen_ = gen;
  // Rendezvous sends whose FIN can never arrive: complete attributed and
  // release the pinned source registration.
  for (auto it = rndv_sends_.begin(); it != rndv_sends_.end();) {
    if (!nic_.peer_down(it->second.peer)) {
      ++it;
      continue;
    }
    complete_request(it->first, Status::PeerUnreachable, RecvInfo{});
    nic_.registry().deregister(it->second.lkey);
    it = rndv_sends_.erase(it);
  }
  // Posted receives pinned to a dead source would wait forever; wildcard
  // receives stay (another peer can still match them).
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (it->src == kAnySource || !nic_.peer_down(it->src)) {
      ++it;
      continue;
    }
    complete_request(it->rq, Status::PeerUnreachable, RecvInfo{});
    it = posted_.erase(it);
  }
}

bool Engine::ensure_peer(Rank dst) {
  const std::uint32_t ep = nic_.tx_epoch(dst);
  if (ep != tx_epoch_seen_[dst]) {
    // The NIC fenced a new connection toward dst: the dead channel's credit
    // debt (and any acks in flight for it) died with the old epoch.
    tx_epoch_seen_[dst] = ep;
    credits_[dst] = static_cast<std::uint32_t>(cfg_.send_credits);
  }
  if (!nic_.peer_down(dst)) return true;
  if (!nic_.config().auto_recover || !nic_.try_recover(dst)) return false;
  tx_epoch_seen_[dst] = nic_.tx_epoch(dst);
  credits_[dst] = static_cast<std::uint32_t>(cfg_.send_credits);
  return true;
}

void Engine::progress() {
  sweep_peer_health();
  fabric::Completion batch[64];
  std::size_t n = nic_.poll_send_batch(batch);
  for (std::size_t i = 0; i < n; ++i) {
    nic_.charge_consume();
    handle_send_completion(batch[i]);
  }
  n = nic_.poll_recv_batch(batch);
  for (std::size_t i = 0; i < n; ++i) {
    nic_.charge_consume();
    handle_incoming(batch[i]);
  }
}

void Engine::idle_wait_step(std::uint32_t& spins) {
  if (spins == 0) {
    ++spins;
    std::this_thread::yield();
    return;
  }
  if (progress_jump()) {
    spins = 0;
    return;
  }
  ++spins;
  if (spins >= 64)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  else
    std::this_thread::yield();
}

bool Engine::progress_jump() {
  const auto smin = nic_.send_cq().min_vtime();
  const auto rmin = nic_.recv_cq().min_vtime();
  fabric::Completion c;
  if (rmin && (!smin || *rmin <= *smin)) {
    if (nic_.jump_recv(c) == Status::Ok) {
      handle_incoming(c);
      return true;
    }
  }
  if (nic_.jump_send(c) == Status::Ok) {
    handle_send_completion(c);
    return true;
  }
  if (nic_.jump_recv(c) == Status::Ok) {
    handle_incoming(c);
    return true;
  }
  return false;
}

// ---- completion interface -------------------------------------------------------------

Status Engine::test(ReqId rq, bool& done, RecvInfo* info) {
  progress();
  auto it = requests_.find(rq);
  if (it == requests_.end()) return Status::BadArgument;
  done = it->second.done;
  if (!done) return Status::Ok;
  const Status st = it->second.status;
  if (info != nullptr) *info = it->second.info;
  requests_.erase(it);
  return st;
}

Status Engine::wait(ReqId rq, RecvInfo* info, std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    bool done = false;
    const Status st = test(rq, done, info);
    if (st != Status::Ok) return st;
    if (done) return Status::Ok;
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

std::optional<RecvInfo> Engine::iprobe(Rank src, Tag tag) {
  progress();
  charge_match();
  for (const Unexpected& u : unexpected_) {
    if (matches(src, tag, u.src, u.tag)) {
      RecvInfo info{u.src, u.tag, u.is_rts ? u.size : u.payload.size(), false};
      return info;
    }
  }
  return std::nullopt;
}

Status Engine::send(Rank dst, Tag tag, std::span<const std::byte> data,
                    std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    auto rq = isend(dst, tag, data);
    if (rq.ok()) return wait(rq.value(), nullptr, timeout_ns);
    if (!transient(rq.status())) return rq.status();
    if (dl.expired()) return Status::Retry;
    progress();
    idle_wait_step(spins);
  }
}

util::Result<RecvInfo> Engine::recv(Rank src, Tag tag, std::span<std::byte> out,
                                    std::uint64_t timeout_ns) {
  auto rq = irecv(src, tag, out);
  if (!rq.ok()) return rq.status();
  RecvInfo info;
  const Status st = wait(rq.value(), &info, timeout_ns);
  if (st == Status::Truncated) return info;  // partial delivery, info valid
  if (st != Status::Ok) return st;
  return info;
}

}  // namespace photon::msg
