#include "fabric/wire_model.hpp"

#include <algorithm>

namespace photon::fabric {

namespace {
/// Wire size of the control message that initiates a get or an atomic.
constexpr std::size_t kRequestBytes = 16;
/// Wire size of an atomic operand/response.
constexpr std::size_t kAtomicBytes = 8;
}  // namespace

WireModel::WireModel(const WireConfig& cfg, std::uint32_t nranks)
    : cfg_(cfg),
      nranks_(nranks),
      link_free_(static_cast<std::size_t>(nranks) * nranks),
      nic_free_(nranks) {
  reset();
}

void WireModel::reset() {
  for (auto& l : link_free_) l.store(0, std::memory_order_relaxed);
  for (auto& n : nic_free_) n.store(0, std::memory_order_relaxed);
}

std::uint64_t WireModel::reserve(std::atomic<std::uint64_t>& res,
                                 std::uint64_t ready, std::uint64_t busy) {
  std::uint64_t cur = res.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t start = std::max(ready, cur);
    if (res.compare_exchange_weak(cur, start + busy, std::memory_order_relaxed)) {
      return start;
    }
  }
}

WireModel::Times WireModel::transfer(Rank src, Rank dst, std::uint64_t ready,
                                     std::size_t bytes) {
  if (!cfg_.enabled) return {ready, ready};
  const std::uint64_t inj_start = reserve(nic_free_[src], ready, cfg_.gap_ns);
  const std::uint64_t busy = cfg_.gap_ns + byte_cost(bytes);
  const std::uint64_t start = reserve(link(src, dst), inj_start, busy);
  const std::uint64_t xmit_end = start + busy;
  return {xmit_end, xmit_end + cfg_.latency_ns};
}

WireModel::Times WireModel::get(Rank initiator, Rank target, std::uint64_t ready,
                                std::size_t bytes) {
  if (!cfg_.enabled) return {ready, ready};
  // Request phase: initiator -> target (small control message).
  const Times req = transfer(initiator, target, ready, kRequestBytes);
  // Data phase: target -> initiator, DMA'd by the target NIC with no target
  // CPU involvement; it occupies the target's outbound link.
  const std::uint64_t busy = cfg_.gap_ns + byte_cost(bytes);
  const std::uint64_t start = reserve(link(target, initiator), req.deliver, busy);
  const std::uint64_t data_end = start + busy;
  return {data_end + cfg_.latency_ns, req.deliver};
}

WireModel::Times WireModel::atomic_op(Rank initiator, Rank target,
                                      std::uint64_t ready) {
  if (!cfg_.enabled) return {ready, ready};
  const Times req = transfer(initiator, target, ready, kRequestBytes + kAtomicBytes);
  const std::uint64_t exec_done = req.deliver + cfg_.atomic_exec_ns;
  // The 8-byte response is charged latency + serialization but does NOT
  // reserve the return link: reserving it at a *future* time (exec_done)
  // would head-of-line-block the target's own present-time sends behind a
  // negligible-bandwidth response (bump-pointer reservations cannot
  // backfill), cascading ~L per op under bidirectional atomic streams.
  const std::uint64_t busy = cfg_.gap_ns + byte_cost(kAtomicBytes);
  return {exec_done + busy + cfg_.latency_ns, exec_done};
}

}  // namespace photon::fabric
