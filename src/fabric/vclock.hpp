// Per-rank virtual clock (simulated nanoseconds).
//
// All performance numbers in this reproduction are *virtual-time* deltas:
// the fabric stamps every completion with a delivery time computed from the
// LogGP wire model, and a rank consuming a completion advances its clock to
// that stamp. Explicit computation is charged with add(). This is the
// LogGOPSim approach and makes results deterministic on any host.
//
// A VClock is owned by exactly one rank thread; reads from other threads
// (e.g. the fabric stamping an op with the sender's ready time) happen on
// the owner thread itself, so plain loads/stores would suffice — the atomic
// is belt-and-braces for the harness's cross-thread final reporting.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace photon::fabric {

class VClock {
 public:
  std::uint64_t now() const noexcept { return now_.load(std::memory_order_relaxed); }

  /// Charge local work (CPU overhead, compute phases).
  void add(std::uint64_t ns) noexcept {
    now_.store(now_.load(std::memory_order_relaxed) + ns, std::memory_order_relaxed);
  }

  /// Jump forward to an event timestamp (never moves backwards).
  void advance_to(std::uint64_t t) noexcept {
    const std::uint64_t cur = now_.load(std::memory_order_relaxed);
    if (t > cur) now_.store(t, std::memory_order_relaxed);
  }

  void reset(std::uint64_t t = 0) noexcept { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> now_{0};
};

}  // namespace photon::fabric
