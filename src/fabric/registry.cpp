#include "fabric/registry.hpp"

#include <mutex>

#include "check/hooks.hpp"

namespace photon::fabric {

util::Result<MemoryRegion> MemoryRegistry::register_memory(void* addr,
                                                           std::size_t len,
                                                           std::uint32_t access) {
  if (addr == nullptr || len == 0) return Status::BadArgument;
  MemoryRegion mr;
  {
    std::unique_lock lock(mutex_);
    mr.addr = addr;
    mr.length = len;
    mr.lkey = next_key_++;
    mr.rkey = next_key_++;
    mr.access = access;
    by_lkey_.emplace(mr.lkey, mr);
    rkey_to_lkey_.emplace(mr.rkey, mr.lkey);
  }
  PHOTON_CHECK_HOOK(if (checker_ != nullptr) checker_->on_mr_register(
      owner_, addr, len, mr.lkey, mr.rkey));
  return mr;
}

Status MemoryRegistry::deregister(MrKey lkey) {
  // The checker hook runs before our lock (it takes only its own mutex, so
  // the ordering stays one-way); its shadow table decides whether this is a
  // double unregister or tears down a region with live spans.
  PHOTON_CHECK_HOOK(
      if (checker_ != nullptr) checker_->on_mr_deregister(owner_, lkey));
  std::unique_lock lock(mutex_);
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return Status::InvalidKey;
  rkey_to_lkey_.erase(it->second.rkey);
  by_lkey_.erase(it);
  return Status::Ok;
}

util::Result<MemoryRegion> MemoryRegistry::check_local(const void* addr,
                                                       std::size_t len, MrKey lkey,
                                                       std::uint32_t required) const {
  std::shared_lock lock(mutex_);
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return Status::InvalidKey;
  const MemoryRegion& mr = it->second;
  if (!mr.contains(reinterpret_cast<std::uint64_t>(addr), len))
    return Status::OutOfBounds;
  if (!mr.allows(required)) return Status::AccessDenied;
  return mr;
}

util::Result<MemoryRegion> MemoryRegistry::check_remote(std::uint64_t addr,
                                                        std::size_t len, MrKey rkey,
                                                        std::uint32_t required) const {
  std::shared_lock lock(mutex_);
  auto rit = rkey_to_lkey_.find(rkey);
  if (rit == rkey_to_lkey_.end()) return Status::InvalidKey;
  const MemoryRegion& mr = by_lkey_.at(rit->second);
  if (!mr.contains(addr, len)) return Status::OutOfBounds;
  if (!mr.allows(required)) return Status::AccessDenied;
  return mr;
}

std::size_t MemoryRegistry::count() const {
  std::shared_lock lock(mutex_);
  return by_lkey_.size();
}

}  // namespace photon::fabric
