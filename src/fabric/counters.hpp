// Per-NIC operation counters (relaxed atomics; read for reporting/tests).
#pragma once

#include <atomic>
#include <cstdint>

namespace photon::fabric {

struct Counters {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs_matched{0};
  std::atomic<std::uint64_t> atomics{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> completions_polled{0};
  std::atomic<std::uint64_t> rnr_buffered{0};   ///< sends parked awaiting a recv
  std::atomic<std::uint64_t> rnr_rejected{0};   ///< sends dropped: park area full
  std::atomic<std::uint64_t> post_errors{0};
  std::atomic<std::uint64_t> faults_injected{0};

  // Reliable-delivery / lossy-wire counters. Initiator-side unless noted.
  std::atomic<std::uint64_t> retransmits{0};       ///< extra wire attempts
  std::atomic<std::uint64_t> wire_drops{0};        ///< frames lost in flight
  std::atomic<std::uint64_t> wire_ack_drops{0};    ///< acks lost (data landed)
  std::atomic<std::uint64_t> wire_corruptions{0};  ///< frames damaged in flight
  std::atomic<std::uint64_t> wire_delays{0};       ///< delay spikes applied
  std::atomic<std::uint64_t> crc_rejects{0};       ///< target: frames CRC-rejected
  std::atomic<std::uint64_t> dup_suppressed{0};    ///< target: duplicates dropped
  std::atomic<std::uint64_t> link_down_stalls{0};  ///< attempts stalled: link down
  std::atomic<std::uint64_t> op_timeouts{0};       ///< ops failed: budget exhausted
  std::atomic<std::uint64_t> peer_unreachable{0};  ///< posts fast-failed: peer Down

  // Recovery (reconnect/fence) counters.
  std::atomic<std::uint64_t> recovery_probes{0};    ///< probes of a Down peer
  std::atomic<std::uint64_t> recoveries{0};         ///< fences completed: peer Up
  std::atomic<std::uint64_t> stale_epoch_drops{0};  ///< pre-fence frames dropped

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  /// Visit every counter as (name, value) — the single source of truth for
  /// exporters (telemetry fold, tables), so adding a field here and below is
  /// the whole job of exposing a new counter.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    auto emit = [&fn](const char* name, const std::atomic<std::uint64_t>& c) {
      fn(name, c.load(std::memory_order_relaxed));
    };
    emit("puts", puts);
    emit("gets", gets);
    emit("sends", sends);
    emit("recvs_matched", recvs_matched);
    emit("atomics", atomics);
    emit("bytes_out", bytes_out);
    emit("bytes_in", bytes_in);
    emit("completions_polled", completions_polled);
    emit("rnr_buffered", rnr_buffered);
    emit("rnr_rejected", rnr_rejected);
    emit("post_errors", post_errors);
    emit("faults_injected", faults_injected);
    emit("retransmits", retransmits);
    emit("wire_drops", wire_drops);
    emit("wire_ack_drops", wire_ack_drops);
    emit("wire_corruptions", wire_corruptions);
    emit("wire_delays", wire_delays);
    emit("crc_rejects", crc_rejects);
    emit("dup_suppressed", dup_suppressed);
    emit("link_down_stalls", link_down_stalls);
    emit("op_timeouts", op_timeouts);
    emit("peer_unreachable", peer_unreachable);
    emit("recovery_probes", recovery_probes);
    emit("recoveries", recoveries);
    emit("stale_epoch_drops", stale_epoch_drops);
  }
};

}  // namespace photon::fabric
