// Per-NIC operation counters (relaxed atomics; read for reporting/tests).
#pragma once

#include <atomic>
#include <cstdint>

namespace photon::fabric {

struct Counters {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs_matched{0};
  std::atomic<std::uint64_t> atomics{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> completions_polled{0};
  std::atomic<std::uint64_t> rnr_buffered{0};   ///< sends parked awaiting a recv
  std::atomic<std::uint64_t> rnr_rejected{0};   ///< sends dropped: park area full
  std::atomic<std::uint64_t> post_errors{0};
  std::atomic<std::uint64_t> faults_injected{0};

  // Reliable-delivery / lossy-wire counters. Initiator-side unless noted.
  std::atomic<std::uint64_t> retransmits{0};       ///< extra wire attempts
  std::atomic<std::uint64_t> wire_drops{0};        ///< frames lost in flight
  std::atomic<std::uint64_t> wire_ack_drops{0};    ///< acks lost (data landed)
  std::atomic<std::uint64_t> wire_corruptions{0};  ///< frames damaged in flight
  std::atomic<std::uint64_t> wire_delays{0};       ///< delay spikes applied
  std::atomic<std::uint64_t> crc_rejects{0};       ///< target: frames CRC-rejected
  std::atomic<std::uint64_t> dup_suppressed{0};    ///< target: duplicates dropped
  std::atomic<std::uint64_t> link_down_stalls{0};  ///< attempts stalled: link down
  std::atomic<std::uint64_t> op_timeouts{0};       ///< ops failed: budget exhausted
  std::atomic<std::uint64_t> peer_unreachable{0};  ///< posts fast-failed: peer Down

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
};

}  // namespace photon::fabric
