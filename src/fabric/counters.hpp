// Per-NIC operation counters (relaxed atomics; read for reporting/tests).
#pragma once

#include <atomic>
#include <cstdint>

namespace photon::fabric {

struct Counters {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs_matched{0};
  std::atomic<std::uint64_t> atomics{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> completions_polled{0};
  std::atomic<std::uint64_t> rnr_buffered{0};   ///< sends parked awaiting a recv
  std::atomic<std::uint64_t> rnr_rejected{0};   ///< sends dropped: park area full
  std::atomic<std::uint64_t> post_errors{0};
  std::atomic<std::uint64_t> faults_injected{0};

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
};

}  // namespace photon::fabric
