// The fabric: the set of NICs plus the shared wire model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/checker.hpp"
#include "fabric/nic.hpp"
#include "fabric/wire_model.hpp"
#include "telemetry/metrics.hpp"

namespace photon::fabric {

struct FabricConfig {
  std::uint32_t nranks = 2;
  WireConfig wire{};
  NicConfig nic{};
};

class Fabric {
 public:
  explicit Fabric(const FabricConfig& cfg);
  /// Folds NIC counters into the process metrics registry (when enabled)
  /// so bench/test snapshots taken after teardown still see fabric totals.
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::uint32_t size() const noexcept { return cfg_.nranks; }
  Nic& nic(Rank r) { return *nics_.at(r); }
  const Nic& nic(Rank r) const { return *nics_.at(r); }
  WireModel& wire() noexcept { return wire_; }
  const FabricConfig& config() const noexcept { return cfg_; }

  /// Shared shadow-state validator (one per fabric; hooks are compiled in
  /// only when the build enables PHOTON_CHECK).
  check::Checker& checker() noexcept { return checker_; }

  /// Scripted peer death. Models a fabric-manager notification: every NIC's
  /// health table latches `r` Down at once and all links toward it are cut
  /// permanently, so pending ops resolve at their deadlines and new posts
  /// fast-fail with Status::PeerUnreachable. Reversible only via revive():
  /// the latch holds until the link reopens AND a probe runs the
  /// epoch-fence (Nic::try_recover). Callable from any thread.
  void kill(Rank r);

  /// Reopen the links Fabric::kill(r) cut (clears the per-peer link windows
  /// toward `r` on every other NIC). Does NOT flip health state — each rank
  /// returns `r` to Up only by running the reconnect/fence protocol on its
  /// own thread (Nic::try_recover, or automatically on the next post when
  /// NicConfig::auto_recover is set). Callable from any thread.
  void revive(Rank r);

  /// Aggregate byte/op totals across all NICs (reporting).
  std::uint64_t total_bytes_moved() const;

  /// Sum of the reliable-delivery counters across all NICs (reporting).
  struct ResilienceTotals {
    std::uint64_t retransmits = 0;
    std::uint64_t crc_rejects = 0;
    std::uint64_t dup_suppressed = 0;
    std::uint64_t wire_faults_fired = 0;
    std::uint64_t op_timeouts = 0;
    std::uint64_t recoveries = 0;         ///< epoch fences completed
    std::uint64_t stale_epoch_drops = 0;  ///< pre-fence frames discarded
  };
  ResilienceTotals resilience_totals() const;

  /// Add every NIC counter (summed across ranks, "fabric.<counter>") plus
  /// the fault-injector firing total ("fabric.wire_faults_fired") into
  /// `reg`. No-op when the registry is disabled. Called automatically at
  /// destruction against MetricsRegistry::process().
  void fold_metrics(telemetry::MetricsRegistry& reg) const;

 private:
  /// PHOTON_WIRE_{DROP,CORRUPT,DELAY,DELAY_NS,SEED}: arm a seeded random
  /// lossy wire on every NIC at construction. Lets the CI soak leg run the
  /// unmodified test suites over a lossy fabric.
  void apply_env_wire_faults();

  FabricConfig cfg_;
  check::Checker checker_;  // before nics_: NICs bind to it at construction
  WireModel wire_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace photon::fabric
