// Bounded completion queue with virtual-time arrival semantics.
//
// Producers are remote rank threads delivering events; the consumer is the
// owning rank. Every completion carries a virtual delivery timestamp:
//   * poll_ready(now) — non-blocking; returns only events that have
//     "arrived" (vtime <= now). Polling never moves time forward.
//   * poll_min / wait_any — the consumer *waits*: the earliest pending
//     event is returned even if its vtime is in the future (the caller then
//     jumps its clock to the arrival time, LogGOPSim-style).
//
// Representation: a min-heap ordered by (vtime, push sequence) plus a
// ready-FIFO of already-arrived completions. The push sequence breaks
// vtime ties in global push order, which subsumes per-source FIFO (any one
// source pushes its events in nondecreasing vtime order). Arrived events
// are promoted heap -> ready-FIFO only when the FIFO is empty, so the FIFO
// is always ascending in (vtime, seq); the earliest pending event is then
// min(FIFO front, heap top) and every pop is O(log n) or better. The
// minimum pending vtime is mirrored into a relaxed atomic on every mutation
// so min_vtime() — called twice per progress-jump — is lock-free O(1), and
// push skips the condition-variable notify when no consumer is waiting.
//
// Overflow is sticky and fatal-ish, as on real hardware: the event is
// dropped, a counter bumps, and polls report QueueFull until
// clear_overflow() — the middleware sizes CQs so this only happens under
// deliberate fault tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "fabric/work.hpp"

namespace photon::fabric {

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t depth) : depth_(depth) {}

  /// Producer side. Returns false (and records overflow) when full.
  bool push(const Completion& c);

  /// Non-blocking: earliest event with vtime <= now (per-source order kept).
  /// NotFound when nothing has arrived yet; QueueFull after overflow.
  Status poll_ready(Completion& out, std::uint64_t now);

  /// Batched non-blocking drain: up to out.size() arrived events under one
  /// lock acquisition, written in ascending (vtime, push-order). Ok with
  /// n_out >= 1; NotFound when nothing has arrived; QueueFull after
  /// overflow (n_out is 0 in both failure cases).
  Status poll_ready_batch(std::span<Completion> out, std::size_t& n_out,
                          std::uint64_t now);

  /// Waiting consumer: earliest pending event regardless of its vtime
  /// (caller jumps its clock). NotFound when empty.
  Status poll_min(Completion& out);

  /// Earliest pending virtual arrival time, if any. Lock-free O(1): reads
  /// the cached minimum, exact whenever the queue is quiescent (producers
  /// may race it ahead by at most their in-flight push).
  std::optional<std::uint64_t> min_vtime() const;

  /// Block (real time) until any event is queued, then pop the earliest.
  Status wait_any(Completion& out, std::uint64_t timeout_ns);

  std::size_t size() const;
  std::uint64_t overflows() const;
  void clear_overflow();

 private:
  struct Entry {
    Completion c;
    std::uint64_t seq;
  };
  /// std::*_heap comparator ("less"): true when `a` arrives after `b`,
  /// yielding a min-heap on (vtime, push sequence).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.c.vtime != b.c.vtime) return a.c.vtime > b.c.vtime;
      return a.seq > b.seq;
    }
  };
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  // All four helpers require mutex_ held.
  bool empty_locked() const { return heap_.empty() && ready_.empty(); }
  void promote_arrived(std::uint64_t now);
  void refresh_cached_min();
  Completion pop_earliest();

  mutable std::mutex mutex_;
  std::condition_variable nonempty_;
  std::vector<Entry> heap_;       ///< min-heap on (vtime, seq)
  std::deque<Completion> ready_;  ///< arrived events, ascending (vtime, seq)
  std::size_t depth_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t overflows_ = 0;
  std::atomic<std::uint64_t> cached_min_{kNoMin};
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace photon::fabric
