// Bounded completion queue with virtual-time arrival semantics.
//
// Producers are remote rank threads delivering events; the consumer is the
// owning rank. Every completion carries a virtual delivery timestamp:
//   * poll_ready(now) — non-blocking; returns only events that have
//     "arrived" (vtime <= now). Polling never moves time forward.
//   * poll_min / wait_any — the consumer *waits*: the earliest pending
//     event is returned even if its vtime is in the future (the caller then
//     jumps its clock to the arrival time, LogGOPSim-style).
//
// Overflow is sticky and fatal-ish, as on real hardware: the event is
// dropped, a counter bumps, and polls report QueueFull until
// clear_overflow() — the middleware sizes CQs so this only happens under
// deliberate fault tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "fabric/work.hpp"

namespace photon::fabric {

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t depth) : depth_(depth) {}

  /// Producer side. Returns false (and records overflow) when full.
  bool push(const Completion& c);

  /// Non-blocking: first event with vtime <= now (per-source order kept).
  /// NotFound when nothing has arrived yet; QueueFull after overflow.
  Status poll_ready(Completion& out, std::uint64_t now);

  /// Waiting consumer: earliest pending event regardless of its vtime
  /// (caller jumps its clock). NotFound when empty.
  Status poll_min(Completion& out);

  /// Earliest pending virtual arrival time, if any.
  std::optional<std::uint64_t> min_vtime() const;

  /// Block (real time) until any event is queued, then pop the earliest.
  Status wait_any(Completion& out, std::uint64_t timeout_ns);

  std::size_t size() const;
  std::uint64_t overflows() const;
  void clear_overflow();

 private:
  mutable std::mutex mutex_;
  std::condition_variable nonempty_;
  std::deque<Completion> items_;
  std::size_t depth_;
  std::uint64_t overflows_ = 0;
};

}  // namespace photon::fabric
