// Per-NIC memory-registration table with lkey/rkey validation.
//
// Locking: registrations happen at setup time; lookups happen on every data
// path op and may be issued by *remote* rank threads (a put validates the
// target's rkey in the initiating thread). A shared_mutex keeps lookups
// concurrent and registration safe.
#pragma once

#include <shared_mutex>
#include <unordered_map>

#include "fabric/memory_region.hpp"
#include "util/expected.hpp"

namespace photon::check {
class Checker;
}  // namespace photon::check

namespace photon::fabric {

class MemoryRegistry {
 public:
  /// Attach the fabric's shadow-state validator; registrations and
  /// deregistrations are mirrored into its region table. `owner` is the rank
  /// this registry belongs to.
  void bind_checker(check::Checker* checker, Rank owner) {
    checker_ = checker;
    owner_ = owner;
  }

  /// Register [addr, addr+len). Keys are unique per registry and never
  /// reused. Zero-length registration is rejected (BadArgument).
  util::Result<MemoryRegion> register_memory(void* addr, std::size_t len,
                                             std::uint32_t access);

  /// Remove by lkey. InvalidKey if unknown.
  Status deregister(MrKey lkey);

  /// Validate a local access: lkey known, range in bounds, rights present.
  util::Result<MemoryRegion> check_local(const void* addr, std::size_t len,
                                         MrKey lkey, std::uint32_t required) const;

  /// Validate a remote access by rkey (used by the target side of put/get).
  util::Result<MemoryRegion> check_remote(std::uint64_t addr, std::size_t len,
                                          MrKey rkey, std::uint32_t required) const;

  std::size_t count() const;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<MrKey, MemoryRegion> by_lkey_;
  std::unordered_map<MrKey, MrKey> rkey_to_lkey_;
  MrKey next_key_ = 1;
  check::Checker* checker_ = nullptr;
  Rank owner_ = 0;
};

}  // namespace photon::fabric
