// Registered memory regions, mirroring ibv_mr.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fabric/types.hpp"

namespace photon::fabric {

struct MemoryRegion {
  void* addr = nullptr;
  std::size_t length = 0;
  MrKey lkey = kInvalidKey;
  MrKey rkey = kInvalidKey;
  std::uint32_t access = 0;

  std::uint64_t begin() const noexcept {
    return reinterpret_cast<std::uint64_t>(addr);
  }
  std::uint64_t end() const noexcept { return begin() + length; }

  /// True when [a, a+len) lies inside the region. Zero-length accesses are
  /// in-bounds if `a` is within [begin, end].
  bool contains(std::uint64_t a, std::size_t len) const noexcept {
    return a >= begin() && len <= length && a - begin() <= length - len;
  }

  bool allows(std::uint32_t required) const noexcept {
    return (access & required) == required;
  }
};

}  // namespace photon::fabric
