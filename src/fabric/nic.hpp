// Simulated RDMA NIC: one per rank.
//
// Semantics follow a verbs RC endpoint with an SRQ-style shared receive
// queue plus a uGNI-SMSG-style bounded mailbox for sends that arrive before
// a receive is posted:
//   * one-sided put/get/atomics validate the target's rkey, bounds, and
//     access rights; failures surface as error completions (the failure is
//     discovered "on the wire"), while *local* validation failures are
//     returned synchronously from post and produce no completion;
//   * per-peer in-flight caps model send-queue depth (posts return
//     QueueFull until completions are polled);
//   * puts of exactly 8 naturally-aligned bytes are performed with a
//     release store and may be observed by polling memory with an acquire
//     load (the collectives layer relies on this, as real RMA barriers do);
//     larger transfers are plain memcpy whose visibility is guaranteed only
//     through completion-queue consumption;
//   * posting charges the LogGP send overhead `o` to the rank's virtual
//     clock; consuming a completion charges the receive overhead and
//     advances the clock to the completion's delivery timestamp.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "fabric/completion_queue.hpp"
#include "fabric/counters.hpp"
#include "fabric/fault.hpp"
#include "fabric/registry.hpp"
#include "fabric/types.hpp"
#include "fabric/vclock.hpp"
#include "fabric/wire_model.hpp"
#include "fabric/work.hpp"

namespace photon::check {
class Checker;
}  // namespace photon::check

namespace photon::fabric {

class Fabric;

struct NicConfig {
  std::size_t cq_depth = 1u << 16;
  std::size_t sq_depth = 1024;           ///< per-peer outstanding completions
  std::size_t max_parked_sends = 4096;   ///< unexpected-send mailbox slots
  std::size_t max_inline = 256;          ///< max bytes for inline posts
};

class Nic {
 public:
  Nic(Fabric& fabric, Rank rank, const NicConfig& cfg);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  Rank rank() const noexcept { return rank_; }
  VClock& clock() noexcept { return clock_; }
  MemoryRegistry& registry() noexcept { return registry_; }
  Counters& counters() noexcept { return counters_; }
  FaultInjector& faults() noexcept { return faults_; }
  CompletionQueue& send_cq() noexcept { return send_cq_; }
  CompletionQueue& recv_cq() noexcept { return recv_cq_; }
  const NicConfig& config() const noexcept { return cfg_; }
  /// The fabric-wide shadow-state validator (defined in nic.cpp to avoid an
  /// include cycle with fabric.hpp).
  check::Checker& checker() noexcept;

  // ---- one-sided ----------------------------------------------------------
  Status post_put(Rank dst, LocalRef src, RemoteRef dst_ref, std::uint64_t wr_id,
                  bool signaled = true);
  Status post_put_imm(Rank dst, LocalRef src, RemoteRef dst_ref,
                      std::uint64_t imm, std::uint64_t wr_id,
                      bool signaled = true);
  /// Inline put: data is copied out of the caller's buffer at post time, so
  /// no lkey is needed and the buffer is immediately reusable (verbs
  /// IBV_SEND_INLINE). Length capped at NicConfig::max_inline.
  /// `chained`: this WR was chained onto the previous post in one doorbell
  /// (verbs WR lists), so the CPU posting overhead `o` is not re-charged.
  Status post_put_inline(Rank dst, const void* data, std::size_t len,
                         RemoteRef dst_ref, std::uint64_t imm,
                         std::uint64_t wr_id, bool signaled, bool with_imm,
                         bool chained = false);
  Status post_get(Rank target, LocalMutRef dst, RemoteRef src_ref,
                  std::uint64_t wr_id);
  Status post_fetch_add(Rank target, RemoteRef ref64, std::uint64_t add,
                        std::uint64_t wr_id);
  Status post_compare_swap(Rank target, RemoteRef ref64, std::uint64_t expected,
                           std::uint64_t desired, std::uint64_t wr_id);

  // ---- two-sided ----------------------------------------------------------
  Status post_send(Rank dst, LocalRef src, std::uint64_t imm,
                   std::uint64_t wr_id, bool signaled = true);
  Status post_recv(LocalMutRef buf, std::uint64_t wr_id);

  // ---- completion handling -------------------------------------------------
  /// Non-blocking poll: returns only completions that have *arrived* in
  /// virtual time (vtime <= clock). Polling never advances the clock past
  /// the present (beyond the per-completion consume overhead).
  Status poll_send(Completion& out);
  Status poll_recv(Completion& out);
  /// Batched non-blocking poll: drain up to out.size() arrived completions
  /// from the CQ in one lock round-trip (ascending virtual arrival order).
  /// Send-queue slots are released and poll counters bumped for every
  /// drained completion before returning; the per-completion consume
  /// (receive) overhead is NOT charged here — the caller must invoke
  /// charge_consume() once per completion, at the point it handles it, so
  /// the virtual clock interleaves exactly as on the single-poll path.
  /// Returns the number drained (0 when nothing arrived or after CQ
  /// overflow, matching poll_*'s NotFound/QueueFull).
  std::size_t poll_send_batch(std::span<Completion> out);
  std::size_t poll_recv_batch(std::span<Completion> out);
  /// Charge one completion's consume overhead to this rank's clock; pair
  /// with each completion obtained from poll_{send,recv}_batch.
  void charge_consume();
  /// Explicit idle-wait: pop the earliest pending completion even if its
  /// arrival is in the virtual future, jumping the clock to it
  /// (LogGOPSim semantics for a blocked rank). Non-blocking in real time.
  Status jump_send(Completion& out);
  Status jump_recv(Completion& out);
  /// Blocking variants (real-time timeout); jump semantics.
  Status wait_send(Completion& out, std::uint64_t timeout_ns);
  Status wait_recv(Completion& out, std::uint64_t timeout_ns);

  std::size_t in_flight(Rank peer) const;
  std::size_t posted_recvs() const;
  std::size_t parked_sends() const;

 private:
  friend class Fabric;

  struct PostedRecv {
    LocalMutRef buf;
    std::uint64_t wr_id;
    std::uint64_t posted_vtime;
  };
  struct ParkedSend {
    Rank src = 0;
    std::vector<std::byte> data;
    std::uint64_t imm = 0;
    std::uint64_t vtime = 0;
  };

  /// Common body for put variants. `is_inline` skips lkey validation (the
  /// payload is consumed at post time).
  Status put_common(Rank dst, LocalRef src, bool is_inline, RemoteRef dst_ref,
                    std::uint64_t imm, std::uint64_t wr_id, bool signaled,
                    bool with_imm, bool chained);

  std::uint64_t charge_or_reuse_overhead(bool chained);

  /// Deliver a send's payload to this NIC (runs on the *sender's* thread).
  void accept_send(Rank src, const void* data, std::size_t len,
                   std::uint64_t imm, std::uint64_t deliver_vtime);

  /// Write payload into validated target memory with the atomicity rules
  /// described in the header comment.
  static void copy_to_target(void* dst, const void* src, std::size_t len);
  static void copy_from_target(void* dst, const void* src, std::size_t len);

  bool acquire_slot(Rank peer);
  void release_slot(Rank peer);
  void complete_local(const Completion& c);
  void deliver_recv_completion(const PostedRecv& r, Rank src, std::size_t len,
                               std::uint64_t imm, std::uint64_t vtime);

  std::uint64_t charge_post_overhead();
  enum class ConsumeMode { kReady, kJump, kBlockJump };
  Status consume(CompletionQueue& cq, Completion& out, ConsumeMode mode,
                 std::uint64_t timeout_ns);
  std::size_t consume_batch(CompletionQueue& cq, std::span<Completion> out);

  Fabric& fabric_;
  Rank rank_;
  NicConfig cfg_;
  MemoryRegistry registry_;
  VClock clock_;
  CompletionQueue send_cq_;
  CompletionQueue recv_cq_;
  Counters counters_;
  FaultInjector faults_;

  mutable std::mutex rx_mutex_;
  std::deque<PostedRecv> posted_recvs_;
  std::deque<ParkedSend> parked_;

  std::vector<std::atomic<std::uint32_t>> in_flight_;
};

}  // namespace photon::fabric
