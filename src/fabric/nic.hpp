// Simulated RDMA NIC: one per rank.
//
// Semantics follow a verbs RC endpoint with an SRQ-style shared receive
// queue plus a uGNI-SMSG-style bounded mailbox for sends that arrive before
// a receive is posted:
//   * one-sided put/get/atomics validate the target's rkey, bounds, and
//     access rights; failures surface as error completions (the failure is
//     discovered "on the wire"), while *local* validation failures are
//     returned synchronously from post and produce no completion;
//   * per-peer in-flight caps model send-queue depth (posts return
//     QueueFull until completions are polled);
//   * puts of exactly 8 naturally-aligned bytes are performed with a
//     release store and may be observed by polling memory with an acquire
//     load (the collectives layer relies on this, as real RMA barriers do);
//     larger transfers are plain memcpy whose visibility is guaranteed only
//     through completion-queue consumption;
//   * posting charges the LogGP send overhead `o` to the rank's virtual
//     clock; consuming a completion charges the receive overhead and
//     advances the clock to the completion's delivery timestamp;
//   * every post that reaches the wire goes through a reliable-delivery
//     loop (transmit): when in-flight faults are armed, frames carry a
//     per-(src,dst) sequence number and a CRC32C over the payload; drops,
//     corrupted frames (CRC-rejected at the target), and scripted link-down
//     windows are masked by retransmission with exponential backoff charged
//     in virtual time, duplicates from lost acks are suppressed by the
//     receiver's sequence/atomic-result cache, and only retry-budget or
//     deadline exhaustion surfaces — as an error completion with
//     Status::Timeout. Repeated exhaustion (or Fabric::kill) drives the
//     peer-health state machine Up -> Suspect -> Down; posts toward a Down
//     peer fail fast with Status::PeerUnreachable, returned synchronously;
//   * Down is no longer terminal: try_recover() runs an epoch-fenced
//     reconnect (RECONNECT -> ACCEPT -> RESUME) once the link reopens.
//     Every frame and completion is stamped with the per-peer epoch; after
//     a fence both sides discard anything from an older epoch (counted as
//     stale_epoch_drops, never delivered) and the go-back-N sequence state
//     restarts at the new epoch's zero. Ops that fast-failed stay failed —
//     recovery is at-most-once-preserving — but new posts work again.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "fabric/completion_queue.hpp"
#include "fabric/counters.hpp"
#include "fabric/fault.hpp"
#include "fabric/registry.hpp"
#include "fabric/types.hpp"
#include "fabric/vclock.hpp"
#include "fabric/wire_model.hpp"
#include "fabric/work.hpp"
#include "resilience/peer_health.hpp"
#include "resilience/retry.hpp"

namespace photon::check {
class Checker;
}  // namespace photon::check

namespace photon::fabric {

class Fabric;

struct NicConfig {
  std::size_t cq_depth = 1u << 16;
  std::size_t sq_depth = 1024;           ///< per-peer outstanding completions
  std::size_t max_parked_sends = 4096;   ///< unexpected-send mailbox slots
  std::size_t max_inline = 256;          ///< max bytes for inline posts
  resilience::RetryPolicy retry{};       ///< reliable-delivery schedule
  resilience::PeerHealthConfig health{}; ///< Up/Suspect/Down thresholds
  /// Upper layers (Photon, msg::Engine) probe a Down peer with
  /// try_recover() before fast-failing a new post. Off by default: Down
  /// stays latched unless somebody explicitly probes (Communicator::rejoin,
  /// tests), preserving the PR-3 fail-fast contract.
  bool auto_recover = false;
  /// A probe may stall (in virtual time) up to this long waiting for a
  /// scripted link window to reopen; windows further out — and permanent
  /// cuts — abort the probe straight back to Down.
  std::uint64_t probe_stall_ns = 250'000'000;
};

class Nic {
 public:
  Nic(Fabric& fabric, Rank rank, const NicConfig& cfg);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  Rank rank() const noexcept { return rank_; }
  VClock& clock() noexcept { return clock_; }
  MemoryRegistry& registry() noexcept { return registry_; }
  Counters& counters() noexcept { return counters_; }
  FaultInjector& faults() noexcept { return faults_; }
  const FaultInjector& faults() const noexcept { return faults_; }
  CompletionQueue& send_cq() noexcept { return send_cq_; }
  CompletionQueue& recv_cq() noexcept { return recv_cq_; }
  const NicConfig& config() const noexcept { return cfg_; }
  /// The fabric-wide shadow-state validator (defined in nic.cpp to avoid an
  /// include cycle with fabric.hpp).
  check::Checker& checker() noexcept;

  /// Per-peer health as observed by this NIC (written by reliable delivery
  /// and by Fabric::kill; readable from any thread).
  resilience::PeerHealth& health() noexcept { return health_; }
  const resilience::PeerHealth& health() const noexcept { return health_; }
  /// True while `peer` is not usable (Down, or mid-probe/recovery); posts
  /// toward it return Status::PeerUnreachable synchronously.
  bool peer_down(Rank peer) const noexcept {
    return peer < health_.size() && !health_.usable(peer);
  }

  /// Epoch-fenced reconnect of this NIC's stream toward a Down `peer`:
  /// probe the link, stall (bounded by NicConfig::probe_stall_ns, charged
  /// in virtual time) until a scripted window reopens, then run the
  /// three-way fence — RECONNECT(epoch+1) -> ACCEPT(epoch+1, rx-frontier)
  /// -> RESUME — over the (possibly still lossy) wire. On success both
  /// sides agree on the new epoch, the go-back-N sequence state restarts
  /// at zero, the receiver's dup-suppression/atomic-result cache is
  /// discarded, and the peer returns to Up (bumping up_generation).
  /// Returns true when the peer is usable afterwards. Must be called from
  /// the owning rank's thread (it advances the rank's virtual clock and
  /// rewrites owner-thread stream state). A permanent cut — or a window
  /// beyond the stall budget — aborts back to Down without fencing.
  bool try_recover(Rank peer);

  /// Current epoch of this NIC's transmit stream toward `dst`.
  std::uint32_t tx_epoch(Rank dst) const noexcept {
    return dst < health_.size() ? health_.epoch(dst) : 0;
  }
  /// Epoch this NIC expects on frames arriving from `src` (the receive
  /// side of src's transmit stream). Completions from src stamped with an
  /// older epoch are stale.
  std::uint32_t rx_epoch(Rank src) const noexcept {
    return rx_frames_[src].epoch.load(std::memory_order_acquire);
  }

  // ---- one-sided ----------------------------------------------------------
  Status post_put(Rank dst, LocalRef src, RemoteRef dst_ref, std::uint64_t wr_id,
                  bool signaled = true);
  Status post_put_imm(Rank dst, LocalRef src, RemoteRef dst_ref,
                      std::uint64_t imm, std::uint64_t wr_id,
                      bool signaled = true);
  /// Inline put: data is copied out of the caller's buffer at post time, so
  /// no lkey is needed and the buffer is immediately reusable (verbs
  /// IBV_SEND_INLINE). Length capped at NicConfig::max_inline.
  /// `chained`: this WR was chained onto the previous post in one doorbell
  /// (verbs WR lists), so the CPU posting overhead `o` is not re-charged.
  Status post_put_inline(Rank dst, const void* data, std::size_t len,
                         RemoteRef dst_ref, std::uint64_t imm,
                         std::uint64_t wr_id, bool signaled, bool with_imm,
                         bool chained = false);
  Status post_get(Rank target, LocalMutRef dst, RemoteRef src_ref,
                  std::uint64_t wr_id);
  Status post_fetch_add(Rank target, RemoteRef ref64, std::uint64_t add,
                        std::uint64_t wr_id);
  Status post_compare_swap(Rank target, RemoteRef ref64, std::uint64_t expected,
                           std::uint64_t desired, std::uint64_t wr_id);

  // ---- two-sided ----------------------------------------------------------
  Status post_send(Rank dst, LocalRef src, std::uint64_t imm,
                   std::uint64_t wr_id, bool signaled = true);
  Status post_recv(LocalMutRef buf, std::uint64_t wr_id);

  // ---- completion handling -------------------------------------------------
  /// Non-blocking poll: returns only completions that have *arrived* in
  /// virtual time (vtime <= clock). Polling never advances the clock past
  /// the present (beyond the per-completion consume overhead).
  Status poll_send(Completion& out);
  Status poll_recv(Completion& out);
  /// Batched non-blocking poll: drain up to out.size() arrived completions
  /// from the CQ in one lock round-trip (ascending virtual arrival order).
  /// Send-queue slots are released and poll counters bumped for every
  /// drained completion before returning; the per-completion consume
  /// (receive) overhead is NOT charged here — the caller must invoke
  /// charge_consume() once per completion, at the point it handles it, so
  /// the virtual clock interleaves exactly as on the single-poll path.
  /// Returns the number drained (0 when nothing arrived or after CQ
  /// overflow, matching poll_*'s NotFound/QueueFull).
  std::size_t poll_send_batch(std::span<Completion> out);
  std::size_t poll_recv_batch(std::span<Completion> out);
  /// Charge one completion's consume overhead to this rank's clock; pair
  /// with each completion obtained from poll_{send,recv}_batch.
  void charge_consume();
  /// Explicit idle-wait: pop the earliest pending completion even if its
  /// arrival is in the virtual future, jumping the clock to it
  /// (LogGOPSim semantics for a blocked rank). Non-blocking in real time.
  Status jump_send(Completion& out);
  Status jump_recv(Completion& out);
  /// Blocking variants (real-time timeout); jump semantics.
  Status wait_send(Completion& out, std::uint64_t timeout_ns);
  Status wait_recv(Completion& out, std::uint64_t timeout_ns);

  std::size_t in_flight(Rank peer) const;
  std::size_t posted_recvs() const;
  std::size_t parked_sends() const;

  /// Forget the per-stream delivery high-water marks kept by reliable
  /// delivery; pairs with a fabric-wide virtual-time reset.
  void reset_stream_time() noexcept {
    for (auto& s : stream_done_) s = 0;
  }

 private:
  friend class Fabric;

  struct PostedRecv {
    LocalMutRef buf;
    std::uint64_t wr_id;
    std::uint64_t posted_vtime;
  };
  struct ParkedSend {
    Rank src = 0;
    std::vector<std::byte> data;
    std::uint64_t imm = 0;
    std::uint64_t vtime = 0;
    std::uint32_t epoch = 0;  ///< sender's stream epoch when parked
  };

  /// Common body for put variants. `is_inline` skips lkey validation (the
  /// payload is consumed at post time).
  Status put_common(Rank dst, LocalRef src, bool is_inline, RemoteRef dst_ref,
                    std::uint64_t imm, std::uint64_t wr_id, bool signaled,
                    bool with_imm, bool chained);

  std::uint64_t charge_or_reuse_overhead(bool chained);

  /// Result of one reliable wire transmission.
  struct WireTx {
    Status status = Status::Ok;   ///< Ok, or Timeout on budget exhaustion
    WireModel::Times times{};     ///< final-attempt timestamps (initiator view)
    std::uint64_t result = 0;     ///< atomic ops: value fetched at the target
    std::uint32_t attempts = 1;
  };

  /// Reliable delivery of one wire op: runs the retransmit state machine
  /// against the armed in-flight faults. `times_fn(ready)` charges wire
  /// resources for one transmission attempt and returns its LogGP times;
  /// `deliver(times)` applies the frame at the target (payload copy, remote
  /// event, atomic execution) and returns the op's result value. The frame
  /// is applied at most once unless `idempotent` (reads re-execute, verbs RC
  /// style); duplicates are suppressed by the receiver's sequence cache.
  /// `payload`/`len` feed the frame CRC that rejects corrupted deliveries.
  /// When no wire faults are armed this is a single attempt with zero
  /// bookkeeping beyond the sequence-counter bump.
  template <typename TimesFn, typename DeliverFn>
  WireTx transmit(OpCode op, Rank dst, std::uint64_t ready, const void* payload,
                  std::size_t len, bool idempotent, TimesFn&& times_fn,
                  DeliverFn&& deliver);

  /// Receiver side of transmit: consult the per-source sequence cache, apply
  /// the frame if it is new, and return the (possibly cached) result.
  template <typename DeliverFn>
  std::uint64_t deliver_frame(Nic& target, std::uint64_t seq,
                              const WireModel::Times& t, bool idempotent,
                              bool reliable, DeliverFn&& deliver);

  /// Deliver a send's payload to this NIC (runs on the *sender's* thread).
  void accept_send(Rank src, const void* data, std::size_t len,
                   std::uint64_t imm, std::uint64_t deliver_vtime,
                   std::uint32_t epoch);

  /// One leg of the fence handshake: a small control frame toward `dst`,
  /// retried with backoff over the armed wire faults. Advances `ready` to
  /// the leg's delivery time; false when the leg's budget is exhausted.
  bool fence_leg(Rank dst, std::uint64_t& ready);

  /// Post-path gate: false when the peer is usable (possibly after an
  /// auto_recover probe just fenced it back Up); true when the post must
  /// fast-fail with PeerUnreachable (counter already bumped).
  bool peer_unusable(Rank dst);

  /// Write payload into validated target memory with the atomicity rules
  /// described in the header comment.
  static void copy_to_target(void* dst, const void* src, std::size_t len);
  static void copy_from_target(void* dst, const void* src, std::size_t len);

  bool acquire_slot(Rank peer);
  void release_slot(Rank peer);
  /// Push to the send CQ, stamping the completion with the current epoch
  /// toward c.peer so stale (pre-fence) completions are identifiable.
  void complete_local(Completion c);
  void deliver_recv_completion(const PostedRecv& r, Rank src, std::size_t len,
                               std::uint64_t imm, std::uint64_t vtime,
                               std::uint32_t epoch);
  /// A recv-CQ completion from an epoch older than the peer's current one.
  /// Such frames count as stale_epoch_drops and are never delivered —
  /// except OpCode::Recv (two-sided bounce deliveries), which are counted
  /// but still surfaced so the msg engine can repost the buffer slot (the
  /// engine discards the payload itself).
  bool stale_epoch(const Completion& c) const noexcept {
    return c.peer < rx_frames_.size() &&
           c.epoch < rx_frames_[c.peer].epoch.load(std::memory_order_acquire);
  }

  std::uint64_t charge_post_overhead();
  enum class ConsumeMode { kReady, kJump, kBlockJump };
  Status consume(CompletionQueue& cq, Completion& out, ConsumeMode mode,
                 std::uint64_t timeout_ns);
  std::size_t consume_batch(CompletionQueue& cq, std::span<Completion> out);

  Fabric& fabric_;
  Rank rank_;
  NicConfig cfg_;
  MemoryRegistry registry_;
  VClock clock_;
  CompletionQueue send_cq_;
  CompletionQueue recv_cq_;
  Counters counters_;
  FaultInjector faults_;
  resilience::PeerHealth health_;

  /// Per-destination wire sequence numbers (owner-thread only; bumped on
  /// every post so arming faults mid-run keeps streams monotonic).
  std::vector<std::uint64_t> tx_seq_;
  /// Per-destination delivery high-water mark (owner-thread only). An RC
  /// stream delivers in order, so when retransmission pushes one op's
  /// delivery into the virtual future, every later frame on that stream
  /// queues behind it (go-back-N); without this clamp the receiver's
  /// vtime-ordered CQ would reorder ledger/eager slots across a retransmit.
  std::vector<std::uint64_t> stream_done_;
  /// Per-source receive state: last applied sequence number and the cached
  /// result of the last non-idempotent frame (the responder's atomic-result
  /// cache — a retransmitted FetchAdd/CompareSwap replays its old answer
  /// instead of re-executing). Written by the source rank's thread only;
  /// atomics for cross-thread readability.
  struct RxFrameState {
    std::atomic<std::uint64_t> last_seq{0};
    std::atomic<std::uint64_t> last_result{0};
    /// Epoch expected on frames from this source; bumped by the source's
    /// fence (still source-thread-written only).
    std::atomic<std::uint32_t> epoch{0};
  };
  std::vector<RxFrameState> rx_frames_;
  /// Scratch frame used to materialize in-flight corruption (owner thread).
  std::vector<std::byte> scratch_;

  mutable std::mutex rx_mutex_;
  std::deque<PostedRecv> posted_recvs_;
  std::deque<ParkedSend> parked_;

  std::vector<std::atomic<std::uint32_t>> in_flight_;
};

}  // namespace photon::fabric
