// Named wire calibrations standing in for the paper's backend abstraction.
//
// The real Photon selects a backend at init (InfiniBand verbs, Cray uGNI,
// or sockets); in this reproduction a backend is a LogGP calibration of the
// simulated fabric. Values are order-of-magnitude figures for the 2016-era
// hardware classes the paper targets:
//   * verbs  — FDR InfiniBand: ~1.3 us latency, ~6.6 GB/s, fast posting
//   * ugni   — Cray Aries/Gemini class: slightly lower latency, higher
//              injection rate, comparable bandwidth
//   * sockets — kernel TCP loopback-class: tens-of-microseconds latency,
//              high per-message CPU cost, ~1 GB/s
#pragma once

#include <stdexcept>
#include <string_view>

#include "fabric/wire_model.hpp"

namespace photon::fabric {

enum class Backend { kVerbs, kUgni, kSockets };

inline WireConfig backend_calibration(Backend b) {
  WireConfig w;
  switch (b) {
    case Backend::kVerbs:
      w.latency_ns = 1300;
      w.send_overhead_ns = 120;
      w.recv_overhead_ns = 90;
      w.gap_ns = 40;
      w.per_byte_ns = 0.15;
      w.atomic_exec_ns = 30;
      break;
    case Backend::kUgni:
      w.latency_ns = 1000;
      w.send_overhead_ns = 100;
      w.recv_overhead_ns = 80;
      w.gap_ns = 25;
      w.per_byte_ns = 0.12;
      w.atomic_exec_ns = 25;
      break;
    case Backend::kSockets:
      w.latency_ns = 25'000;
      w.send_overhead_ns = 2'000;
      w.recv_overhead_ns = 2'000;
      w.gap_ns = 500;
      w.per_byte_ns = 0.9;
      w.atomic_exec_ns = 200;  // emulated in software at the target
      break;
  }
  return w;
}

inline Backend backend_from_name(std::string_view name) {
  if (name == "verbs") return Backend::kVerbs;
  if (name == "ugni") return Backend::kUgni;
  if (name == "sockets") return Backend::kSockets;
  throw std::invalid_argument("unknown backend: " + std::string(name));
}

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kVerbs: return "verbs";
    case Backend::kUgni: return "ugni";
    case Backend::kSockets: return "sockets";
  }
  return "unknown";
}

}  // namespace photon::fabric
