// Deterministic fault injection for resilience tests.
//
// Two fault planes, both seeded and reproducible:
//
//   * Post-time faults (maybe_fail): the op is rejected before it leaves
//     the NIC and surfaces as an error completion with the armed status —
//     verbs "WQE flushed with error" semantics. Targetable by opcode, by
//     destination rank, and by nth matching post.
//   * In-flight wire faults (wire_fault / link_down_until): the op reaches
//     the wire and the *frame* is dropped, its ack is dropped, its payload
//     is corrupted, it is delayed, or the link itself is scripted down for
//     a virtual-time window. These are consumed by the NIC's reliable-
//     delivery loop (see nic.cpp): transient faults are masked by
//     retransmission and only budget exhaustion surfaces, as
//     Status::Timeout.
//
// maybe_fail()/wire_armed() sit on the per-post fast path of every NIC, so
// the common "nothing armed" case is answered by a relaxed atomic load
// without taking the mutex. The flags are updated only under the lock,
// always *after* the state they summarize, so a reader that sees true and
// then takes the lock observes consistent state. A reader that races an
// arm() and still sees false simply treats this post as unarmed — the same
// outcome as if the post had executed a moment earlier, which is an
// acceptable ordering for faults armed concurrently with traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "fabric/work.hpp"
#include "util/rng.hpp"

namespace photon::fabric {

/// Sentinel for a link that never comes back up.
inline constexpr std::uint64_t kLinkDownForever =
    std::numeric_limits<std::uint64_t>::max();

/// Kind of in-flight fault applied to one wire frame.
enum class WireFault : std::uint8_t {
  kNone = 0,
  kDrop,     ///< frame lost before the target; nothing applied
  kAckDrop,  ///< frame applied at the target but the ack is lost — the
             ///< initiator retransmits and the receiver must suppress the dup
  kCorrupt,  ///< payload damaged in flight; the target's CRC check rejects it
  kDelay,    ///< frame survives but arrives late by delay_ns
};

class FaultInjector {
 public:
  struct Fault {
    std::optional<OpCode> only_op;  ///< nullopt = any op
    Status status = Status::FaultInjected;
    std::optional<Rank> only_peer;  ///< nullopt = any destination
    std::uint32_t nth = 1;          ///< fire on the nth matching post (1 = next)
  };

  /// One-shot in-flight fault (plan entry for the wire plane).
  struct WireFaultSpec {
    WireFault kind = WireFault::kDrop;
    std::optional<OpCode> only_op;
    std::optional<Rank> only_peer;
    std::uint32_t nth = 1;            ///< fire on the nth matching frame
    std::uint64_t delay_ns = 20'000;  ///< used by kDelay
  };

  /// Seeded random lossy wire toward one peer (or all: only_peer = nullopt).
  struct WireRandomConfig {
    std::optional<Rank> only_peer;
    double drop_p = 0.0;      ///< frame loss probability
    double ack_drop_p = 0.0;  ///< ack-only loss (data lands; duplicate follows)
    double corrupt_p = 0.0;   ///< payload bit-corruption probability
    double delay_p = 0.0;     ///< delay-spike probability
    std::uint64_t delay_ns = 20'000;  ///< spike magnitude
    std::uint64_t seed = 1;
  };

  /// Scripted link flap: the link (to only_peer, or to everyone) is down for
  /// virtual times in [down_from, up_at).
  struct LinkWindow {
    std::optional<Rank> only_peer;
    std::uint64_t down_from = 0;
    std::uint64_t up_at = kLinkDownForever;
  };

  // ---- post-time plane ------------------------------------------------------

  /// Arm one fault; fires on the nth post matching its op/peer filters.
  void arm(Fault f) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (f.nth == 0) f.nth = 1;
    plan_.push_back(f);
    armed_.store(true, std::memory_order_release);
  }

  /// Enable random post-time failures with the given probability (0 disables).
  void set_random(double probability, std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    probability_ = probability;
    rng_ = util::Xoshiro256(seed);
    update_armed();
  }

  /// Consulted by the NIC on every post. Returns the status to fail with.
  /// The first armed plan entry whose filters match is counted down; random
  /// failures apply only when no plan entry matched.
  std::optional<Status> maybe_fail(OpCode op,
                                   std::optional<Rank> peer = std::nullopt) {
    if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = plan_.begin(); it != plan_.end(); ++it) {
      if (it->only_op && *it->only_op != op) continue;
      if (it->only_peer && (!peer || *it->only_peer != *peer)) continue;
      if (--it->nth > 0) return std::nullopt;  // counted, not yet due
      const Status s = it->status;
      plan_.erase(it);
      update_armed();
      fired_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    if (probability_ > 0.0 && rng_.unit() < probability_) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      return Status::FaultInjected;
    }
    return std::nullopt;
  }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Total faults fired so far, across both planes (post-time statuses and
  /// in-flight wire faults, including scripted link-down stalls).
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // ---- in-flight (wire) plane ----------------------------------------------

  /// Arm one in-flight fault; fires on the nth matching wire frame.
  void arm_wire(WireFaultSpec f) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (f.nth == 0) f.nth = 1;
    wire_plan_.push_back(f);
    update_wire_armed();
  }

  /// Enable a seeded random lossy wire. One config per peer filter: a second
  /// call with the same only_peer replaces the first.
  void set_wire_random(const WireRandomConfig& cfg) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& existing : wire_random_) {
      if (existing.cfg.only_peer == cfg.only_peer) {
        existing.cfg = cfg;
        existing.rng = util::Xoshiro256(cfg.seed);
        update_wire_armed();
        return;
      }
    }
    wire_random_.push_back({cfg, util::Xoshiro256(cfg.seed)});
    update_wire_armed();
  }

  /// Script a link-down window in virtual time.
  void set_link_window(LinkWindow w) {
    std::lock_guard<std::mutex> lock(mutex_);
    windows_.push_back(w);
    update_wire_armed();
  }

  /// Drop every link window scripted specifically toward `peer` (windows
  /// with only_peer unset cover all peers and are left in place). The
  /// recovery counterpart of set_link_window: Fabric::revive uses it to
  /// reopen the links Fabric::kill cut so probes can fence the peer back.
  void clear_link_windows(Rank peer) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(windows_,
                  [peer](const LinkWindow& w) { return w.only_peer == peer; });
    update_wire_armed();
  }

  /// Disarm the whole wire plane (random configs, plan, link windows).
  void clear_wire() {
    std::lock_guard<std::mutex> lock(mutex_);
    wire_plan_.clear();
    wire_random_.clear();
    windows_.clear();
    update_wire_armed();
  }

  /// True when any in-flight fault source is armed; the NIC takes its
  /// single-attempt fast path (no CRC, no dedup bookkeeping) when false.
  bool wire_armed() const {
    return wire_armed_.load(std::memory_order_relaxed);
  }

  /// Decision for one wire frame (one transmission attempt).
  struct WireDecision {
    WireFault kind = WireFault::kNone;
    std::uint64_t delay_ns = 0;
  };

  /// Consulted by the reliable-delivery loop once per attempt. Plan entries
  /// take precedence over the random configs (first matching config wins).
  WireDecision wire_fault(OpCode op, Rank peer) {
    if (!wire_armed_.load(std::memory_order_relaxed)) return {};
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = wire_plan_.begin(); it != wire_plan_.end(); ++it) {
      if (it->only_op && *it->only_op != op) continue;
      if (it->only_peer && *it->only_peer != peer) continue;
      if (--it->nth > 0) return {};
      const WireDecision d{it->kind, it->delay_ns};
      wire_plan_.erase(it);
      update_wire_armed();
      fired_.fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    for (auto& e : wire_random_) {
      if (e.cfg.only_peer && *e.cfg.only_peer != peer) continue;
      const double u = e.rng.unit();
      double edge = e.cfg.drop_p;
      WireDecision d;
      if (u < edge) {
        d.kind = WireFault::kDrop;
      } else if (u < (edge += e.cfg.ack_drop_p)) {
        d.kind = WireFault::kAckDrop;
      } else if (u < (edge += e.cfg.corrupt_p)) {
        d.kind = WireFault::kCorrupt;
      } else if (u < (edge += e.cfg.delay_p)) {
        d.kind = WireFault::kDelay;
        d.delay_ns = e.cfg.delay_ns;
      }
      if (d.kind != WireFault::kNone)
        fired_.fetch_add(1, std::memory_order_relaxed);
      return d;  // first matching config owns this peer's wire
    }
    return {};
  }

  /// If the link toward `peer` is scripted down at virtual time `vnow`,
  /// returns when it comes back up (kLinkDownForever for a permanent cut).
  std::optional<std::uint64_t> link_down_until(Rank peer,
                                               std::uint64_t vnow) const {
    if (!wire_armed_.load(std::memory_order_relaxed)) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<std::uint64_t> up;
    for (const auto& w : windows_) {
      if (w.only_peer && *w.only_peer != peer) continue;
      if (vnow >= w.down_from && vnow < w.up_at)
        up = std::max(up.value_or(0), w.up_at);
    }
    if (up) fired_.fetch_add(1, std::memory_order_relaxed);
    return up;
  }

  /// link_down_until without the fault-fired accounting: a pure query used
  /// by the recovery probe to decide whether a stall until the window
  /// reopens fits its budget (a probe observing the link is not a fault).
  std::optional<std::uint64_t> peek_link_down_until(Rank peer,
                                                    std::uint64_t vnow) const {
    if (!wire_armed_.load(std::memory_order_relaxed)) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<std::uint64_t> up;
    for (const auto& w : windows_) {
      if (w.only_peer && *w.only_peer != peer) continue;
      if (vnow >= w.down_from && vnow < w.up_at)
        up = std::max(up.value_or(0), w.up_at);
    }
    return up;
  }

 private:
  struct RandomEntry {
    WireRandomConfig cfg;
    util::Xoshiro256 rng{0};
  };

  void update_armed() {
    armed_.store(!plan_.empty() || probability_ > 0.0,
                 std::memory_order_release);
  }

  void update_wire_armed() {
    wire_armed_.store(
        !wire_plan_.empty() || !wire_random_.empty() || !windows_.empty(),
        std::memory_order_release);
  }

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> wire_armed_{false};
  mutable std::atomic<std::uint64_t> fired_{0};
  std::deque<Fault> plan_;
  double probability_ = 0.0;
  util::Xoshiro256 rng_{0};

  std::deque<WireFaultSpec> wire_plan_;
  std::vector<RandomEntry> wire_random_;
  std::vector<LinkWindow> windows_;
};

}  // namespace photon::fabric
