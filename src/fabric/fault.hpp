// Deterministic fault injection for resilience tests.
//
// Tests arm faults ahead of time; the NIC consults maybe_fail() at each
// post. Two mechanisms:
//   * a FIFO plan of (opcode filter, status) pairs consumed in order, and
//   * an optional uniform failure probability (seeded, reproducible).
#pragma once

#include <deque>
#include <mutex>
#include <optional>

#include "fabric/work.hpp"
#include "util/rng.hpp"

namespace photon::fabric {

class FaultInjector {
 public:
  struct Fault {
    std::optional<OpCode> only_op;  ///< nullopt = any op
    Status status = Status::FaultInjected;
  };

  /// Arm one fault; fires on the next matching post.
  void arm(Fault f) {
    std::lock_guard<std::mutex> lock(mutex_);
    plan_.push_back(f);
  }

  /// Enable random failures with the given probability (0 disables).
  void set_random(double probability, std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    probability_ = probability;
    rng_ = util::Xoshiro256(seed);
  }

  /// Consulted by the NIC on every post. Returns the status to fail with.
  std::optional<Status> maybe_fail(OpCode op) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.empty()) {
      const Fault& f = plan_.front();
      if (!f.only_op || *f.only_op == op) {
        const Status s = f.status;
        plan_.pop_front();
        return s;
      }
    }
    if (probability_ > 0.0 && rng_.unit() < probability_)
      return Status::FaultInjected;
    return std::nullopt;
  }

  bool armed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !plan_.empty() || probability_ > 0.0;
  }

 private:
  mutable std::mutex mutex_;
  std::deque<Fault> plan_;
  double probability_ = 0.0;
  util::Xoshiro256 rng_{0};
};

}  // namespace photon::fabric
