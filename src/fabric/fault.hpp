// Deterministic fault injection for resilience tests.
//
// Tests arm faults ahead of time; the NIC consults maybe_fail() at each
// post. Two mechanisms:
//   * a FIFO plan of (opcode filter, status) pairs consumed in order, and
//   * an optional uniform failure probability (seeded, reproducible).
//
// maybe_fail() sits on the per-post fast path of every NIC, so the common
// "nothing armed" case is answered by a relaxed atomic load without taking
// the mutex. The flag is updated only under the lock, always *after* the
// state it summarizes, so a reader that sees armed_ == true and then takes
// the lock observes consistent plan/probability state. A reader that races
// an arm() and still sees false simply treats this post as unarmed — the
// same outcome as if the post had executed a moment earlier, which is an
// acceptable ordering for faults armed concurrently with traffic.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>

#include "fabric/work.hpp"
#include "util/rng.hpp"

namespace photon::fabric {

class FaultInjector {
 public:
  struct Fault {
    std::optional<OpCode> only_op;  ///< nullopt = any op
    Status status = Status::FaultInjected;
  };

  /// Arm one fault; fires on the next matching post.
  void arm(Fault f) {
    std::lock_guard<std::mutex> lock(mutex_);
    plan_.push_back(f);
    armed_.store(true, std::memory_order_release);
  }

  /// Enable random failures with the given probability (0 disables).
  void set_random(double probability, std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    probability_ = probability;
    rng_ = util::Xoshiro256(seed);
    update_armed();
  }

  /// Consulted by the NIC on every post. Returns the status to fail with.
  std::optional<Status> maybe_fail(OpCode op) {
    if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.empty()) {
      const Fault& f = plan_.front();
      if (!f.only_op || *f.only_op == op) {
        const Status s = f.status;
        plan_.pop_front();
        update_armed();
        return s;
      }
    }
    if (probability_ > 0.0 && rng_.unit() < probability_)
      return Status::FaultInjected;
    return std::nullopt;
  }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  void update_armed() {
    armed_.store(!plan_.empty() || probability_ > 0.0,
                 std::memory_order_release);
  }

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::deque<Fault> plan_;
  double probability_ = 0.0;
  util::Xoshiro256 rng_{0};
};

}  // namespace photon::fabric
