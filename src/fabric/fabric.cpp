#include "fabric/fabric.hpp"

namespace photon::fabric {

Fabric::Fabric(const FabricConfig& cfg)
    : cfg_(cfg), wire_(cfg.wire, cfg.nranks) {
  nics_.reserve(cfg.nranks);
  for (Rank r = 0; r < cfg.nranks; ++r)
    nics_.push_back(std::make_unique<Nic>(*this, r, cfg.nic));
}

std::uint64_t Fabric::total_bytes_moved() const {
  std::uint64_t total = 0;
  for (const auto& n : nics_)
    total += n->counters().bytes_out.load(std::memory_order_relaxed);
  return total;
}

}  // namespace photon::fabric
