#include "fabric/fabric.hpp"

#include <cstdlib>
#include <string>

namespace photon::fabric {

namespace {

double env_double(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : 0.0;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

}  // namespace

Fabric::Fabric(const FabricConfig& cfg)
    : cfg_(cfg), wire_(cfg.wire, cfg.nranks) {
  nics_.reserve(cfg.nranks);
  for (Rank r = 0; r < cfg.nranks; ++r)
    nics_.push_back(std::make_unique<Nic>(*this, r, cfg.nic));
  apply_env_wire_faults();
}

Fabric::~Fabric() { fold_metrics(telemetry::MetricsRegistry::process()); }

void Fabric::fold_metrics(telemetry::MetricsRegistry& reg) const {
  if (!reg.enabled()) return;
  std::uint64_t faults_fired = 0;
  for (const auto& n : nics_) {
    n->counters().for_each([&reg](const char* name, std::uint64_t v) {
      if (v != 0) reg.counter(std::string("fabric.") + name).add(v);
    });
    faults_fired += n->faults().fired();
  }
  if (faults_fired != 0) reg.counter("fabric.wire_faults_fired").add(faults_fired);
}

void Fabric::apply_env_wire_faults() {
  const double loss = env_double("PHOTON_WIRE_DROP");
  const double corrupt = env_double("PHOTON_WIRE_CORRUPT");
  const double delay_p = env_double("PHOTON_WIRE_DELAY");
  if (loss <= 0.0 && corrupt <= 0.0 && delay_p <= 0.0) return;
  const std::uint64_t seed = env_u64("PHOTON_WIRE_SEED", 0x5EED);
  for (Rank r = 0; r < size(); ++r) {
    FaultInjector::WireRandomConfig w;
    // Half of the configured loss hits the frame, half hits only the ack —
    // the latter forces real duplicate-suppression traffic.
    w.drop_p = loss / 2;
    w.ack_drop_p = loss / 2;
    w.corrupt_p = corrupt;
    w.delay_p = delay_p;
    w.delay_ns = env_u64("PHOTON_WIRE_DELAY_NS", 20'000);
    w.seed = seed + r * 0x9E3779B9ULL;
    nics_[r]->faults().set_wire_random(w);
  }
}

void Fabric::kill(Rank r) {
  if (r >= size()) return;
  for (Rank i = 0; i < size(); ++i) {
    if (i == r) continue;
    nics_[i]->faults().set_link_window({r, 0, kLinkDownForever});
    nics_[i]->health().force_down(r);
  }
}

std::uint64_t Fabric::total_bytes_moved() const {
  std::uint64_t total = 0;
  for (const auto& n : nics_)
    total += n->counters().bytes_out.load(std::memory_order_relaxed);
  return total;
}

Fabric::ResilienceTotals Fabric::resilience_totals() const {
  ResilienceTotals t;
  for (const auto& n : nics_) {
    const Counters& c = n->counters();
    t.retransmits += c.retransmits.load(std::memory_order_relaxed);
    t.crc_rejects += c.crc_rejects.load(std::memory_order_relaxed);
    t.dup_suppressed += c.dup_suppressed.load(std::memory_order_relaxed);
    t.op_timeouts += c.op_timeouts.load(std::memory_order_relaxed);
    t.wire_faults_fired += n->faults().fired();
  }
  return t;
}

}  // namespace photon::fabric
