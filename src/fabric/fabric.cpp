#include "fabric/fabric.hpp"

#include <cstdlib>
#include <string>

namespace photon::fabric {

namespace {

double env_double(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : 0.0;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

}  // namespace

Fabric::Fabric(const FabricConfig& cfg)
    : cfg_(cfg), wire_(cfg.wire, cfg.nranks) {
  nics_.reserve(cfg.nranks);
  for (Rank r = 0; r < cfg.nranks; ++r)
    nics_.push_back(std::make_unique<Nic>(*this, r, cfg.nic));
  apply_env_wire_faults();
}

Fabric::~Fabric() { fold_metrics(telemetry::MetricsRegistry::process()); }

void Fabric::fold_metrics(telemetry::MetricsRegistry& reg) const {
  if (!reg.enabled()) return;
  std::uint64_t faults_fired = 0;
  std::uint64_t cq_overflows = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t stale_drops = 0;
  for (const auto& n : nics_) {
    n->counters().for_each([&reg](const char* name, std::uint64_t v) {
      if (v != 0) reg.counter(std::string("fabric.") + name).add(v);
    });
    faults_fired += n->faults().fired();
    cq_overflows += n->send_cq().overflows() + n->recv_cq().overflows();
    const Counters& c = n->counters();
    recoveries += c.recoveries.load(std::memory_order_relaxed);
    stale_drops += c.stale_epoch_drops.load(std::memory_order_relaxed);
  }
  if (faults_fired != 0) reg.counter("fabric.wire_faults_fired").add(faults_fired);
  // The sticky QueueFull state, visible in snapshots (satellite of the
  // recovery PR): nonzero means a CQ overflowed and poll returns QueueFull.
  if (cq_overflows != 0) reg.counter("fabric.cq.overflows").add(cq_overflows);
  // Recovery totals also surface under the resilience.* namespace used by
  // the bench reports, so BENCH_*.json and perf_gate see them directly.
  if (recoveries != 0) reg.counter("resilience.recoveries").add(recoveries);
  if (stale_drops != 0)
    reg.counter("resilience.stale_epoch_drops").add(stale_drops);
}

void Fabric::apply_env_wire_faults() {
  const double loss = env_double("PHOTON_WIRE_DROP");
  const double corrupt = env_double("PHOTON_WIRE_CORRUPT");
  const double delay_p = env_double("PHOTON_WIRE_DELAY");
  if (loss <= 0.0 && corrupt <= 0.0 && delay_p <= 0.0) return;
  const std::uint64_t seed = env_u64("PHOTON_WIRE_SEED", 0x5EED);
  for (Rank r = 0; r < size(); ++r) {
    FaultInjector::WireRandomConfig w;
    // Half of the configured loss hits the frame, half hits only the ack —
    // the latter forces real duplicate-suppression traffic.
    w.drop_p = loss / 2;
    w.ack_drop_p = loss / 2;
    w.corrupt_p = corrupt;
    w.delay_p = delay_p;
    w.delay_ns = env_u64("PHOTON_WIRE_DELAY_NS", 20'000);
    w.seed = seed + r * 0x9E3779B9ULL;
    nics_[r]->faults().set_wire_random(w);
  }
}

void Fabric::kill(Rank r) {
  if (r >= size()) return;
  for (Rank i = 0; i < size(); ++i) {
    if (i == r) continue;
    nics_[i]->faults().set_link_window({r, 0, kLinkDownForever});
    nics_[i]->health().force_down(r);
  }
}

void Fabric::revive(Rank r) {
  if (r >= size()) return;
  for (Rank i = 0; i < size(); ++i) {
    if (i == r) continue;
    nics_[i]->faults().clear_link_windows(r);
  }
}

std::uint64_t Fabric::total_bytes_moved() const {
  std::uint64_t total = 0;
  for (const auto& n : nics_)
    total += n->counters().bytes_out.load(std::memory_order_relaxed);
  return total;
}

Fabric::ResilienceTotals Fabric::resilience_totals() const {
  ResilienceTotals t;
  for (const auto& n : nics_) {
    const Counters& c = n->counters();
    t.retransmits += c.retransmits.load(std::memory_order_relaxed);
    t.crc_rejects += c.crc_rejects.load(std::memory_order_relaxed);
    t.dup_suppressed += c.dup_suppressed.load(std::memory_order_relaxed);
    t.op_timeouts += c.op_timeouts.load(std::memory_order_relaxed);
    t.wire_faults_fired += n->faults().fired();
    t.recoveries += c.recoveries.load(std::memory_order_relaxed);
    t.stale_epoch_drops += c.stale_epoch_drops.load(std::memory_order_relaxed);
  }
  return t;
}

}  // namespace photon::fabric
