#include "fabric/nic.hpp"

#include <atomic>
#include <cassert>
#include <cstring>

#include "fabric/fabric.hpp"

namespace photon::fabric {

namespace {
bool aligned8(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 7u) == 0;
}
}  // namespace

const char* opcode_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::Put: return "Put";
    case OpCode::PutImm: return "PutImm";
    case OpCode::Get: return "Get";
    case OpCode::Send: return "Send";
    case OpCode::Recv: return "Recv";
    case OpCode::FetchAdd: return "FetchAdd";
    case OpCode::CompareSwap: return "CompareSwap";
  }
  return "Unknown";
}

Nic::Nic(Fabric& fabric, Rank rank, const NicConfig& cfg)
    : fabric_(fabric),
      rank_(rank),
      cfg_(cfg),
      send_cq_(cfg.cq_depth),
      recv_cq_(cfg.cq_depth),
      in_flight_(fabric.size()) {
  registry_.bind_checker(&fabric.checker(), rank);
}

check::Checker& Nic::checker() noexcept { return fabric_.checker(); }

std::uint64_t Nic::charge_post_overhead() {
  clock_.add(fabric_.wire().send_overhead());
  return clock_.now();
}

std::uint64_t Nic::charge_or_reuse_overhead(bool chained) {
  if (!chained) clock_.add(fabric_.wire().send_overhead());
  return clock_.now();
}

bool Nic::acquire_slot(Rank peer) {
  auto& c = in_flight_[peer];
  std::uint32_t cur = c.load(std::memory_order_relaxed);
  while (cur < cfg_.sq_depth) {
    if (c.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
      return true;
  }
  return false;
}

void Nic::release_slot(Rank peer) {
  in_flight_[peer].fetch_sub(1, std::memory_order_relaxed);
}

void Nic::complete_local(const Completion& c) {
  if (!send_cq_.push(c)) {
    // CQ overflow is sticky inside the queue; nothing more to do here.
    counters_.bump(counters_.post_errors);
  }
}

void Nic::copy_to_target(void* dst, const void* src, std::size_t len) {
  if (len == 0) return;
  if (len == 8 && aligned8(dst) && aligned8(src)) {
    std::uint64_t v;
    std::memcpy(&v, src, 8);
    std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(dst))
        .store(v, std::memory_order_release);
    return;
  }
  std::memcpy(dst, src, len);
}

void Nic::copy_from_target(void* dst, const void* src, std::size_t len) {
  if (len == 0) return;
  if (len == 8 && aligned8(dst) && aligned8(src)) {
    const std::uint64_t v =
        std::atomic_ref<std::uint64_t>(
            *const_cast<std::uint64_t*>(static_cast<const std::uint64_t*>(src)))
            .load(std::memory_order_acquire);
    std::memcpy(dst, &v, 8);
    return;
  }
  std::memcpy(dst, src, len);
}

// ---- one-sided --------------------------------------------------------------

Status Nic::put_common(Rank dst, LocalRef src, bool is_inline, RemoteRef dst_ref,
                       std::uint64_t imm, std::uint64_t wr_id, bool signaled,
                       bool with_imm, bool chained) {
  if (dst >= fabric_.size()) return Status::BadArgument;
  const std::size_t len = src.len;
  const void* payload = src.addr;

  // Local (synchronous) validation.
  if (is_inline) {
    if (len > cfg_.max_inline) return Status::BadArgument;
    if (len > 0 && payload == nullptr) return Status::BadArgument;
  } else if (len > 0) {
    auto mr = registry_.check_local(src.addr, len, src.lkey, kLocalRead);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }

  if (!acquire_slot(dst)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }

  const OpCode op = with_imm ? OpCode::PutImm : OpCode::Put;
  if (auto fault = faults_.maybe_fail(op)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, op, *fault, dst, imm, static_cast<std::uint32_t>(len),
                    clock_.now(), 0});
    return Status::Ok;
  }

  const std::uint64_t ready = charge_or_reuse_overhead(chained);
  const WireModel::Times t = fabric_.wire().transfer(rank_, dst, ready, len);
  Nic& target = fabric_.nic(dst);

  // Remote validation ("on the wire" — failures become error completions).
  if (len > 0) {
    auto mr = target.registry_.check_remote(dst_ref.addr, len, dst_ref.rkey,
                                            kRemoteWrite);
    if (!mr.ok()) {
      complete_local({wr_id, op, mr.status(), dst, imm,
                      static_cast<std::uint32_t>(len), t.local_done, 0});
      return Status::Ok;
    }
    copy_to_target(reinterpret_cast<void*>(dst_ref.addr), payload, len);
  }

  counters_.bump(counters_.puts);
  counters_.bump(counters_.bytes_out, len);
  target.counters_.bump(target.counters_.bytes_in, len);

  if (with_imm) {
    target.recv_cq_.push({0, OpCode::PutImm, Status::Ok, rank_, imm,
                          static_cast<std::uint32_t>(len), t.deliver, 0});
  }

  if (signaled) {
    complete_local({wr_id, op, Status::Ok, dst, imm,
                    static_cast<std::uint32_t>(len), t.local_done, 0});
  } else {
    release_slot(dst);
  }
  return Status::Ok;
}

Status Nic::post_put(Rank dst, LocalRef src, RemoteRef dst_ref,
                     std::uint64_t wr_id, bool signaled) {
  return put_common(dst, src, false, dst_ref, 0, wr_id, signaled, false, false);
}

Status Nic::post_put_imm(Rank dst, LocalRef src, RemoteRef dst_ref,
                         std::uint64_t imm, std::uint64_t wr_id, bool signaled) {
  return put_common(dst, src, false, dst_ref, imm, wr_id, signaled, true, false);
}

Status Nic::post_put_inline(Rank dst, const void* data, std::size_t len,
                            RemoteRef dst_ref, std::uint64_t imm,
                            std::uint64_t wr_id, bool signaled, bool with_imm,
                            bool chained) {
  LocalRef src;
  src.addr = data;
  src.len = len;
  return put_common(dst, src, true, dst_ref, imm, wr_id, signaled, with_imm,
                    chained);
}

Status Nic::post_get(Rank target_rank, LocalMutRef dst, RemoteRef src_ref,
                     std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (dst.len == 0) return Status::BadArgument;
  auto local = registry_.check_local(dst.addr, dst.len, dst.lkey, kLocalWrite);
  if (!local.ok()) {
    counters_.bump(counters_.post_errors);
    return local.status();
  }
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::Get)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::Get, *fault, target_rank, 0,
                    static_cast<std::uint32_t>(dst.len), clock_.now(), 0});
    return Status::Ok;
  }

  const std::uint64_t ready = charge_post_overhead();
  const WireModel::Times t =
      fabric_.wire().get(rank_, target_rank, ready, dst.len);
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(src_ref.addr, dst.len, src_ref.rkey,
                                          kRemoteRead);
  if (!mr.ok()) {
    complete_local({wr_id, OpCode::Get, mr.status(), target_rank, 0,
                    static_cast<std::uint32_t>(dst.len), t.local_done, 0});
    return Status::Ok;
  }
  copy_from_target(dst.addr, reinterpret_cast<const void*>(src_ref.addr),
                   dst.len);
  counters_.bump(counters_.gets);
  counters_.bump(counters_.bytes_in, dst.len);
  target.counters_.bump(target.counters_.bytes_out, dst.len);
  complete_local({wr_id, OpCode::Get, Status::Ok, target_rank, 0,
                  static_cast<std::uint32_t>(dst.len), t.local_done, 0});
  return Status::Ok;
}

Status Nic::post_fetch_add(Rank target_rank, RemoteRef ref64, std::uint64_t add,
                           std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::FetchAdd)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::FetchAdd, *fault, target_rank, 0, 8,
                    clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  const WireModel::Times t = fabric_.wire().atomic_op(rank_, target_rank, ready);
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(ref64.addr, 8, ref64.rkey,
                                          kRemoteAtomic);
  Status st = mr.ok() ? Status::Ok : mr.status();
  std::uint64_t old = 0;
  if (st == Status::Ok && (ref64.addr & 7u) != 0) st = Status::Misaligned;
  if (st == Status::Ok) {
    old = std::atomic_ref<std::uint64_t>(
              *reinterpret_cast<std::uint64_t*>(ref64.addr))
              .fetch_add(add, std::memory_order_acq_rel);
    counters_.bump(counters_.atomics);
  }
  complete_local({wr_id, OpCode::FetchAdd, st, target_rank, 0, 8, t.local_done,
                  old});
  return Status::Ok;
}

Status Nic::post_compare_swap(Rank target_rank, RemoteRef ref64,
                              std::uint64_t expected, std::uint64_t desired,
                              std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::CompareSwap)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::CompareSwap, *fault, target_rank, 0, 8,
                    clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  const WireModel::Times t = fabric_.wire().atomic_op(rank_, target_rank, ready);
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(ref64.addr, 8, ref64.rkey,
                                          kRemoteAtomic);
  Status st = mr.ok() ? Status::Ok : mr.status();
  std::uint64_t old = expected;
  if (st == Status::Ok && (ref64.addr & 7u) != 0) st = Status::Misaligned;
  if (st == Status::Ok) {
    std::atomic_ref<std::uint64_t> cell(
        *reinterpret_cast<std::uint64_t*>(ref64.addr));
    // Report the value observed regardless of CAS success, as verbs does.
    std::uint64_t exp = expected;
    cell.compare_exchange_strong(exp, desired, std::memory_order_acq_rel,
                                 std::memory_order_acquire);
    old = exp;
    counters_.bump(counters_.atomics);
  }
  complete_local({wr_id, OpCode::CompareSwap, st, target_rank, 0, 8,
                  t.local_done, old});
  return Status::Ok;
}

// ---- two-sided ---------------------------------------------------------------

Status Nic::post_send(Rank dst, LocalRef src, std::uint64_t imm,
                      std::uint64_t wr_id, bool signaled) {
  if (dst >= fabric_.size()) return Status::BadArgument;
  if (src.len > 0) {
    auto mr = registry_.check_local(src.addr, src.len, src.lkey, kLocalRead);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }
  if (!acquire_slot(dst)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::Send)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::Send, *fault, dst, imm,
                    static_cast<std::uint32_t>(src.len), clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  const WireModel::Times t = fabric_.wire().transfer(rank_, dst, ready, src.len);
  Nic& target = fabric_.nic(dst);
  target.accept_send(rank_, src.addr, src.len, imm, t.deliver);
  counters_.bump(counters_.sends);
  counters_.bump(counters_.bytes_out, src.len);
  target.counters_.bump(target.counters_.bytes_in, src.len);
  if (signaled) {
    complete_local({wr_id, OpCode::Send, Status::Ok, dst, imm,
                    static_cast<std::uint32_t>(src.len), t.local_done, 0});
  } else {
    release_slot(dst);
  }
  return Status::Ok;
}

void Nic::accept_send(Rank src, const void* data, std::size_t len,
                      std::uint64_t imm, std::uint64_t deliver_vtime) {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  if (!posted_recvs_.empty()) {
    PostedRecv r = posted_recvs_.front();
    posted_recvs_.pop_front();
    deliver_recv_completion(r, src, len, imm, deliver_vtime);
    if (data != nullptr && len > 0)
      copy_to_target(r.buf.addr, data, std::min(len, r.buf.len));
    return;
  }
  if (parked_.size() >= cfg_.max_parked_sends) {
    counters_.bump(counters_.rnr_rejected);
    return;  // sender already saw local success; mailbox overflow drops —
             // the middleware's credit scheme must prevent this (tested).
  }
  ParkedSend p;
  p.src = src;
  p.imm = imm;
  p.vtime = deliver_vtime;
  p.data.resize(len);
  if (len > 0) std::memcpy(p.data.data(), data, len);
  parked_.push_back(std::move(p));
  counters_.bump(counters_.rnr_buffered);
}

void Nic::deliver_recv_completion(const PostedRecv& r, Rank src, std::size_t len,
                                  std::uint64_t imm, std::uint64_t vtime) {
  Completion c;
  c.wr_id = r.wr_id;
  c.op = OpCode::Recv;
  c.status = len > r.buf.len ? Status::Truncated : Status::Ok;
  c.peer = src;
  c.imm = imm;
  c.byte_len = static_cast<std::uint32_t>(std::min(len, r.buf.len));
  c.vtime = std::max(vtime, r.posted_vtime);
  counters_.bump(counters_.recvs_matched);
  recv_cq_.push(c);
}

Status Nic::post_recv(LocalMutRef buf, std::uint64_t wr_id) {
  // Posting a receive WQE costs the same CPU overhead as any other post.
  clock_.add(fabric_.wire().send_overhead());
  if (buf.len > 0) {
    auto mr = registry_.check_local(buf.addr, buf.len, buf.lkey, kLocalWrite);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }
  std::lock_guard<std::mutex> lock(rx_mutex_);
  if (!parked_.empty()) {
    ParkedSend p = std::move(parked_.front());
    parked_.pop_front();
    PostedRecv r{buf, wr_id, clock_.now()};
    deliver_recv_completion(r, p.src, p.data.size(), p.imm,
                            std::max(p.vtime, clock_.now()));
    if (!p.data.empty())
      copy_to_target(buf.addr, p.data.data(), std::min(p.data.size(), buf.len));
    return Status::Ok;
  }
  posted_recvs_.push_back({buf, wr_id, clock_.now()});
  return Status::Ok;
}

// ---- completion handling -------------------------------------------------------

Status Nic::consume(CompletionQueue& cq, Completion& out, ConsumeMode mode,
                    std::uint64_t timeout_ns) {
  Status st = Status::NotFound;
  switch (mode) {
    case ConsumeMode::kReady:
      st = cq.poll_ready(out, clock_.now());
      break;
    case ConsumeMode::kJump:
      st = cq.poll_min(out);
      break;
    case ConsumeMode::kBlockJump:
      st = cq.wait_any(out, timeout_ns);
      break;
  }
  if (st != Status::Ok) return st;
  clock_.advance_to(out.vtime);  // no-op for kReady
  clock_.add(fabric_.wire().recv_overhead());
  counters_.bump(counters_.completions_polled);
  if (&cq == &send_cq_) release_slot(out.peer);
  return Status::Ok;
}

std::size_t Nic::consume_batch(CompletionQueue& cq, std::span<Completion> out) {
  std::size_t n = 0;
  if (cq.poll_ready_batch(out, n, clock_.now()) != Status::Ok) return 0;
  // Arrived completions have vtime <= now, so the advance_to of the single
  // path is a no-op here; slot release and counters are order-insensitive
  // and applied up front. The clock charge stays with the caller (see
  // charge_consume) to keep per-completion interleaving identical.
  counters_.bump(counters_.completions_polled, n);
  if (&cq == &send_cq_) {
    for (std::size_t i = 0; i < n; ++i) release_slot(out[i].peer);
  }
  return n;
}

void Nic::charge_consume() { clock_.add(fabric_.wire().recv_overhead()); }

std::size_t Nic::poll_send_batch(std::span<Completion> out) {
  return consume_batch(send_cq_, out);
}
std::size_t Nic::poll_recv_batch(std::span<Completion> out) {
  return consume_batch(recv_cq_, out);
}

Status Nic::poll_send(Completion& out) {
  return consume(send_cq_, out, ConsumeMode::kReady, 0);
}
Status Nic::poll_recv(Completion& out) {
  return consume(recv_cq_, out, ConsumeMode::kReady, 0);
}
Status Nic::jump_send(Completion& out) {
  return consume(send_cq_, out, ConsumeMode::kJump, 0);
}
Status Nic::jump_recv(Completion& out) {
  return consume(recv_cq_, out, ConsumeMode::kJump, 0);
}
Status Nic::wait_send(Completion& out, std::uint64_t timeout_ns) {
  return consume(send_cq_, out, ConsumeMode::kBlockJump, timeout_ns);
}
Status Nic::wait_recv(Completion& out, std::uint64_t timeout_ns) {
  return consume(recv_cq_, out, ConsumeMode::kBlockJump, timeout_ns);
}

std::size_t Nic::in_flight(Rank peer) const {
  return in_flight_[peer].load(std::memory_order_relaxed);
}

std::size_t Nic::posted_recvs() const {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  return posted_recvs_.size();
}

std::size_t Nic::parked_sends() const {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  return parked_.size();
}

}  // namespace photon::fabric
