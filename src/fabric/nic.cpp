#include "fabric/nic.hpp"

#include <atomic>
#include <cassert>
#include <cstring>

#include "fabric/fabric.hpp"
#include "resilience/crc32c.hpp"
#include "telemetry/hooks.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace photon::fabric {

namespace {
bool aligned8(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 7u) == 0;
}
}  // namespace

const char* opcode_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::Put: return "Put";
    case OpCode::PutImm: return "PutImm";
    case OpCode::Get: return "Get";
    case OpCode::Send: return "Send";
    case OpCode::Recv: return "Recv";
    case OpCode::FetchAdd: return "FetchAdd";
    case OpCode::CompareSwap: return "CompareSwap";
  }
  return "Unknown";
}

Nic::Nic(Fabric& fabric, Rank rank, const NicConfig& cfg)
    : fabric_(fabric),
      rank_(rank),
      cfg_(cfg),
      send_cq_(cfg.cq_depth),
      recv_cq_(cfg.cq_depth),
      health_(fabric.size(), cfg.health),
      tx_seq_(fabric.size(), 0),
      stream_done_(fabric.size(), 0),
      rx_frames_(fabric.size()),
      in_flight_(fabric.size()) {
  registry_.bind_checker(&fabric.checker(), rank);
}

check::Checker& Nic::checker() noexcept { return fabric_.checker(); }

std::uint64_t Nic::charge_post_overhead() {
  clock_.add(fabric_.wire().send_overhead());
  return clock_.now();
}

std::uint64_t Nic::charge_or_reuse_overhead(bool chained) {
  if (!chained) clock_.add(fabric_.wire().send_overhead());
  return clock_.now();
}

bool Nic::acquire_slot(Rank peer) {
  auto& c = in_flight_[peer];
  std::uint32_t cur = c.load(std::memory_order_relaxed);
  while (cur < cfg_.sq_depth) {
    if (c.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
      return true;
  }
  return false;
}

void Nic::release_slot(Rank peer) {
  in_flight_[peer].fetch_sub(1, std::memory_order_relaxed);
}

void Nic::complete_local(Completion c) {
  // Stamp the current connection incarnation: after a fence, upper layers
  // use the epoch to tell completions of the dead connection from live ones.
  if (c.peer < health_.size()) c.epoch = health_.epoch(c.peer);
  if (!send_cq_.push(c)) {
    // CQ overflow is sticky inside the queue; nothing more to do here.
    counters_.bump(counters_.post_errors);
  }
}

void Nic::copy_to_target(void* dst, const void* src, std::size_t len) {
  if (len == 0) return;
  if (len == 8 && aligned8(dst) && aligned8(src)) {
    std::uint64_t v;
    std::memcpy(&v, src, 8);
    std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(dst))
        .store(v, std::memory_order_release);
    return;
  }
  std::memcpy(dst, src, len);
}

void Nic::copy_from_target(void* dst, const void* src, std::size_t len) {
  if (len == 0) return;
  if (len == 8 && aligned8(dst) && aligned8(src)) {
    const std::uint64_t v =
        std::atomic_ref<std::uint64_t>(
            *const_cast<std::uint64_t*>(static_cast<const std::uint64_t*>(src)))
            .load(std::memory_order_acquire);
    std::memcpy(dst, &v, 8);
    return;
  }
  std::memcpy(dst, src, len);
}

// ---- reliable delivery ------------------------------------------------------

template <typename DeliverFn>
std::uint64_t Nic::deliver_frame(Nic& target, std::uint64_t seq,
                                 const WireModel::Times& t, bool idempotent,
                                 bool reliable, DeliverFn&& deliver) {
  if (reliable && !idempotent) {
    RxFrameState& rx = target.rx_frames_[rank_];
    // Per-(src,dst) streams deliver in order (the sender thread is the only
    // writer), so seq <= last_seq identifies exactly the retransmitted
    // duplicates. Non-idempotent frames replay their cached result — the
    // responder's atomic-result cache in verbs terms.
    if (seq <= rx.last_seq.load(std::memory_order_relaxed)) {
      target.counters_.bump(target.counters_.dup_suppressed);
      return rx.last_result.load(std::memory_order_relaxed);
    }
    rx.last_seq.store(seq, std::memory_order_relaxed);
    const std::uint64_t res = deliver(t);
    rx.last_result.store(res, std::memory_order_relaxed);
    return res;
  }
  return deliver(t);  // reads re-execute at the target (verbs RC semantics)
}

template <typename TimesFn, typename DeliverFn>
Nic::WireTx Nic::transmit(OpCode op, Rank dst, std::uint64_t ready,
                          const void* payload, std::size_t len, bool idempotent,
                          TimesFn&& times_fn, DeliverFn&& deliver) {
  WireTx tx;
  const std::uint64_t seq = ++tx_seq_[dst];
  Nic& target = fabric_.nic(dst);
  if (!faults_.wire_armed()) {  // perfect wire: single attempt, no bookkeeping
    tx.times = times_fn(ready);
    tx.result = deliver_frame(target, seq, tx.times, idempotent,
                              /*reliable=*/false, deliver);
    return tx;
  }

  // RC streams deliver in order: this frame cannot overtake the previous
  // op's (possibly retransmission-delayed) delivery on the same stream.
  std::uint64_t& stream_done = stream_done_[dst];
  if (ready < stream_done) ready = stream_done;

  const resilience::RetryPolicy& rp = cfg_.retry;
  const std::uint64_t deadline =
      ready > kLinkDownForever - rp.deadline_ns ? kLinkDownForever
                                                : ready + rp.deadline_ns;
  const std::uint32_t frame_crc =
      (payload != nullptr && len > 0) ? resilience::crc32c(payload, len) : 0;
  const std::uint64_t stream_key = (static_cast<std::uint64_t>(rank_) << 40) ^
                                   (static_cast<std::uint64_t>(dst) << 20) ^
                                   seq;

  for (std::uint32_t attempt = 1;; ++attempt) {
    // Scripted link state: stall (in virtual time) until the link is up.
    if (auto up = faults_.link_down_until(dst, ready)) {
      counters_.bump(counters_.link_down_stalls);
      if (*up >= deadline) break;  // cannot come back within the budget
      ready = *up;
    }
    if (attempt > rp.max_attempts || ready >= deadline) break;

    const FaultInjector::WireDecision d = faults_.wire_fault(op, dst);
    WireModel::Times t = times_fn(ready);
    bool delivered = false;
    switch (d.kind) {
      case WireFault::kDelay:
        counters_.bump(counters_.wire_delays);
        t.local_done += d.delay_ns;
        t.deliver += d.delay_ns;
        [[fallthrough]];
      case WireFault::kNone:
      case WireFault::kAckDrop:
        delivered = true;
        break;
      case WireFault::kDrop:
        counters_.bump(counters_.wire_drops);
        break;
      case WireFault::kCorrupt: {
        counters_.bump(counters_.wire_corruptions);
        // Materialize the damage and run the receiver's CRC check for real:
        // flip one bit of a frame copy and verify against the header CRC.
        bool rejected = true;
        if (payload != nullptr && len > 0) {
          const auto* bytes = static_cast<const std::byte*>(payload);
          scratch_.assign(bytes, bytes + len);
          const std::size_t bit = static_cast<std::size_t>(
              util::SplitMix64(stream_key ^ attempt).next() % (len * 8));
          scratch_[bit / 8] ^=
              std::byte{static_cast<unsigned char>(1u << (bit % 8))};
          rejected = resilience::crc32c(scratch_.data(), len) != frame_crc;
        }
        if (!rejected) {
          // CRC32C catches all single-bit errors, so this is unreachable;
          // modeled anyway: an undetected corruption would be applied.
          delivered = true;
          break;
        }
        // Frame discarded at the target before any memory was touched; a
        // NACK rides back and the initiator retransmits.
        target.counters_.bump(target.counters_.crc_rejects);
        break;
      }
    }

    if (delivered) {
      // The frame reached the target; the receiver's sequence cache decides
      // whether it is fresh or a duplicate of an earlier applied attempt.
      const std::uint64_t res =
          deliver_frame(target, seq, t, idempotent, /*reliable=*/true, deliver);
      if (d.kind != WireFault::kAckDrop) {
        tx.times = t;
        tx.result = res;
        tx.attempts = attempt;
        if (stream_done < t.deliver) stream_done = t.deliver;
        health_.record_success(dst);
        return tx;
      }
      // Ack lost: the target applied the frame but the initiator cannot
      // know, so it backs off and retransmits; the duplicate is suppressed.
      counters_.bump(counters_.wire_ack_drops);
    }
    counters_.bump(counters_.retransmits);
    ready = t.local_done + rp.backoff_ns(attempt, stream_key);
  }

  // Retry budget or deadline exhausted (or a link cut outlasting it): the op
  // fails at its virtual-time deadline and counts against the peer's health.
  counters_.bump(counters_.op_timeouts);
  health_.record_failure(dst);
  tx.status = Status::Timeout;
  const std::uint64_t fail_at = deadline == kLinkDownForever ? ready : deadline;
  tx.times = WireModel::Times{fail_at, fail_at};
  if (stream_done < fail_at) stream_done = fail_at;
  return tx;
}

// ---- recovery (reconnect/fence) ---------------------------------------------

bool Nic::fence_leg(Rank dst, std::uint64_t& ready) {
  const resilience::RetryPolicy& rp = cfg_.retry;
  const std::uint64_t deadline =
      ready > kLinkDownForever - rp.deadline_ns ? kLinkDownForever
                                                : ready + rp.deadline_ns;
  constexpr std::size_t kFenceBytes = 16;  // epoch + rx-frontier control frame
  const std::uint64_t leg_key = (static_cast<std::uint64_t>(rank_) << 40) ^
                                (static_cast<std::uint64_t>(dst) << 20) ^ ready;
  for (std::uint32_t attempt = 1; attempt <= rp.max_attempts; ++attempt) {
    if (auto up = faults_.link_down_until(dst, ready)) {
      counters_.bump(counters_.link_down_stalls);
      if (*up >= deadline) return false;  // link cut again mid-fence
      ready = *up;
    }
    if (ready >= deadline) return false;
    const FaultInjector::WireDecision d = faults_.wire_fault(OpCode::Send, dst);
    WireModel::Times t = fabric_.wire().transfer(rank_, dst, ready, kFenceBytes);
    switch (d.kind) {
      case WireFault::kDelay:
        counters_.bump(counters_.wire_delays);
        t.local_done += d.delay_ns;
        t.deliver += d.delay_ns;
        [[fallthrough]];
      case WireFault::kNone:
      case WireFault::kAckDrop:  // the leg landed; a duplicate is harmless
        ready = t.deliver;
        return true;
      case WireFault::kDrop:
        counters_.bump(counters_.wire_drops);
        break;
      case WireFault::kCorrupt:
        // A damaged control frame is CRC-rejected like any data frame.
        counters_.bump(counters_.wire_corruptions);
        break;
    }
    counters_.bump(counters_.retransmits);
    ready = t.local_done + rp.backoff_ns(attempt, leg_key);
  }
  return false;
}

bool Nic::try_recover(Rank peer) {
  if (peer >= health_.size() || peer == rank_) return false;
  if (!health_.down(peer)) return health_.usable(peer);
  counters_.bump(counters_.recovery_probes);
  if (!health_.begin_probe(peer)) return false;  // another prober owns it

  std::uint64_t ready = clock_.now();
  if (auto up = faults_.peek_link_down_until(peer, ready)) {
    if (*up == kLinkDownForever || *up - ready > cfg_.probe_stall_ns) {
      health_.force_down(peer);  // unreachable beyond the probe budget
      return false;
    }
    // Stall (in virtual time) until the scripted window reopens.
    counters_.bump(counters_.link_down_stalls);
    ready = *up;
  }
  if (!health_.mark_recovering(peer)) {  // a force_down raced the probe
    health_.force_down(peer);
    return false;
  }

  // Three-way fence over the (possibly still lossy) wire:
  //   RECONNECT(epoch+1)            — propose the new incarnation;
  //   ACCEPT(epoch+1, rx-frontier)  — the peer echoes it with its receive
  //                                   frontier, agreeing on what the old
  //                                   epoch delivered;
  //   RESUME                        — commit: everything older is fenced.
  const std::uint64_t fence_start = ready;
  for (int leg = 0; leg < 3; ++leg) {
    if (!fence_leg(peer, ready)) {
      health_.force_down(peer);
      return false;
    }
  }

  Nic& target = fabric_.nic(peer);
  RxFrameState& rx = target.rx_frames_[rank_];
  const std::uint32_t new_epoch =
      std::max(health_.epoch(peer),
               rx.epoch.load(std::memory_order_acquire)) +
      1;
  // Discard the dead connection's stream state: go-back-N restarts at the
  // new epoch's zero and the dup-suppression/atomic-result cache forgets
  // the old incarnation. We are the designated writer of our slot in the
  // peer's rx table, so this stays single-writer.
  tx_seq_[peer] = 0;
  stream_done_[peer] = ready;
  rx.last_seq.store(0, std::memory_order_relaxed);
  rx.last_result.store(0, std::memory_order_relaxed);
  rx.epoch.store(new_epoch, std::memory_order_release);
  clock_.advance_to(ready);
  if (!health_.complete_recovery(peer, new_epoch)) {
    health_.force_down(peer);  // a concurrent kill aborted the fence
    return false;
  }
  counters_.bump(counters_.recoveries);
  PHOTON_TELEM_HOOK({
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::process();
    if (reg.enabled())
      reg.histogram("resilience.fence_rtts").record(ready - fence_start);
  });
  return true;
}

bool Nic::peer_unusable(Rank dst) {
  if (!peer_down(dst)) return false;
  if (cfg_.auto_recover && try_recover(dst)) return false;
  counters_.bump(counters_.peer_unreachable);
  return true;
}

// ---- one-sided --------------------------------------------------------------

Status Nic::put_common(Rank dst, LocalRef src, bool is_inline, RemoteRef dst_ref,
                       std::uint64_t imm, std::uint64_t wr_id, bool signaled,
                       bool with_imm, bool chained) {
  if (dst >= fabric_.size()) return Status::BadArgument;
  const std::size_t len = src.len;
  const void* payload = src.addr;

  // Local (synchronous) validation.
  if (is_inline) {
    if (len > cfg_.max_inline) return Status::BadArgument;
    if (len > 0 && payload == nullptr) return Status::BadArgument;
  } else if (len > 0) {
    auto mr = registry_.check_local(src.addr, len, src.lkey, kLocalRead);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }

  if (peer_unusable(dst)) return Status::PeerUnreachable;

  if (!acquire_slot(dst)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }

  const OpCode op = with_imm ? OpCode::PutImm : OpCode::Put;
  if (auto fault = faults_.maybe_fail(op, dst)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, op, *fault, dst, imm, static_cast<std::uint32_t>(len),
                    clock_.now(), 0});
    return Status::Ok;
  }

  const std::uint64_t ready = charge_or_reuse_overhead(chained);
  Nic& target = fabric_.nic(dst);

  // Remote validation ("on the wire" — failures become error completions).
  // A deterministic NACK: retransmission cannot help, so it is checked once,
  // outside the reliable-delivery loop.
  if (len > 0) {
    auto mr = target.registry_.check_remote(dst_ref.addr, len, dst_ref.rkey,
                                            kRemoteWrite);
    if (!mr.ok()) {
      const WireModel::Times t = fabric_.wire().transfer(rank_, dst, ready, len);
      complete_local({wr_id, op, mr.status(), dst, imm,
                      static_cast<std::uint32_t>(len), t.local_done, 0});
      return Status::Ok;
    }
  }

  const std::uint32_t ep = health_.epoch(dst);
  const WireTx tx = transmit(
      op, dst, ready, payload, len, /*idempotent=*/false,
      [&](std::uint64_t r) {
        return fabric_.wire().transfer(rank_, dst, r, len);
      },
      [&](const WireModel::Times& t) -> std::uint64_t {
        if (len > 0)
          copy_to_target(reinterpret_cast<void*>(dst_ref.addr), payload, len);
        target.counters_.bump(target.counters_.bytes_in, len);
        if (with_imm) {
          target.recv_cq_.push({0, OpCode::PutImm, Status::Ok, rank_, imm,
                                static_cast<std::uint32_t>(len), t.deliver, 0,
                                ep});
        }
        return 0;
      });
  if (tx.status != Status::Ok) {
    complete_local({wr_id, op, tx.status, dst, imm,
                    static_cast<std::uint32_t>(len), tx.times.local_done, 0});
    return Status::Ok;
  }

  counters_.bump(counters_.puts);
  counters_.bump(counters_.bytes_out, len);

  if (signaled) {
    complete_local({wr_id, op, Status::Ok, dst, imm,
                    static_cast<std::uint32_t>(len), tx.times.local_done, 0});
  } else {
    release_slot(dst);
  }
  return Status::Ok;
}

Status Nic::post_put(Rank dst, LocalRef src, RemoteRef dst_ref,
                     std::uint64_t wr_id, bool signaled) {
  return put_common(dst, src, false, dst_ref, 0, wr_id, signaled, false, false);
}

Status Nic::post_put_imm(Rank dst, LocalRef src, RemoteRef dst_ref,
                         std::uint64_t imm, std::uint64_t wr_id, bool signaled) {
  return put_common(dst, src, false, dst_ref, imm, wr_id, signaled, true, false);
}

Status Nic::post_put_inline(Rank dst, const void* data, std::size_t len,
                            RemoteRef dst_ref, std::uint64_t imm,
                            std::uint64_t wr_id, bool signaled, bool with_imm,
                            bool chained) {
  LocalRef src;
  src.addr = data;
  src.len = len;
  return put_common(dst, src, true, dst_ref, imm, wr_id, signaled, with_imm,
                    chained);
}

Status Nic::post_get(Rank target_rank, LocalMutRef dst, RemoteRef src_ref,
                     std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (dst.len == 0) return Status::BadArgument;
  auto local = registry_.check_local(dst.addr, dst.len, dst.lkey, kLocalWrite);
  if (!local.ok()) {
    counters_.bump(counters_.post_errors);
    return local.status();
  }
  if (peer_unusable(target_rank)) return Status::PeerUnreachable;
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::Get, target_rank)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::Get, *fault, target_rank, 0,
                    static_cast<std::uint32_t>(dst.len), clock_.now(), 0});
    return Status::Ok;
  }

  const std::uint64_t ready = charge_post_overhead();
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(src_ref.addr, dst.len, src_ref.rkey,
                                          kRemoteRead);
  if (!mr.ok()) {
    const WireModel::Times t =
        fabric_.wire().get(rank_, target_rank, ready, dst.len);
    complete_local({wr_id, OpCode::Get, mr.status(), target_rank, 0,
                    static_cast<std::uint32_t>(dst.len), t.local_done, 0});
    return Status::Ok;
  }
  // Reads are idempotent at the transport level: a retransmitted get simply
  // re-executes at the target and returns the data as of that attempt. The
  // CRC covers the response payload.
  const WireTx tx = transmit(
      OpCode::Get, target_rank, ready,
      reinterpret_cast<const void*>(src_ref.addr), dst.len,
      /*idempotent=*/true,
      [&](std::uint64_t r) {
        return fabric_.wire().get(rank_, target_rank, r, dst.len);
      },
      [&](const WireModel::Times&) -> std::uint64_t {
        copy_from_target(dst.addr, reinterpret_cast<const void*>(src_ref.addr),
                         dst.len);
        target.counters_.bump(target.counters_.bytes_out, dst.len);
        return 0;
      });
  if (tx.status != Status::Ok) {
    complete_local({wr_id, OpCode::Get, tx.status, target_rank, 0,
                    static_cast<std::uint32_t>(dst.len), tx.times.local_done,
                    0});
    return Status::Ok;
  }
  counters_.bump(counters_.gets);
  counters_.bump(counters_.bytes_in, dst.len);
  complete_local({wr_id, OpCode::Get, Status::Ok, target_rank, 0,
                  static_cast<std::uint32_t>(dst.len), tx.times.local_done, 0});
  return Status::Ok;
}

Status Nic::post_fetch_add(Rank target_rank, RemoteRef ref64, std::uint64_t add,
                           std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (peer_unusable(target_rank)) return Status::PeerUnreachable;
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::FetchAdd, target_rank)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::FetchAdd, *fault, target_rank, 0, 8,
                    clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(ref64.addr, 8, ref64.rkey,
                                          kRemoteAtomic);
  Status st = mr.ok() ? Status::Ok : mr.status();
  if (st == Status::Ok && (ref64.addr & 7u) != 0) st = Status::Misaligned;
  if (st != Status::Ok) {
    const WireModel::Times t =
        fabric_.wire().atomic_op(rank_, target_rank, ready);
    complete_local({wr_id, OpCode::FetchAdd, st, target_rank, 0, 8,
                    t.local_done, 0});
    return Status::Ok;
  }
  // Atomics are NOT idempotent: a retransmitted frame must replay the cached
  // result instead of re-executing (see deliver_frame).
  const WireTx tx = transmit(
      OpCode::FetchAdd, target_rank, ready, &add, sizeof(add),
      /*idempotent=*/false,
      [&](std::uint64_t r) {
        return fabric_.wire().atomic_op(rank_, target_rank, r);
      },
      [&](const WireModel::Times&) -> std::uint64_t {
        counters_.bump(counters_.atomics);
        return std::atomic_ref<std::uint64_t>(
                   *reinterpret_cast<std::uint64_t*>(ref64.addr))
            .fetch_add(add, std::memory_order_acq_rel);
      });
  complete_local({wr_id, OpCode::FetchAdd, tx.status, target_rank, 0, 8,
                  tx.times.local_done, tx.status == Status::Ok ? tx.result : 0});
  return Status::Ok;
}

Status Nic::post_compare_swap(Rank target_rank, RemoteRef ref64,
                              std::uint64_t expected, std::uint64_t desired,
                              std::uint64_t wr_id) {
  if (target_rank >= fabric_.size()) return Status::BadArgument;
  if (peer_unusable(target_rank)) return Status::PeerUnreachable;
  if (!acquire_slot(target_rank)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::CompareSwap, target_rank)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::CompareSwap, *fault, target_rank, 0, 8,
                    clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  Nic& target = fabric_.nic(target_rank);
  auto mr = target.registry_.check_remote(ref64.addr, 8, ref64.rkey,
                                          kRemoteAtomic);
  Status st = mr.ok() ? Status::Ok : mr.status();
  if (st == Status::Ok && (ref64.addr & 7u) != 0) st = Status::Misaligned;
  if (st != Status::Ok) {
    const WireModel::Times t =
        fabric_.wire().atomic_op(rank_, target_rank, ready);
    complete_local({wr_id, OpCode::CompareSwap, st, target_rank, 0, 8,
                    t.local_done, expected});
    return Status::Ok;
  }
  const std::uint64_t operands[2] = {expected, desired};
  const WireTx tx = transmit(
      OpCode::CompareSwap, target_rank, ready, operands, sizeof(operands),
      /*idempotent=*/false,
      [&](std::uint64_t r) {
        return fabric_.wire().atomic_op(rank_, target_rank, r);
      },
      [&](const WireModel::Times&) -> std::uint64_t {
        std::atomic_ref<std::uint64_t> cell(
            *reinterpret_cast<std::uint64_t*>(ref64.addr));
        // Report the value observed regardless of CAS success, as verbs does.
        std::uint64_t exp = expected;
        cell.compare_exchange_strong(exp, desired, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
        counters_.bump(counters_.atomics);
        return exp;
      });
  complete_local({wr_id, OpCode::CompareSwap, tx.status, target_rank, 0, 8,
                  tx.times.local_done,
                  tx.status == Status::Ok ? tx.result : expected});
  return Status::Ok;
}

// ---- two-sided ---------------------------------------------------------------

Status Nic::post_send(Rank dst, LocalRef src, std::uint64_t imm,
                      std::uint64_t wr_id, bool signaled) {
  if (dst >= fabric_.size()) return Status::BadArgument;
  if (src.len > 0) {
    auto mr = registry_.check_local(src.addr, src.len, src.lkey, kLocalRead);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }
  if (peer_unusable(dst)) return Status::PeerUnreachable;
  if (!acquire_slot(dst)) {
    counters_.bump(counters_.post_errors);
    return Status::QueueFull;
  }
  if (auto fault = faults_.maybe_fail(OpCode::Send, dst)) {
    counters_.bump(counters_.faults_injected);
    complete_local({wr_id, OpCode::Send, *fault, dst, imm,
                    static_cast<std::uint32_t>(src.len), clock_.now(), 0});
    return Status::Ok;
  }
  const std::uint64_t ready = charge_post_overhead();
  Nic& target = fabric_.nic(dst);
  const std::uint32_t ep = health_.epoch(dst);
  const WireTx tx = transmit(
      OpCode::Send, dst, ready, src.addr, src.len, /*idempotent=*/false,
      [&](std::uint64_t r) {
        return fabric_.wire().transfer(rank_, dst, r, src.len);
      },
      [&](const WireModel::Times& t) -> std::uint64_t {
        target.accept_send(rank_, src.addr, src.len, imm, t.deliver, ep);
        target.counters_.bump(target.counters_.bytes_in, src.len);
        return 0;
      });
  if (tx.status != Status::Ok) {
    complete_local({wr_id, OpCode::Send, tx.status, dst, imm,
                    static_cast<std::uint32_t>(src.len), tx.times.local_done,
                    0});
    return Status::Ok;
  }
  counters_.bump(counters_.sends);
  counters_.bump(counters_.bytes_out, src.len);
  if (signaled) {
    complete_local({wr_id, OpCode::Send, Status::Ok, dst, imm,
                    static_cast<std::uint32_t>(src.len), tx.times.local_done,
                    0});
  } else {
    release_slot(dst);
  }
  return Status::Ok;
}

void Nic::accept_send(Rank src, const void* data, std::size_t len,
                      std::uint64_t imm, std::uint64_t deliver_vtime,
                      std::uint32_t epoch) {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  if (!posted_recvs_.empty()) {
    PostedRecv r = posted_recvs_.front();
    posted_recvs_.pop_front();
    deliver_recv_completion(r, src, len, imm, deliver_vtime, epoch);
    if (data != nullptr && len > 0)
      copy_to_target(r.buf.addr, data, std::min(len, r.buf.len));
    return;
  }
  if (parked_.size() >= cfg_.max_parked_sends) {
    counters_.bump(counters_.rnr_rejected);
    return;  // sender already saw local success; mailbox overflow drops —
             // the middleware's credit scheme must prevent this (tested).
  }
  ParkedSend p;
  p.src = src;
  p.imm = imm;
  p.vtime = deliver_vtime;
  p.epoch = epoch;
  p.data.resize(len);
  if (len > 0) std::memcpy(p.data.data(), data, len);
  parked_.push_back(std::move(p));
  counters_.bump(counters_.rnr_buffered);
}

void Nic::deliver_recv_completion(const PostedRecv& r, Rank src, std::size_t len,
                                  std::uint64_t imm, std::uint64_t vtime,
                                  std::uint32_t epoch) {
  Completion c;
  c.wr_id = r.wr_id;
  c.op = OpCode::Recv;
  c.status = len > r.buf.len ? Status::Truncated : Status::Ok;
  c.peer = src;
  c.imm = imm;
  c.byte_len = static_cast<std::uint32_t>(std::min(len, r.buf.len));
  c.vtime = std::max(vtime, r.posted_vtime);
  c.epoch = epoch;
  counters_.bump(counters_.recvs_matched);
  recv_cq_.push(c);
}

Status Nic::post_recv(LocalMutRef buf, std::uint64_t wr_id) {
  // Posting a receive WQE costs the same CPU overhead as any other post.
  clock_.add(fabric_.wire().send_overhead());
  if (buf.len > 0) {
    auto mr = registry_.check_local(buf.addr, buf.len, buf.lkey, kLocalWrite);
    if (!mr.ok()) {
      counters_.bump(counters_.post_errors);
      return mr.status();
    }
  }
  std::lock_guard<std::mutex> lock(rx_mutex_);
  while (!parked_.empty()) {
    ParkedSend p = std::move(parked_.front());
    parked_.pop_front();
    // A send parked before its sender's connection was fenced belongs to
    // the dead epoch: discard it rather than match it against a new recv.
    if (p.epoch < rx_frames_[p.src].epoch.load(std::memory_order_acquire)) {
      counters_.bump(counters_.stale_epoch_drops);
      continue;
    }
    PostedRecv r{buf, wr_id, clock_.now()};
    deliver_recv_completion(r, p.src, p.data.size(), p.imm,
                            std::max(p.vtime, clock_.now()), p.epoch);
    if (!p.data.empty())
      copy_to_target(buf.addr, p.data.data(), std::min(p.data.size(), buf.len));
    return Status::Ok;
  }
  posted_recvs_.push_back({buf, wr_id, clock_.now()});
  return Status::Ok;
}

// ---- completion handling -------------------------------------------------------

Status Nic::consume(CompletionQueue& cq, Completion& out, ConsumeMode mode,
                    std::uint64_t timeout_ns) {
  for (;;) {
    Status st = Status::NotFound;
    switch (mode) {
      case ConsumeMode::kReady:
        st = cq.poll_ready(out, clock_.now());
        break;
      case ConsumeMode::kJump:
        st = cq.poll_min(out);
        break;
      case ConsumeMode::kBlockJump:
        st = cq.wait_any(out, timeout_ns);
        break;
    }
    if (st != Status::Ok) return st;
    if (&cq == &recv_cq_ && stale_epoch(out)) {
      // A remote event generated before the peer's connection was fenced:
      // the new epoch must never observe it. Counted, never delivered —
      // except Recv completions, handed up so the bounce slot is reposted.
      counters_.bump(counters_.stale_epoch_drops);
      if (out.op != OpCode::Recv) continue;
    }
    clock_.advance_to(out.vtime);  // no-op for kReady
    clock_.add(fabric_.wire().recv_overhead());
    counters_.bump(counters_.completions_polled);
    if (&cq == &send_cq_) release_slot(out.peer);
    return Status::Ok;
  }
}

std::size_t Nic::consume_batch(CompletionQueue& cq, std::span<Completion> out) {
  std::size_t n = 0;
  if (cq.poll_ready_batch(out, n, clock_.now()) != Status::Ok) return 0;
  if (&cq == &recv_cq_) {
    // Fence stale pre-recovery events out of the batch (see consume()).
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (stale_epoch(out[i])) {
        counters_.bump(counters_.stale_epoch_drops);
        if (out[i].op != OpCode::Recv) continue;
      }
      if (kept != i) out[kept] = out[i];
      ++kept;
    }
    n = kept;
  }
  // Arrived completions have vtime <= now, so the advance_to of the single
  // path is a no-op here; slot release and counters are order-insensitive
  // and applied up front. The clock charge stays with the caller (see
  // charge_consume) to keep per-completion interleaving identical.
  counters_.bump(counters_.completions_polled, n);
  if (&cq == &send_cq_) {
    for (std::size_t i = 0; i < n; ++i) release_slot(out[i].peer);
  }
  return n;
}

void Nic::charge_consume() { clock_.add(fabric_.wire().recv_overhead()); }

std::size_t Nic::poll_send_batch(std::span<Completion> out) {
  return consume_batch(send_cq_, out);
}
std::size_t Nic::poll_recv_batch(std::span<Completion> out) {
  return consume_batch(recv_cq_, out);
}

Status Nic::poll_send(Completion& out) {
  return consume(send_cq_, out, ConsumeMode::kReady, 0);
}
Status Nic::poll_recv(Completion& out) {
  return consume(recv_cq_, out, ConsumeMode::kReady, 0);
}
Status Nic::jump_send(Completion& out) {
  return consume(send_cq_, out, ConsumeMode::kJump, 0);
}
Status Nic::jump_recv(Completion& out) {
  return consume(recv_cq_, out, ConsumeMode::kJump, 0);
}
Status Nic::wait_send(Completion& out, std::uint64_t timeout_ns) {
  return consume(send_cq_, out, ConsumeMode::kBlockJump, timeout_ns);
}
Status Nic::wait_recv(Completion& out, std::uint64_t timeout_ns) {
  return consume(recv_cq_, out, ConsumeMode::kBlockJump, timeout_ns);
}

std::size_t Nic::in_flight(Rank peer) const {
  return in_flight_[peer].load(std::memory_order_relaxed);
}

std::size_t Nic::posted_recvs() const {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  return posted_recvs_.size();
}

std::size_t Nic::parked_sends() const {
  std::lock_guard<std::mutex> lock(rx_mutex_);
  return parked_.size();
}

}  // namespace photon::fabric
