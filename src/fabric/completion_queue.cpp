#include "fabric/completion_queue.hpp"

#include <algorithm>
#include <chrono>

namespace photon::fabric {

bool CompletionQueue::push(const Completion& c) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= depth_) {
      ++overflows_;
      return false;
    }
    items_.push_back(c);
  }
  nonempty_.notify_one();
  return true;
}

Status CompletionQueue::poll_ready(Completion& out, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (overflows_ != 0) return Status::QueueFull;
  // First element whose virtual arrival time has passed. Scanning front to
  // back preserves per-source ordering (a source's events are pushed in
  // vtime order).
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->vtime <= now) {
      out = *it;
      items_.erase(it);
      return Status::Ok;
    }
  }
  return Status::NotFound;
}

Status CompletionQueue::poll_min(Completion& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (overflows_ != 0) return Status::QueueFull;
  if (items_.empty()) return Status::NotFound;
  auto min_it = std::min_element(
      items_.begin(), items_.end(),
      [](const Completion& a, const Completion& b) { return a.vtime < b.vtime; });
  out = *min_it;
  items_.erase(min_it);
  return Status::Ok;
}

std::optional<std::uint64_t> CompletionQueue::min_vtime() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return std::nullopt;
  std::uint64_t m = ~std::uint64_t{0};
  for (const auto& c : items_) m = std::min(m, c.vtime);
  return m;
}

Status CompletionQueue::wait_any(Completion& out, std::uint64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!nonempty_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                          [&] { return !items_.empty() || overflows_ != 0; })) {
    return Status::NotFound;
  }
  if (overflows_ != 0) return Status::QueueFull;
  auto min_it = std::min_element(
      items_.begin(), items_.end(),
      [](const Completion& a, const Completion& b) { return a.vtime < b.vtime; });
  out = *min_it;
  items_.erase(min_it);
  return Status::Ok;
}

std::size_t CompletionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

std::uint64_t CompletionQueue::overflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflows_;
}

void CompletionQueue::clear_overflow() {
  std::lock_guard<std::mutex> lock(mutex_);
  overflows_ = 0;
}

}  // namespace photon::fabric
