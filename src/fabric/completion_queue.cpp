#include "fabric/completion_queue.hpp"

#include <algorithm>
#include <chrono>

namespace photon::fabric {

// Promotion only runs when the ready-FIFO is empty: a single promotion
// batch pops the heap in ascending (vtime, seq) order, so the FIFO stays
// sorted. Mixing batches could interleave a later, smaller-vtime push
// behind an earlier promotion and break poll_min's global ordering.
void CompletionQueue::promote_arrived(std::uint64_t now) {
  if (!ready_.empty()) return;
  while (!heap_.empty() && heap_.front().c.vtime <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    ready_.push_back(heap_.back().c);
    heap_.pop_back();
  }
}

void CompletionQueue::refresh_cached_min() {
  std::uint64_t m = kNoMin;
  if (!ready_.empty()) m = ready_.front().vtime;
  if (!heap_.empty()) m = std::min(m, heap_.front().c.vtime);
  cached_min_.store(m, std::memory_order_relaxed);
}

Completion CompletionQueue::pop_earliest() {
  // The FIFO is ascending, so its front is its minimum. On a vtime tie
  // with the heap top the FIFO entry was pushed earlier (an equal-vtime
  // heap entry pushed before promotion would itself have been promoted),
  // so the FIFO wins ties.
  if (!ready_.empty() &&
      (heap_.empty() || ready_.front().vtime <= heap_.front().c.vtime)) {
    Completion c = ready_.front();
    ready_.pop_front();
    return c;
  }
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Completion c = heap_.back().c;
  heap_.pop_back();
  return c;
}

bool CompletionQueue::push(const Completion& c) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.size() + ready_.size() >= depth_) {
      ++overflows_;
      return false;
    }
    heap_.push_back(Entry{c, next_seq_++});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    refresh_cached_min();
  }
  // The waiter registers under the mutex before sleeping, so a producer
  // that saw zero waiters either ran before the consumer locked (the
  // consumer's predicate then sees the new event) or after it woke.
  if (waiters_.load(std::memory_order_relaxed) != 0) nonempty_.notify_one();
  return true;
}

Status CompletionQueue::poll_ready(Completion& out, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (overflows_ != 0) return Status::QueueFull;
  promote_arrived(now);
  if (ready_.empty()) return Status::NotFound;
  out = ready_.front();
  ready_.pop_front();
  refresh_cached_min();
  return Status::Ok;
}

Status CompletionQueue::poll_ready_batch(std::span<Completion> out,
                                         std::size_t& n_out,
                                         std::uint64_t now) {
  n_out = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (overflows_ != 0) return Status::QueueFull;
  while (n_out < out.size()) {
    promote_arrived(now);
    if (ready_.empty()) break;
    const std::size_t take = std::min(out.size() - n_out, ready_.size());
    std::copy_n(ready_.begin(), take, out.begin() + n_out);
    ready_.erase(ready_.begin(), ready_.begin() + take);
    n_out += take;
  }
  refresh_cached_min();
  return n_out != 0 ? Status::Ok : Status::NotFound;
}

Status CompletionQueue::poll_min(Completion& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (overflows_ != 0) return Status::QueueFull;
  if (empty_locked()) return Status::NotFound;
  out = pop_earliest();
  refresh_cached_min();
  return Status::Ok;
}

std::optional<std::uint64_t> CompletionQueue::min_vtime() const {
  const std::uint64_t m = cached_min_.load(std::memory_order_relaxed);
  if (m == kNoMin) return std::nullopt;
  return m;
}

Status CompletionQueue::wait_any(Completion& out, std::uint64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  waiters_.fetch_add(1, std::memory_order_relaxed);
  const bool signaled =
      nonempty_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                         [&] { return !empty_locked() || overflows_ != 0; });
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (!signaled) return Status::NotFound;
  if (overflows_ != 0) return Status::QueueFull;
  out = pop_earliest();
  refresh_cached_min();
  return Status::Ok;
}

std::size_t CompletionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size() + ready_.size();
}

std::uint64_t CompletionQueue::overflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflows_;
}

void CompletionQueue::clear_overflow() {
  std::lock_guard<std::mutex> lock(mutex_);
  overflows_ = 0;
}

}  // namespace photon::fabric
