// Fundamental identifiers and references shared across the fabric.
#pragma once

#include <cstddef>
#include <cstdint>

namespace photon::fabric {

/// Process identity within one fabric (threads-as-ranks in this build).
using Rank = std::uint32_t;

/// Opaque memory-region key. Local and remote keys are distinct values that
/// resolve to the same region, mirroring verbs lkey/rkey.
using MrKey = std::uint64_t;

inline constexpr MrKey kInvalidKey = 0;

/// Reference to memory owned by the calling rank, named by its lkey.
struct LocalRef {
  const void* addr = nullptr;
  std::size_t len = 0;
  MrKey lkey = kInvalidKey;
};

/// Mutable variant for receive-side buffers.
struct LocalMutRef {
  void* addr = nullptr;
  std::size_t len = 0;
  MrKey lkey = kInvalidKey;
};

/// Reference to memory on a remote rank, named by its rkey. Addresses are
/// raw virtual addresses as exchanged out-of-band (the real Photon exchanges
/// {addr, rkey, size} descriptors the same way).
struct RemoteRef {
  std::uint64_t addr = 0;
  MrKey rkey = kInvalidKey;
};

/// Memory-region access rights (bitmask).
enum Access : std::uint32_t {
  kLocalRead = 1u << 0,
  kLocalWrite = 1u << 1,
  kRemoteRead = 1u << 2,
  kRemoteWrite = 1u << 3,
  kRemoteAtomic = 1u << 4,
  kAccessAll = kLocalRead | kLocalWrite | kRemoteRead | kRemoteWrite | kRemoteAtomic,
};

}  // namespace photon::fabric
