// Work-request and completion descriptors (mirrors ibv_send_wr / ibv_wc).
#pragma once

#include <cstdint>

#include "fabric/types.hpp"
#include "util/status.hpp"

namespace photon::fabric {

enum class OpCode : std::uint8_t {
  Put,          // RDMA write, no target event
  PutImm,       // RDMA write with immediate: raises a target recv-CQ event
  Get,          // RDMA read
  Send,         // two-sided send (consumes a posted receive at the target)
  Recv,         // completion code for a matched receive
  FetchAdd,     // remote 64-bit fetch-and-add
  CompareSwap,  // remote 64-bit compare-and-swap
};

const char* opcode_name(OpCode op) noexcept;

struct Completion {
  std::uint64_t wr_id = 0;   ///< id chosen by whoever posted the WR
  OpCode op = OpCode::Put;
  Status status = Status::Ok;
  Rank peer = 0;             ///< the other end of the operation
  std::uint64_t imm = 0;     ///< immediate data (PutImm/Send); 64-bit here
                             ///< (verbs carries 32, uGNI more; documented)
  std::uint32_t byte_len = 0;
  std::uint64_t vtime = 0;   ///< virtual delivery timestamp
  std::uint64_t result = 0;  ///< prior value for FetchAdd/CompareSwap
  std::uint32_t epoch = 0;   ///< connection incarnation the op ran under;
                             ///< completions older than the peer's current
                             ///< epoch are stale (see Nic::try_recover)
};

}  // namespace photon::fabric
