// LogGP-style virtual wire-time model.
//
// Parameters (all virtual nanoseconds):
//   L  latency_ns        one-way wire latency per message
//   o  send_overhead_ns  CPU cost to post a work request (charged to vclock)
//   or recv_overhead_ns  CPU cost to consume a completion
//   g  gap_ns            per-message serialization at the NIC injection port
//   G  per_byte_ns       per-byte serialization on the link
//
// For a put/send of n bytes from s to d with the sender ready at t:
//   start      = max(t, nic_free[s], link_free[s->d])
//   xmit_end   = start + g + n*G
//   nic_free'  = start + g
//   link_free' = xmit_end
//   local_done = xmit_end            (source buffer reusable)
//   deliver    = xmit_end + L        (payload fully landed at target)
//
// A get is a small request s->d followed by a data transfer d->s; a remote
// atomic is a small request plus a small response (≈ full round trip).
//
// Defaults approximate a FDR InfiniBand-class fabric: ~1.5 us end-to-end
// small-message latency, ~6.6 GB/s per link, ~25 M msgs/s injection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "fabric/types.hpp"

namespace photon::fabric {

struct WireConfig {
  bool enabled = true;              ///< false: all costs are zero (unit tests)
  std::uint64_t latency_ns = 1300;  ///< L
  std::uint64_t send_overhead_ns = 120;  ///< o (post)
  std::uint64_t recv_overhead_ns = 90;   ///< o (consume completion)
  std::uint64_t gap_ns = 40;        ///< g
  double per_byte_ns = 0.15;        ///< G (~6.6 GB/s)
  std::uint64_t atomic_exec_ns = 30;  ///< execution cost at target NIC
};

class WireModel {
 public:
  WireModel(const WireConfig& cfg, std::uint32_t nranks);

  struct Times {
    std::uint64_t local_done;  ///< initiator-side completion timestamp
    std::uint64_t deliver;     ///< target-side delivery timestamp
  };

  /// One-way transfer (put, put-with-imm, send). `ready` is the sender's
  /// virtual time after the posting overhead has been charged.
  Times transfer(Rank src, Rank dst, std::uint64_t ready, std::size_t bytes);

  /// RDMA read: request src->dst, data dst->src. Both timestamps land at the
  /// initiator (`local_done`) and the target-notification time (`deliver`,
  /// used when a get also raises a remote event).
  Times get(Rank initiator, Rank target, std::uint64_t ready, std::size_t bytes);

  /// Remote atomic: request + response, executed at the target NIC.
  Times atomic_op(Rank initiator, Rank target, std::uint64_t ready);

  std::uint64_t send_overhead() const noexcept {
    return cfg_.enabled ? cfg_.send_overhead_ns : 0;
  }
  std::uint64_t recv_overhead() const noexcept {
    return cfg_.enabled ? cfg_.recv_overhead_ns : 0;
  }
  const WireConfig& config() const noexcept { return cfg_; }

  /// Reset all resource-availability timestamps (between experiments).
  void reset();

 private:
  std::uint64_t byte_cost(std::size_t bytes) const noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(bytes) * cfg_.per_byte_ns);
  }
  /// Reserve a resource: start = max(ready, free); free' = start + busy.
  /// Returns start. Thread-safe (CAS loop) because the get data path makes
  /// the initiator's thread reserve the target's outbound link.
  static std::uint64_t reserve(std::atomic<std::uint64_t>& res,
                               std::uint64_t ready, std::uint64_t busy);

  std::atomic<std::uint64_t>& link(Rank s, Rank d) {
    return link_free_[static_cast<std::size_t>(s) * nranks_ + d];
  }

  WireConfig cfg_;
  std::uint32_t nranks_;
  std::vector<std::atomic<std::uint64_t>> link_free_;
  std::vector<std::atomic<std::uint64_t>> nic_free_;
};

}  // namespace photon::fabric
