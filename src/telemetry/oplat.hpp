// Per-op virtual-time latency recording, keyed by op class and peer.
//
// Two distributions per (class, peer):
//   * local  — post → local completion (initiator view: source reusable /
//              destination filled), measured as completion vtime minus the
//              op's post vtime;
//   * remote — post → remote delivery (target view: the remote id / eager
//              payload became consumable), measured at the target as the
//              delivering completion's vtime minus the post vtime the
//              initiator stamped into the wire (ledger meta bits / eager imm
//              aux — spare bits, so wire sizes and virtual time are
//              untouched).
//
// The recorder resolves its histograms in the registry once at bind() time;
// the record path is: one relaxed enabled() load, one bounds-checked array
// index, three relaxed fetch_adds. Figure-grade RMA evaluation reports
// distributions, not means — these feed the p50/p99/p999 columns of every
// BENCH_*.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace photon::telemetry {

/// Photon op classes measured by the latency recorder (mirrors the core
/// engine's OpKind, without depending on core headers).
enum class OpClass : std::uint8_t {
  kPut = 0,   ///< direct put-with-completion
  kEager,     ///< eager send-with-completion
  kGet,       ///< get-with-completion
  kOsPut,     ///< rendezvous one-sided put
  kOsGet,     ///< rendezvous one-sided get
  kSignal,    ///< pure ledger doorbell
  kCount,
};

const char* op_class_name(OpClass c) noexcept;

class OpLatencyRecorder {
 public:
  OpLatencyRecorder() = default;

  /// Resolve histograms "photon.vlat.{local,remote}.<class>.peer<r>" for
  /// every (class, peer) pair in `registry`. Callable again to re-bind.
  void bind(MetricsRegistry& registry, std::uint32_t nranks);

  bool bound() const noexcept { return registry_ != nullptr; }
  MetricsRegistry* registry() const noexcept { return registry_; }

  /// True when recording would actually happen — the fast-path gate callers
  /// use to skip stamping post vtimes (a clock read) when telemetry is
  /// runtime-disabled. One null check + one relaxed load.
  bool armed() const noexcept {
    return registry_ != nullptr && registry_->enabled();
  }

  void record_local(OpClass c, std::uint32_t peer, std::uint64_t ns) noexcept {
    if (registry_ == nullptr || !registry_->enabled()) return;
    const std::size_t i = index(c, peer);
    if (i < local_.size()) local_[i]->record(ns);
  }
  void record_remote(OpClass c, std::uint32_t peer, std::uint64_t ns) noexcept {
    if (registry_ == nullptr || !registry_->enabled()) return;
    const std::size_t i = index(c, peer);
    if (i < remote_.size()) remote_[i]->record(ns);
  }

 private:
  std::size_t index(OpClass c, std::uint32_t peer) const noexcept {
    return static_cast<std::size_t>(c) * nranks_ + peer;
  }
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t nranks_ = 0;
  std::vector<LatencyHistogram*> local_;
  std::vector<LatencyHistogram*> remote_;
};

}  // namespace photon::telemetry
