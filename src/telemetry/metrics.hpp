// Unified metrics registry: named counters, gauges, and log2-bucketed
// latency histograms with a relaxed-atomic hot path.
//
// One MetricsRegistry aggregates the whole system's observability state —
// middleware stats, fabric counters, resilience totals, and per-op
// virtual-time latency distributions — behind a single snapshot() call. The
// process-wide instance (MetricsRegistry::process()) is the default sink for
// every layer; components either *record* live (histogram hot path: one
// relaxed enabled() load, one atomic fetch_add) or *fold* their existing raw
// counters in at teardown, keeping those atomics as the backing store.
//
// Cost contract:
//   * disabled at runtime (the default): every record_* call is one relaxed
//     atomic load and a predicted-not-taken branch;
//   * compiled out (-DPHOTON_TELEMETRY=OFF): the hook call sites in the data
//     path vanish entirely (see telemetry/hooks.hpp), and tier-1 behavior is
//     bit-for-bit identical — telemetry never influences protocol state or
//     virtual time.
//
// Thread-safety: metric *creation* (name resolution) takes a mutex; metric
// objects have stable addresses for the registry's lifetime and their update
// paths are lock-free relaxed atomics, so any number of rank threads may
// record concurrently. snapshot() is safe concurrent with recording (values
// are read relaxed; a snapshot taken mid-traffic is approximate per metric
// but never torn per word).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace photon::telemetry {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Raise to `v` if larger (relaxed CAS loop; used for high-water marks).
  void max_of(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t get() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Read-only view of a histogram at one point in time.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  std::uint64_t sum = 0;

  /// Upper bound of the bucket holding the requested rank (p in [0,100]);
  /// 0 when empty. Bucket b > 0 covers [2^(b-1), 2^b - 1].
  std::uint64_t percentile(double p) const noexcept;
  double mean() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(total);
  }
  void merge(const HistogramSnapshot& o) noexcept;
};

/// Log2-bucketed histogram with an atomic record path. Same bucketing as
/// util::Histogram (bucket 0 = value 0; bucket b covers [2^(b-1), 2^b - 1];
/// values >= 2^62 land in the overflow bucket 63) but safe for concurrent
/// recording from many rank threads.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t value) noexcept {
    counts_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

  static std::size_t bucket_of(std::uint64_t v) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Full-registry snapshot: plain values keyed by metric name.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Merge another snapshot in: counters add, gauges take the max (they are
  /// used as high-water marks across registries), histograms merge bucket
  /// counts. Disjoint name sets simply union.
  void merge(const Snapshot& o);

  /// Merge every histogram whose name starts with `prefix` into one
  /// distribution (e.g. all "photon.vlat." series for a bench summary).
  HistogramSnapshot merged_histogram(std::string_view prefix) const;

  std::uint64_t counter_or(std::string_view name, std::uint64_t fallback) const;

  /// Compact single-object JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"total":..,"sum":..,"p50":..,"p99":..,
  /// "p999":..,"buckets":{"<b>":count,...}},...}}.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (disabled until someone enables it).
  static MetricsRegistry& process();

  /// Runtime master switch. Disabled registries still hand out metric
  /// objects (so hot paths can cache pointers) but record/fold callers gate
  /// on enabled() — one relaxed load — and snapshots show whatever was
  /// recorded while enabled.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Named metric accessors: find-or-create; returned references stay valid
  /// for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Register a snapshot-time probe: `read` is invoked on every snapshot()
  /// and its value *added* to the named counter column (multiple probes may
  /// share one name — e.g. one per rank — and are summed). The callable must
  /// stay valid until unregister_probes(owner) is called with the same
  /// owner token; components use `this` and unregister in their destructor.
  void register_probe(const void* owner, std::string_view name,
                      std::function<std::uint64_t()> read);
  void unregister_probes(const void* owner);

  Snapshot snapshot() const;
  /// Zero every owned counter/gauge/histogram (probes are left registered).
  void reset();

 private:
  struct Probe {
    const void* owner;
    std::string name;
    std::function<std::uint64_t()> read;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards the maps, not the metric hot paths
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> hists_;
  std::vector<Probe> probes_;
};

}  // namespace photon::telemetry
