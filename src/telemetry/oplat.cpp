#include "telemetry/oplat.hpp"

namespace photon::telemetry {

const char* op_class_name(OpClass c) noexcept {
  switch (c) {
    case OpClass::kPut: return "put";
    case OpClass::kEager: return "eager";
    case OpClass::kGet: return "get";
    case OpClass::kOsPut: return "os_put";
    case OpClass::kOsGet: return "os_get";
    case OpClass::kSignal: return "signal";
    case OpClass::kCount: break;
  }
  return "unknown";
}

void OpLatencyRecorder::bind(MetricsRegistry& registry, std::uint32_t nranks) {
  registry_ = &registry;
  nranks_ = nranks;
  const std::size_t n =
      static_cast<std::size_t>(OpClass::kCount) * nranks;
  local_.assign(n, nullptr);
  remote_.assign(n, nullptr);
  for (std::size_t c = 0; c < static_cast<std::size_t>(OpClass::kCount); ++c) {
    const char* cname = op_class_name(static_cast<OpClass>(c));
    for (std::uint32_t p = 0; p < nranks; ++p) {
      const std::string peer = ".peer" + std::to_string(p);
      local_[c * nranks + p] = &registry.histogram(
          std::string("photon.vlat.local.") + cname + peer);
      remote_[c * nranks + p] = &registry.histogram(
          std::string("photon.vlat.remote.") + cname + peer);
    }
  }
}

}  // namespace photon::telemetry
