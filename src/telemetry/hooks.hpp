// Hook gating for the telemetry subsystem (mirrors check/hooks.hpp).
//
// The telemetry library itself is always compiled and linked, but every
// recording call site in the data path is wrapped in PHOTON_TELEM_HOOK so a
// -DPHOTON_TELEMETRY=OFF build contains no telemetry code on the post /
// completion paths — not even the enabled() branch. Values that must still
// exist in OFF builds (e.g. a wire-carried post timestamp) use
// PHOTON_TELEM_EXPR(expr, fallback), which collapses to the fallback.
//
// The ON build (the default) gates recording at runtime on
// MetricsRegistry::enabled() — one relaxed atomic load per hook.
//
// Invariant either way: telemetry never changes protocol state or virtual
// time; an OFF build is bit-for-bit behavior-identical to an ON build with
// recording disabled.
#pragma once

#include "telemetry/metrics.hpp"  // IWYU pragma: export

#ifndef PHOTON_TELEMETRY_ENABLED
#define PHOTON_TELEMETRY_ENABLED 1
#endif

#if PHOTON_TELEMETRY_ENABLED
#define PHOTON_TELEM_HOOK(stmt) \
  do {                          \
    stmt;                       \
  } while (false)
#define PHOTON_TELEM_EXPR(expr, fallback) (expr)
#else
#define PHOTON_TELEM_HOOK(stmt) \
  do {                          \
  } while (false)
#define PHOTON_TELEM_EXPR(expr, fallback) (fallback)
#endif
