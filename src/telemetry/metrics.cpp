#include "telemetry/metrics.hpp"

#include <bit>

#include "util/json.hpp"

namespace photon::telemetry {

// ---- HistogramSnapshot ------------------------------------------------------

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen > rank) {
      if (b == 0) return 0;
      // The overflow bucket absorbs everything >= 2^62 and has no finite
      // upper bound to report.
      if (b >= kBuckets - 1) return ~0ULL;
      return (1ULL << b) - 1;
    }
  }
  return ~0ULL;
}

void HistogramSnapshot::merge(const HistogramSnapshot& o) noexcept {
  for (int b = 0; b < kBuckets; ++b)
    counts[static_cast<std::size_t>(b)] += o.counts[static_cast<std::size_t>(b)];
  total += o.total;
  sum += o.sum;
}

// ---- LatencyHistogram -------------------------------------------------------

std::size_t LatencyHistogram::bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const int b = std::bit_width(v);  // 1..64
  return b >= kBuckets ? static_cast<std::size_t>(kBuckets - 1)
                       : static_cast<std::size_t>(b);
}

HistogramSnapshot LatencyHistogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (int b = 0; b < kBuckets; ++b)
    s.counts[static_cast<std::size_t>(b)] =
        counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---- Snapshot ---------------------------------------------------------------

void Snapshot::merge(const Snapshot& o) {
  for (const auto& [k, v] : o.counters) counters[k] += v;
  for (const auto& [k, v] : o.gauges) {
    auto it = gauges.find(k);
    if (it == gauges.end())
      gauges.emplace(k, v);
    else if (v > it->second)
      it->second = v;
  }
  for (const auto& [k, v] : o.histograms) {
    auto it = histograms.find(k);
    if (it == histograms.end())
      histograms.emplace(k, v);
    else
      it->second.merge(v);
  }
}

HistogramSnapshot Snapshot::merged_histogram(std::string_view prefix) const {
  HistogramSnapshot out;
  for (const auto& [name, h] : histograms)
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix)
      out.merge(h);
  return out;
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::string Snapshot::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters) w.key(k).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges) w.key(k).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : histograms) {
    w.key(k).begin_object();
    w.key("total").value(h.total);
    w.key("sum").value(h.sum);
    w.key("p50").value(h.percentile(50));
    w.key("p99").value(h.percentile(99));
    w.key("p999").value(h.percentile(99.9));
    w.key("buckets").begin_object();
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      const auto c = h.counts[static_cast<std::size_t>(b)];
      if (c != 0) w.key(std::to_string(b)).value(c);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::process() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::register_probe(const void* owner, std::string_view name,
                                     std::function<std::uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.push_back({owner, std::string(name), std::move(read)});
}

void MetricsRegistry::unregister_probes(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(probes_, [owner](const Probe& p) { return p.owner == owner; });
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [k, c] : counters_) s.counters[k] = c->get();
  for (const auto& [k, g] : gauges_) s.gauges[k] = g->get();
  for (const auto& [k, h] : hists_) s.histograms[k] = h->snapshot();
  for (const auto& p : probes_) s.counters[p.name] += p.read();
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, c] : counters_) c->reset();
  for (auto& [k, g] : gauges_) g->set(0);
  for (auto& [k, h] : hists_) h->reset();
}

}  // namespace photon::telemetry
