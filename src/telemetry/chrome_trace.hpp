// Chrome about:tracing (Trace Event Format) export.
//
// Collects instant and duration events — typically one util::Tracer per rank
// fed through add_tracer() — and serializes the standard
// {"traceEvents":[...]} JSON object consumed by chrome://tracing and
// Perfetto. Ranks map to thread ids inside one process id, with
// thread_name metadata so timelines read "rank 0", "rank 1", ...
//
// add_tracer() derives spans from the flat event stream: each op post
// (kPut / kEagerSend / kGet / kSignal) opens a span that the next
// kLocalDone with the same (peer, id) closes — per-(peer,id) FIFO pairing,
// which matches the engine's in-order completion semantics. Unpaired posts
// (op still in flight when the trace was captured) degrade to instants, as
// do kRemoteEvent / kStall.
//
// Virtual-time nanoseconds are emitted as microsecond "ts" values (the
// format's unit) with 3 decimal places, so ns resolution survives.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace photon::util {
class Tracer;
}

namespace photon::telemetry {

class ChromeTrace {
 public:
  /// Instant event (ph:"i", thread scope).
  void add_instant(std::uint32_t rank, std::string_view name,
                   std::uint64_t vtime_ns);
  /// Complete/duration event (ph:"X"). `dur_ns` may be 0.
  void add_span(std::uint32_t rank, std::string_view name,
                std::uint64_t start_ns, std::uint64_t dur_ns,
                std::string_view args_json = {});

  /// Import a per-rank tracer, deriving spans for completed ops (see file
  /// comment). Safe on an empty tracer.
  void add_tracer(const util::Tracer& tracer, std::uint32_t rank);

  std::size_t event_count() const noexcept { return events_.size(); }

  /// Well-formed Trace Event Format JSON; `{"traceEvents":[]}`-shaped even
  /// when no events were added.
  std::string to_json() const;

 private:
  struct Event {
    std::uint32_t rank;
    char phase;  // 'i' or 'X'
    std::string name;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;      // phase 'X' only
    std::string args_json;     // raw JSON object, may be empty
  };
  std::vector<Event> events_;
  std::vector<std::uint32_t> ranks_seen_;

  void note_rank(std::uint32_t rank);
};

}  // namespace photon::telemetry
