#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "util/json.hpp"
#include "util/trace.hpp"

namespace photon::telemetry {

void ChromeTrace::note_rank(std::uint32_t rank) {
  if (std::find(ranks_seen_.begin(), ranks_seen_.end(), rank) ==
      ranks_seen_.end())
    ranks_seen_.push_back(rank);
}

void ChromeTrace::add_instant(std::uint32_t rank, std::string_view name,
                              std::uint64_t vtime_ns) {
  note_rank(rank);
  events_.push_back({rank, 'i', std::string(name), vtime_ns, 0, {}});
}

void ChromeTrace::add_span(std::uint32_t rank, std::string_view name,
                           std::uint64_t start_ns, std::uint64_t dur_ns,
                           std::string_view args_json) {
  note_rank(rank);
  events_.push_back(
      {rank, 'X', std::string(name), start_ns, dur_ns, std::string(args_json)});
}

namespace {

bool is_post_kind(util::TraceKind k) {
  return k == util::TraceKind::kPut || k == util::TraceKind::kEagerSend ||
         k == util::TraceKind::kGet || k == util::TraceKind::kSignal;
}

std::string bytes_args(std::uint32_t peer, std::uint32_t bytes,
                       std::uint64_t id) {
  util::JsonWriter w;
  w.begin_object();
  w.key("peer").value(peer);
  w.key("bytes").value(bytes);
  w.key("id").value(id);
  w.end_object();
  return w.str();
}

}  // namespace

void ChromeTrace::add_tracer(const util::Tracer& tracer, std::uint32_t rank) {
  note_rank(rank);
  // Open posts awaiting their kLocalDone, FIFO per (peer, id). The id alone
  // is not unique across op kinds, so the pending op's kind rides along.
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::deque<const util::TraceEvent*>>
      open;
  for (const auto& e : tracer.events()) {
    if (is_post_kind(e.kind)) {
      open[{e.peer, e.id}].push_back(&e);
      continue;
    }
    if (e.kind == util::TraceKind::kLocalDone) {
      auto it = open.find({e.peer, e.id});
      if (it != open.end() && !it->second.empty()) {
        const util::TraceEvent* post = it->second.front();
        it->second.pop_front();
        add_span(rank, util::trace_kind_name(post->kind), post->vtime,
                 e.vtime >= post->vtime ? e.vtime - post->vtime : 0,
                 bytes_args(post->peer, post->bytes, post->id));
        continue;
      }
      // Completion without a recorded post (tracer attached mid-run).
    }
    add_instant(rank, util::trace_kind_name(e.kind), e.vtime);
  }
  // Ops still in flight: keep them visible as instants.
  for (auto& [key, q] : open)
    for (const util::TraceEvent* post : q)
      add_instant(rank, util::trace_kind_name(post->kind), post->vtime);
}

std::string ChromeTrace::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  for (std::uint32_t rank : ranks_seen_) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(rank);
    w.key("args").begin_object();
    w.key("name").value("rank " + std::to_string(rank));
    w.end_object();
    w.end_object();
  }
  for (const auto& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value(std::string(1, e.phase));
    w.key("pid").value(0);
    w.key("tid").value(e.rank);
    // ts is in microseconds; keep ns resolution as fractional µs.
    w.key("ts").value(static_cast<double>(e.ts_ns) / 1000.0);
    if (e.phase == 'X')
      w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
    if (e.phase == 'i') w.key("s").value("t");
    if (!e.args_json.empty()) w.key("args").raw(e.args_json);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace photon::telemetry
