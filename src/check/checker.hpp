// PhotonCheck: shadow-state validator for the RMA protocol.
//
// One Checker per Fabric. Every user-facing operation (put/get/send with
// completion, signals, rendezvous os ops, buffer adverts) registers a shadow
// op record; registered regions carry interval maps of in-flight spans
// (pinned sources, landing ranges, advertised windows). Completion-side
// events (probe_local/probe_event pops, request completion, flush, finalize)
// release the spans. Conflicting overlaps and id-hygiene breaches are
// reported as Violations (see violation.hpp for the five classes).
//
// Post protocol (three phases, needed because the simulated fabric delivers
// data synchronously at post time — the target thread can observe and pop a
// remote completion id before the initiator's post call returns):
//   1. begin_op()   - BEFORE the nic post: silently records the op and its
//                     outstanding remote id. Returns a serial (0 = disabled).
//   2. commit()     - after a successful post: runs all reporting checks
//                     (bad slices, span conflicts, duplicate local ids) and
//                     claims the op's spans.
//   3. abort_post() - after a failed post: silently erases the record,
//                     except that validation failures re-report as kBadSlice
//                     (class 4 is detected by the nic synchronously, so the
//                     failed post *is* the violation).
// begin_op is silent so that try_*/retry loops never double-report.
//
// Threading: one mutex; hooks are called from every rank thread. The checker
// takes no other locks, so any caller-held lock ordering is one-way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "check/interval_map.hpp"
#include "check/violation.hpp"
#include "fabric/types.hpp"

namespace photon::check {

/// What the checker does when a violation is found. The default (abort, like
/// a sanitizer) can be overridden at runtime or with PHOTON_CHECK_MODE.
enum class Mode : std::uint8_t { kAbort, kLog, kCollect };

/// Request-anchor namespace: core Photon RequestIds and msg-engine ReqIds
/// come from independent per-rank counters, so anchors carry the namespace.
enum class RequestNs : std::uint8_t { kCore, kMsg };

/// Everything the checker needs to know about one post, captured at begin.
struct PostInfo {
  CheckOpKind kind = CheckOpKind::kPut;
  fabric::Rank initiator = 0;
  fabric::Rank target = 0;
  /// Local side; lkey == kInvalidKey means the op has no local slice.
  const void* local_addr = nullptr;
  std::size_t local_len = 0;
  fabric::MrKey local_lkey = fabric::kInvalidKey;
  /// Remote side; rkey == kInvalidKey means the op has no remote slice.
  std::uint64_t remote_addr = 0;
  std::size_t remote_len = 0;
  fabric::MrKey remote_rkey = fabric::kInvalidKey;
  /// Completion anchors.
  std::optional<std::uint64_t> local_id;
  std::optional<std::uint64_t> remote_id;
  std::optional<std::uint64_t> request;
  RequestNs request_ns = RequestNs::kCore;
  /// kAdvert only: true for a send-side (peer-will-get) window.
  bool advert_is_send = false;
};

class Checker {
 public:
  /// Reads PHOTON_CHECK (0/off disables) and PHOTON_CHECK_MODE
  /// (abort|log|collect) from the environment.
  Checker();

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  void set_mode(Mode m);
  Mode mode() const;

  std::uint64_t violation_count() const noexcept {
    return violation_count_.load(std::memory_order_relaxed);
  }
  /// Drain collected violations (kCollect mode; empty otherwise).
  std::vector<Violation> take_violations();

  // ---- post lifecycle ------------------------------------------------------
  std::uint64_t begin_op(const PostInfo& info);
  void commit(std::uint64_t serial);
  void abort_post(std::uint64_t serial);

  // ---- registration --------------------------------------------------------
  void on_mr_register(fabric::Rank owner, const void* addr, std::size_t len,
                      fabric::MrKey lkey, fabric::MrKey rkey);
  void on_mr_deregister(fabric::Rank owner, fabric::MrKey lkey);

  // ---- completion-side events ----------------------------------------------
  void on_local_id_popped(fabric::Rank initiator, std::uint64_t id);
  void on_remote_id_popped(fabric::Rank target, std::uint64_t id);
  void on_request_done(fabric::Rank owner, RequestNs ns, std::uint64_t request);
  /// Async error completion for a recorded op. `remote_id_sent`: the remote
  /// id doorbell was posted separately and may still be delivered (direct
  /// put), so its outstanding entry must survive the cleanup.
  void on_op_error(std::uint64_t serial, bool remote_id_sent);
  /// A deferred remote-id deposit was dropped (peer failure); forget it.
  void on_remote_id_lost(fabric::Rank target, std::uint64_t id);
  /// The initiator latched its connection to `peer` dead (verbs QP error):
  /// silently drop every outstanding op initiator->peer — their completions
  /// will never arrive, and that is expected, not a protocol violation.
  void on_peer_dead(fabric::Rank initiator, fabric::Rank peer);
  /// The initiator fenced a new epoch toward `peer` (recovery): drop every
  /// still-outstanding op initiator->peer. Their completions belong to the
  /// dead connection and can never arrive — expected, not a violation — and
  /// the fresh epoch must start from clean shadow state.
  void on_peer_recovered(fabric::Rank initiator, fabric::Rank peer);
  /// flush(peer) returned: anchorless ops initiator->peer are done.
  void on_flush(fabric::Rank initiator, fabric::Rank peer);
  /// Rank teardown: report every op it initiated that still has outstanding
  /// completion anchors (class 5), then drop its state.
  void on_finalize(fabric::Rank rank);

  // ---- application accesses ------------------------------------------------
  void note_user_read(fabric::Rank rank, const void* addr, std::size_t len);
  void note_user_write(fabric::Rank rank, const void* addr, std::size_t len);

  // ---- introspection (tests) -----------------------------------------------
  std::size_t live_ops() const;
  std::size_t live_regions() const;

 private:
  struct RegionKey {
    fabric::Rank owner;
    fabric::MrKey lkey;
    friend bool operator<(const RegionKey& a, const RegionKey& b) {
      return a.owner != b.owner ? a.owner < b.owner : a.lkey < b.lkey;
    }
  };
  struct ShadowRegion {
    std::uint64_t base = 0;
    std::size_t len = 0;
    fabric::MrKey rkey = fabric::kInvalidKey;
    IntervalMap spans;
  };
  struct SpanLoc {
    RegionKey region;
    std::uint64_t begin = 0;
  };
  /// Which event releases a span group (chosen once at commit).
  enum class Anchor : std::uint8_t { kLocal, kRemote, kRequest, kFlush };
  struct OpState {
    PostInfo info;
    std::uint64_t serial = 0;
    bool committed = false;
    bool wait_local = false;    ///< local_id outstanding
    bool wait_remote = false;   ///< remote_id outstanding
    bool wait_request = false;  ///< request outstanding
    Anchor local_anchor = Anchor::kFlush;   ///< releases src/dst pins
    Anchor remote_anchor = Anchor::kFlush;  ///< releases landing/wire-read
    std::vector<SpanLoc> local_spans;
    std::vector<SpanLoc> remote_spans;
  };
  /// How a range is touched, for the conflict matrix.
  enum class AccessClass : std::uint8_t {
    kWireWrite, kWireRead, kUserWrite, kUserRead,
  };

  // All helpers below assume mutex_ is held.
  void report(Violation v);
  OpRef make_ref(const OpState& st, std::uint64_t addr, std::size_t len) const;
  ShadowRegion* find_region(RegionKey key);
  ShadowRegion* resolve_rkey(fabric::Rank owner, fabric::MrKey rkey,
                             RegionKey* key_out);
  /// Conflict-scan [addr, addr+len) across every region owned by `owner`;
  /// reports at most one violation. Returns true if one was reported.
  bool check_access(fabric::Rank owner, std::uint64_t addr, std::size_t len,
                    AccessClass access, const OpRef& who,
                    std::uint64_t self_serial);
  std::optional<ViolationKind> classify(AccessClass access, SpanKind prior,
                                        fabric::Rank access_initiator,
                                        std::uint64_t prior_serial);
  void claim_span(OpState& st, RegionKey region, std::uint64_t begin,
                  std::uint64_t end, SpanKind kind, bool remote_group);
  void release_group(OpState& st, std::vector<SpanLoc>& group);
  void fire_anchor(OpState& st, Anchor which);
  void maybe_retire(std::uint64_t serial);
  void drop_op(std::uint64_t serial);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> violation_count_{0};
  Mode mode_ = Mode::kAbort;
  std::uint64_t next_serial_ = 1;

  std::map<std::uint64_t, OpState> ops_;
  std::map<RegionKey, ShadowRegion> regions_;
  /// (owner, rkey) -> lkey, so remote slices resolve to shadow regions.
  std::map<std::pair<fabric::Rank, fabric::MrKey>, fabric::MrKey> rkey_index_;
  /// (initiator, local_id) -> serial. Duplicate outstanding ids are class 5.
  std::map<std::pair<fabric::Rank, std::uint64_t>, std::uint64_t> local_ids_;
  /// (target, remote_id) -> serials, FIFO. Multiple outstanding ops may
  /// legally share a remote id (parcels reuse handler ids); pops release the
  /// oldest, matching ledger/ring delivery order.
  std::multimap<std::pair<fabric::Rank, std::uint64_t>, std::uint64_t>
      remote_ids_;
  /// (owner, ns, request) -> serial.
  std::map<std::tuple<fabric::Rank, std::uint8_t, std::uint64_t>, std::uint64_t>
      requests_;
  std::vector<Violation> collected_;
};

}  // namespace photon::check
