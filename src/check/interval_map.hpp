// Interval map of in-flight RMA spans over one registered memory region.
//
// Spans are half-open byte ranges [begin, end) tagged with the kind of claim
// an in-flight operation holds on them (pinned source, landing range, ...)
// and the serial of the owning op record. Lookups are linear in the number of
// spans whose begin precedes the query end — in-flight depth per region is
// small (bounded by NIC slots and ledger size), so no tree balancing is
// needed; a std::multimap keyed by begin keeps insert/erase cheap and scans
// ordered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace photon::check {

/// What claim an in-flight op holds over a span.
enum class SpanKind : std::uint8_t {
  kSrcPinned,   // put/send source: read-pinned until local id delivery
  kDstPinned,   // get destination: write-pinned until local id delivery
  kLanding,     // put landing range at the target until remote id delivery
  kWireRead,    // get source at the target until remote id delivery
  kAdvertRecv,  // advertised receive window (rendezvous put target) until FIN
  kAdvertSend,  // advertised send window (rendezvous get source) until FIN
};

const char* to_string(SpanKind kind) noexcept;

/// True if the claim means the wire (or its owner) will WRITE the range.
inline bool span_is_write(SpanKind kind) noexcept {
  return kind == SpanKind::kDstPinned || kind == SpanKind::kLanding ||
         kind == SpanKind::kAdvertRecv;
}

struct Span {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // half-open
  SpanKind kind = SpanKind::kSrcPinned;
  std::uint64_t serial = 0;  // owning op record
};

/// Interval map for one registered region.
class IntervalMap {
 public:
  void insert(std::uint64_t begin, std::uint64_t end, SpanKind kind,
              std::uint64_t serial) {
    spans_.emplace(begin, Span{begin, end, kind, serial});
  }

  /// Remove the span owned by `serial` starting at `begin`; returns whether
  /// one was found. (An op never owns two spans with the same begin in the
  /// same region, so the pair is unique.)
  bool erase(std::uint64_t begin, std::uint64_t serial) {
    auto [first, last] = spans_.equal_range(begin);
    for (auto it = first; it != last; ++it) {
      if (it->second.serial == serial) {
        spans_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Remove every span owned by `serial`; returns how many were removed.
  std::size_t erase_all(std::uint64_t serial) {
    std::size_t n = 0;
    for (auto it = spans_.begin(); it != spans_.end();) {
      if (it->second.serial == serial) {
        it = spans_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  /// All spans overlapping [begin, end). Empty query ranges overlap nothing.
  std::vector<Span> overlapping(std::uint64_t begin, std::uint64_t end) const {
    std::vector<Span> out;
    if (begin >= end) return out;
    // Every candidate has span.begin < end; scan that prefix.
    for (auto it = spans_.begin(), stop = spans_.lower_bound(end); it != stop;
         ++it) {
      if (it->second.end > begin) out.push_back(it->second);
    }
    return out;
  }

  bool empty() const noexcept { return spans_.empty(); }
  std::size_t size() const noexcept { return spans_.size(); }

  /// Snapshot of all live spans (finalize-leak reporting).
  std::vector<Span> all() const {
    std::vector<Span> out;
    out.reserve(spans_.size());
    for (const auto& [_, span] : spans_) out.push_back(span);
    return out;
  }

 private:
  std::multimap<std::uint64_t, Span> spans_;
};

}  // namespace photon::check
