#include "check/checker.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "util/log.hpp"

namespace photon::check {

namespace {

bool is_wire_span(SpanKind kind) {
  return kind == SpanKind::kSrcPinned || kind == SpanKind::kDstPinned ||
         kind == SpanKind::kLanding || kind == SpanKind::kWireRead;
}

bool env_disables_check() {
  const char* v = std::getenv("PHOTON_CHECK");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0;
}

Mode env_mode() {
  const char* v = std::getenv("PHOTON_CHECK_MODE");
  if (v == nullptr) return Mode::kAbort;
  if (std::strcmp(v, "log") == 0) return Mode::kLog;
  if (std::strcmp(v, "collect") == 0) return Mode::kCollect;
  return Mode::kAbort;
}

}  // namespace

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kUseAfterPut: return "use-after-put";
    case ViolationKind::kReadOfUnlanded: return "read-of-unlanded";
    case ViolationKind::kRmaRace: return "rma-race";
    case ViolationKind::kBadSlice: return "bad-slice";
    case ViolationKind::kIdHygiene: return "id-hygiene";
  }
  return "unknown";
}

const char* to_string(CheckOpKind kind) noexcept {
  switch (kind) {
    case CheckOpKind::kPut: return "put";
    case CheckOpKind::kEagerSend: return "send";
    case CheckOpKind::kGet: return "get";
    case CheckOpKind::kSignal: return "signal";
    case CheckOpKind::kOsPut: return "os_put";
    case CheckOpKind::kOsGet: return "os_get";
    case CheckOpKind::kRndvGet: return "rndv_get";
    case CheckOpKind::kAdvert: return "advert";
    case CheckOpKind::kUserAccess: return "user-access";
    case CheckOpKind::kRegister: return "register";
    case CheckOpKind::kFinalize: return "finalize";
  }
  return "unknown";
}

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kSrcPinned: return "src-pinned";
    case SpanKind::kDstPinned: return "dst-pinned";
    case SpanKind::kLanding: return "landing";
    case SpanKind::kWireRead: return "wire-read";
    case SpanKind::kAdvertRecv: return "advert-recv";
    case SpanKind::kAdvertSend: return "advert-send";
  }
  return "unknown";
}

std::string describe(const OpRef& op) {
  std::ostringstream os;
  os << to_string(op.kind) << '#' << op.serial << " rank" << op.initiator
     << "->rank" << op.target << " [0x" << std::hex << op.addr << std::dec
     << "+" << op.len << ")";
  if (op.has_local_id) os << " local_id=" << op.local_id;
  if (op.has_remote_id) os << " remote_id=" << op.remote_id;
  return os.str();
}

Checker::Checker() {
  enabled_.store(!env_disables_check(), std::memory_order_relaxed);
  mode_ = env_mode();
}

void Checker::set_mode(Mode m) {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = m;
}

Mode Checker::mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_;
}

std::vector<Violation> Checker::take_violations() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Violation> out;
  out.swap(collected_);
  return out;
}

std::size_t Checker::live_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_.size();
}

std::size_t Checker::live_regions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return regions_.size();
}

// ---- reporting ---------------------------------------------------------------

void Checker::report(Violation v) {
  violation_count_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "photoncheck: " << to_string(v.kind) << ": " << v.message
     << " | op: " << describe(v.op);
  if (v.prior) os << " | conflicts with: " << describe(*v.prior);
  const std::string line = os.str();
  switch (mode_) {
    case Mode::kCollect:
      collected_.push_back(std::move(v));
      break;
    case Mode::kLog:
      log::error(line);
      break;
    case Mode::kAbort:
      log::error(line);
      std::fprintf(stderr, "%s\n", line.c_str());
      std::abort();
  }
}

OpRef Checker::make_ref(const OpState& st, std::uint64_t addr,
                        std::size_t len) const {
  OpRef r;
  r.serial = st.serial;
  r.kind = st.info.kind;
  r.initiator = st.info.initiator;
  r.target = st.info.target;
  r.addr = addr;
  r.len = len;
  r.has_local_id = st.info.local_id.has_value();
  r.local_id = st.info.local_id.value_or(0);
  r.has_remote_id = st.info.remote_id.has_value();
  r.remote_id = st.info.remote_id.value_or(0);
  return r;
}

// ---- regions -----------------------------------------------------------------

Checker::ShadowRegion* Checker::find_region(RegionKey key) {
  auto it = regions_.find(key);
  return it == regions_.end() ? nullptr : &it->second;
}

Checker::ShadowRegion* Checker::resolve_rkey(fabric::Rank owner,
                                             fabric::MrKey rkey,
                                             RegionKey* key_out) {
  auto it = rkey_index_.find({owner, rkey});
  if (it == rkey_index_.end()) return nullptr;
  const RegionKey key{owner, it->second};
  if (key_out != nullptr) *key_out = key;
  return find_region(key);
}

void Checker::on_mr_register(fabric::Rank owner, const void* addr,
                             std::size_t len, fabric::MrKey lkey,
                             fabric::MrKey rkey) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ShadowRegion region;
  region.base = reinterpret_cast<std::uint64_t>(addr);
  region.len = len;
  region.rkey = rkey;
  regions_[RegionKey{owner, lkey}] = std::move(region);
  rkey_index_[{owner, rkey}] = lkey;
}

void Checker::on_mr_deregister(fabric::Rank owner, fabric::MrKey lkey) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(RegionKey{owner, lkey});
  if (it == regions_.end()) {
    Violation v;
    v.kind = ViolationKind::kIdHygiene;
    v.op.kind = CheckOpKind::kRegister;
    v.op.initiator = owner;
    v.op.target = owner;
    std::ostringstream os;
    os << "rank" << owner << " deregistered unknown lkey " << lkey
       << " (double unregister?)";
    v.message = os.str();
    report(std::move(v));
    return;
  }
  ShadowRegion& region = it->second;
  if (!region.spans.empty()) {
    // Tearing down a registration with in-flight claims: report once, on
    // behalf of the oldest claim.
    const auto all = region.spans.all();
    const Span* oldest = &all.front();
    for (const Span& s : all)
      if (s.serial < oldest->serial) oldest = &s;
    Violation v;
    v.kind = (oldest->kind == SpanKind::kSrcPinned ||
              oldest->kind == SpanKind::kDstPinned)
                 ? ViolationKind::kUseAfterPut
                 : ViolationKind::kReadOfUnlanded;
    v.op.kind = CheckOpKind::kRegister;
    v.op.initiator = owner;
    v.op.target = owner;
    v.op.addr = region.base;
    v.op.len = region.len;
    auto oit = ops_.find(oldest->serial);
    if (oit != ops_.end())
      v.prior = make_ref(oit->second, oldest->begin,
                         static_cast<std::size_t>(oldest->end - oldest->begin));
    std::ostringstream os;
    os << "rank" << owner << " unregistered lkey " << lkey << " with "
       << region.spans.size() << " in-flight span(s) (" << to_string(oldest->kind)
       << " still live)";
    v.message = os.str();
    report(std::move(v));
    // Detach the dying region's spans from their ops so release paths don't
    // dangle.
    for (const Span& s : all) {
      auto op = ops_.find(s.serial);
      if (op == ops_.end()) continue;
      auto detach = [&](std::vector<SpanLoc>& group) {
        for (auto git = group.begin(); git != group.end();) {
          if (git->region.owner == owner && git->region.lkey == lkey &&
              git->begin == s.begin)
            git = group.erase(git);
          else
            ++git;
        }
      };
      detach(op->second.local_spans);
      detach(op->second.remote_spans);
    }
  }
  rkey_index_.erase({owner, region.rkey});
  regions_.erase(it);
}

// ---- conflict matrix ---------------------------------------------------------

std::optional<ViolationKind> Checker::classify(AccessClass access,
                                               SpanKind prior,
                                               fabric::Rank access_initiator,
                                               std::uint64_t prior_serial) {
  const bool access_is_wire =
      access == AccessClass::kWireWrite || access == AccessClass::kWireRead;
  if (access_is_wire && is_wire_span(prior)) {
    // Same-initiator wire ops are serialized (one thread posts them, and the
    // RC connection orders same-pair traffic): never a race with each other.
    auto pit = ops_.find(prior_serial);
    if (pit != ops_.end() && pit->second.info.initiator == access_initiator)
      return std::nullopt;
  }
  switch (access) {
    case AccessClass::kWireWrite:
      switch (prior) {
        case SpanKind::kSrcPinned: return ViolationKind::kUseAfterPut;
        case SpanKind::kDstPinned: return ViolationKind::kRmaRace;
        case SpanKind::kLanding: return ViolationKind::kRmaRace;
        case SpanKind::kWireRead: return ViolationKind::kRmaRace;
        case SpanKind::kAdvertRecv: return std::nullopt;  // expected landing
        case SpanKind::kAdvertSend: return ViolationKind::kRmaRace;
      }
      break;
    case AccessClass::kWireRead:
      switch (prior) {
        case SpanKind::kSrcPinned: return std::nullopt;  // concurrent reads ok
        case SpanKind::kDstPinned: return ViolationKind::kRmaRace;
        case SpanKind::kLanding: return ViolationKind::kRmaRace;
        case SpanKind::kWireRead: return std::nullopt;
        case SpanKind::kAdvertRecv: return ViolationKind::kRmaRace;
        case SpanKind::kAdvertSend: return std::nullopt;  // expected read
      }
      break;
    case AccessClass::kUserWrite:
      switch (prior) {
        case SpanKind::kSrcPinned: return ViolationKind::kUseAfterPut;
        case SpanKind::kDstPinned: return ViolationKind::kUseAfterPut;
        case SpanKind::kLanding: return ViolationKind::kReadOfUnlanded;
        case SpanKind::kWireRead: return ViolationKind::kRmaRace;
        case SpanKind::kAdvertRecv: return ViolationKind::kReadOfUnlanded;
        case SpanKind::kAdvertSend: return ViolationKind::kRmaRace;
      }
      break;
    case AccessClass::kUserRead:
      switch (prior) {
        case SpanKind::kSrcPinned: return std::nullopt;
        case SpanKind::kDstPinned: return ViolationKind::kUseAfterPut;
        case SpanKind::kLanding: return ViolationKind::kReadOfUnlanded;
        case SpanKind::kWireRead: return std::nullopt;
        case SpanKind::kAdvertRecv: return ViolationKind::kReadOfUnlanded;
        case SpanKind::kAdvertSend: return std::nullopt;
      }
      break;
  }
  return std::nullopt;
}

bool Checker::check_access(fabric::Rank owner, std::uint64_t addr,
                           std::size_t len, AccessClass access,
                           const OpRef& who, std::uint64_t self_serial) {
  if (len == 0) return false;
  const std::uint64_t end = addr + len;
  for (auto it = regions_.lower_bound(RegionKey{owner, 0});
       it != regions_.end() && it->first.owner == owner; ++it) {
    const ShadowRegion& region = it->second;
    if (region.base >= end || region.base + region.len <= addr) continue;
    for (const Span& s : region.spans.overlapping(addr, end)) {
      if (s.serial == self_serial) continue;
      const auto kind = classify(access, s.kind, who.initiator, s.serial);
      if (!kind) continue;
      Violation v;
      v.kind = *kind;
      v.op = who;
      auto oit = ops_.find(s.serial);
      if (oit != ops_.end())
        v.prior = make_ref(oit->second, s.begin,
                           static_cast<std::size_t>(s.end - s.begin));
      std::ostringstream os;
      os << (access == AccessClass::kWireWrite   ? "wire write"
             : access == AccessClass::kWireRead  ? "wire read"
             : access == AccessClass::kUserWrite ? "application write"
                                                 : "application read")
         << " of [0x" << std::hex << addr << std::dec << "+" << len
         << ") on rank" << owner << " overlaps in-flight " << to_string(s.kind)
         << " span with no intervening completion";
      v.message = os.str();
      report(std::move(v));
      return true;
    }
  }
  return false;
}

// ---- span bookkeeping --------------------------------------------------------

void Checker::claim_span(OpState& st, RegionKey region, std::uint64_t begin,
                         std::uint64_t end, SpanKind kind, bool remote_group) {
  ShadowRegion* r = find_region(region);
  if (r == nullptr) return;
  r->spans.insert(begin, end, kind, st.serial);
  (remote_group ? st.remote_spans : st.local_spans)
      .push_back(SpanLoc{region, begin});
}

void Checker::release_group(OpState& st, std::vector<SpanLoc>& group) {
  for (const SpanLoc& loc : group) {
    ShadowRegion* r = find_region(loc.region);
    if (r != nullptr) r->spans.erase(loc.begin, st.serial);
  }
  group.clear();
}

void Checker::fire_anchor(OpState& st, Anchor which) {
  if (st.local_anchor == which) release_group(st, st.local_spans);
  if (st.remote_anchor == which) release_group(st, st.remote_spans);
}

void Checker::maybe_retire(std::uint64_t serial) {
  auto it = ops_.find(serial);
  if (it == ops_.end()) return;
  const OpState& st = it->second;
  if (st.wait_local || st.wait_remote || st.wait_request) return;
  if (!st.local_spans.empty() || !st.remote_spans.empty()) return;
  ops_.erase(it);
}

void Checker::drop_op(std::uint64_t serial) {
  auto it = ops_.find(serial);
  if (it == ops_.end()) return;
  OpState& st = it->second;
  release_group(st, st.local_spans);
  release_group(st, st.remote_spans);
  if (st.info.local_id) {
    auto lit = local_ids_.find({st.info.initiator, *st.info.local_id});
    if (lit != local_ids_.end() && lit->second == serial) local_ids_.erase(lit);
  }
  if (st.info.remote_id) {
    auto [first, last] =
        remote_ids_.equal_range({st.info.target, *st.info.remote_id});
    for (auto rit = first; rit != last; ++rit) {
      if (rit->second == serial) {
        remote_ids_.erase(rit);
        break;
      }
    }
  }
  if (st.info.request) {
    requests_.erase({st.info.initiator,
                     static_cast<std::uint8_t>(st.info.request_ns),
                     *st.info.request});
  }
  ops_.erase(it);
}

// ---- post lifecycle ----------------------------------------------------------

std::uint64_t Checker::begin_op(const PostInfo& info) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t serial = next_serial_++;
  OpState st;
  st.info = info;
  st.serial = serial;
  // The remote id must be outstanding before the nic post: the simulated
  // fabric delivers synchronously, so the target can pop the id before the
  // initiator's post call even returns.
  if (info.remote_id) {
    remote_ids_.emplace(std::make_pair(info.target, *info.remote_id), serial);
    st.wait_remote = true;
  }
  ops_.emplace(serial, std::move(st));
  return serial;
}

void Checker::abort_post(std::uint64_t serial) {
  if (serial == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ops_.find(serial);
  if (it == ops_.end()) return;
  OpState& st = it->second;
  // A post the nic rejected synchronously for slice validation *is* the
  // class-4 violation; transient rejections (Retry/QueueFull/credits) and
  // everything else stay silent (the caller will retry or surface an error).
  bool reported = false;
  if (st.info.local_lkey != fabric::kInvalidKey && st.info.local_len > 0) {
    ShadowRegion* r =
        find_region(RegionKey{st.info.initiator, st.info.local_lkey});
    const auto a = reinterpret_cast<std::uint64_t>(st.info.local_addr);
    if (r == nullptr || a < r->base || a + st.info.local_len > r->base + r->len) {
      Violation v;
      v.kind = ViolationKind::kBadSlice;
      v.op = make_ref(st, a, st.info.local_len);
      v.message = r == nullptr
                      ? "local slice lkey is not a registered region"
                      : "local slice out of bounds of its registered region";
      report(std::move(v));
      reported = true;
    }
  }
  (void)reported;
  drop_op(serial);
}

void Checker::commit(std::uint64_t serial) {
  if (serial == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ops_.find(serial);
  if (it == ops_.end()) return;
  OpState& st = it->second;
  st.committed = true;
  const PostInfo& info = st.info;

  const bool has_local = info.local_id.has_value();
  const bool has_remote = info.remote_id.has_value();
  const bool has_req = info.request.has_value();
  st.local_anchor = has_local   ? Anchor::kLocal
                    : has_req   ? Anchor::kRequest
                    : has_remote ? Anchor::kRemote
                                 : Anchor::kFlush;
  st.remote_anchor = has_remote ? Anchor::kRemote
                     : has_req  ? Anchor::kRequest
                     : has_local ? Anchor::kLocal
                                 : Anchor::kFlush;

  // ---- class 4: slice validation -------------------------------------------
  bool slices_ok = true;
  RegionKey local_key{info.initiator, info.local_lkey};
  RegionKey remote_key{};
  ShadowRegion* local_region = nullptr;
  ShadowRegion* remote_region = nullptr;
  const auto laddr = reinterpret_cast<std::uint64_t>(info.local_addr);
  if (info.local_lkey != fabric::kInvalidKey) {
    local_region = find_region(local_key);
    if (local_region == nullptr || laddr < local_region->base ||
        laddr + info.local_len > local_region->base + local_region->len) {
      Violation v;
      v.kind = ViolationKind::kBadSlice;
      v.op = make_ref(st, laddr, info.local_len);
      v.message = local_region == nullptr
                      ? "local slice lkey is not a registered region"
                      : "local slice out of bounds of its registered region";
      report(std::move(v));
      slices_ok = false;
    }
  }
  if (slices_ok && info.remote_rkey != fabric::kInvalidKey) {
    remote_region = resolve_rkey(info.target, info.remote_rkey, &remote_key);
    if (remote_region == nullptr || info.remote_addr < remote_region->base ||
        info.remote_addr + info.remote_len >
            remote_region->base + remote_region->len) {
      Violation v;
      v.kind = ViolationKind::kBadSlice;
      v.op = make_ref(st, info.remote_addr, info.remote_len);
      v.message = remote_region == nullptr
                      ? "remote slice rkey is not registered on the target"
                      : "remote slice out of bounds of the target region";
      report(std::move(v));
      slices_ok = false;
    }
  }

  // ---- conflict checks + span claims ---------------------------------------
  if (slices_ok) {
    std::optional<SpanKind> local_claim;
    std::optional<SpanKind> remote_claim;
    AccessClass local_access = AccessClass::kWireRead;
    AccessClass remote_access = AccessClass::kWireWrite;
    bool has_local_side = info.local_lkey != fabric::kInvalidKey;
    bool has_remote_side = info.remote_rkey != fabric::kInvalidKey;
    switch (info.kind) {
      case CheckOpKind::kPut:
        local_access = AccessClass::kWireRead;
        local_claim = SpanKind::kSrcPinned;
        remote_access = AccessClass::kWireWrite;
        remote_claim = SpanKind::kLanding;
        break;
      case CheckOpKind::kGet:
        local_access = AccessClass::kWireWrite;
        local_claim = SpanKind::kDstPinned;
        remote_access = AccessClass::kWireRead;
        remote_claim = SpanKind::kWireRead;
        break;
      case CheckOpKind::kOsPut:
        // The remote window belongs to the peer's advert claim; checked but
        // not re-claimed.
        local_access = AccessClass::kWireRead;
        local_claim = SpanKind::kSrcPinned;
        remote_access = AccessClass::kWireWrite;
        break;
      case CheckOpKind::kOsGet:
      case CheckOpKind::kRndvGet:
        local_access = AccessClass::kWireWrite;
        local_claim = SpanKind::kDstPinned;
        remote_access = AccessClass::kWireRead;
        break;
      case CheckOpKind::kAdvert:
        local_access = info.advert_is_send ? AccessClass::kUserRead
                                           : AccessClass::kUserWrite;
        local_claim = info.advert_is_send ? SpanKind::kAdvertSend
                                          : SpanKind::kAdvertRecv;
        has_remote_side = false;
        break;
      case CheckOpKind::kEagerSend:  // payload copied out at post time
      case CheckOpKind::kSignal:
      case CheckOpKind::kUserAccess:
      case CheckOpKind::kRegister:
      case CheckOpKind::kFinalize:
        has_local_side = false;
        has_remote_side = false;
        break;
    }
    bool reported = false;
    if (has_local_side) {
      reported = check_access(info.initiator, laddr, info.local_len,
                              local_access, make_ref(st, laddr, info.local_len),
                              serial);
      if (local_claim && info.local_len > 0)
        claim_span(st, local_key, laddr, laddr + info.local_len, *local_claim,
                   /*remote_group=*/false);
    }
    if (has_remote_side && !reported) {
      reported = check_access(
          info.target, info.remote_addr, info.remote_len, remote_access,
          make_ref(st, info.remote_addr, info.remote_len), serial);
    }
    if (has_remote_side && remote_claim && info.remote_len > 0)
      claim_span(st, remote_key, info.remote_addr,
                 info.remote_addr + info.remote_len, *remote_claim,
                 /*remote_group=*/true);
  }

  // ---- class 5: duplicate outstanding local ids ----------------------------
  if (has_local) {
    const auto key = std::make_pair(info.initiator, *info.local_id);
    auto lit = local_ids_.find(key);
    if (lit != local_ids_.end()) {
      Violation v;
      v.kind = ViolationKind::kIdHygiene;
      v.op = make_ref(st, laddr, info.local_len);
      auto oit = ops_.find(lit->second);
      if (oit != ops_.end())
        v.prior = make_ref(oit->second,
                           reinterpret_cast<std::uint64_t>(
                               oit->second.info.local_addr),
                           oit->second.info.local_len);
      std::ostringstream os;
      os << "local id " << *info.local_id
         << " posted while still outstanding on rank" << info.initiator;
      v.message = os.str();
      report(std::move(v));
      // Rebind to the newest op; the older one will never see its pop.
      auto old = ops_.find(lit->second);
      if (old != ops_.end()) {
        old->second.wait_local = false;
        fire_anchor(old->second, Anchor::kLocal);
        const std::uint64_t old_serial = lit->second;
        local_ids_.erase(lit);
        maybe_retire(old_serial);
      } else {
        local_ids_.erase(lit);
      }
    }
    local_ids_[key] = serial;
    st.wait_local = true;
  }
  if (has_req) {
    requests_[{info.initiator, static_cast<std::uint8_t>(info.request_ns),
               *info.request}] = serial;
    st.wait_request = true;
  }
  maybe_retire(serial);
}

// ---- completion-side events --------------------------------------------------

void Checker::on_local_id_popped(fabric::Rank initiator, std::uint64_t id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = local_ids_.find({initiator, id});
  if (it == local_ids_.end()) return;  // posted while disabled, or rebound
  const std::uint64_t serial = it->second;
  local_ids_.erase(it);
  auto oit = ops_.find(serial);
  if (oit == ops_.end()) return;
  oit->second.wait_local = false;
  fire_anchor(oit->second, Anchor::kLocal);
  maybe_retire(serial);
}

void Checker::on_remote_id_popped(fabric::Rank target, std::uint64_t id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [first, last] = remote_ids_.equal_range({target, id});
  if (first == last) {
    Violation v;
    v.kind = ViolationKind::kIdHygiene;
    v.op.kind = CheckOpKind::kSignal;
    v.op.initiator = target;
    v.op.target = target;
    v.op.has_remote_id = true;
    v.op.remote_id = id;
    std::ostringstream os;
    os << "remote id " << id << " delivered on rank" << target
       << " with no matching outstanding post";
    v.message = os.str();
    report(std::move(v));
    return;
  }
  // Oldest first: ledger slots and ring entries deliver FIFO per peer, and
  // equal keys in a multimap preserve insertion order.
  const std::uint64_t serial = first->second;
  remote_ids_.erase(first);
  auto oit = ops_.find(serial);
  if (oit == ops_.end()) return;
  oit->second.wait_remote = false;
  fire_anchor(oit->second, Anchor::kRemote);
  maybe_retire(serial);
}

void Checker::on_request_done(fabric::Rank owner, RequestNs ns,
                              std::uint64_t request) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = requests_.find({owner, static_cast<std::uint8_t>(ns), request});
  if (it == requests_.end()) return;
  const std::uint64_t serial = it->second;
  requests_.erase(it);
  auto oit = ops_.find(serial);
  if (oit == ops_.end()) return;
  oit->second.wait_request = false;
  fire_anchor(oit->second, Anchor::kRequest);
  maybe_retire(serial);
}

void Checker::on_op_error(std::uint64_t serial, bool remote_id_sent) {
  if (serial == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ops_.find(serial);
  if (it == ops_.end()) return;
  OpState& st = it->second;
  release_group(st, st.local_spans);
  release_group(st, st.remote_spans);
  if (st.wait_local && st.info.local_id) {
    auto lit = local_ids_.find({st.info.initiator, *st.info.local_id});
    if (lit != local_ids_.end() && lit->second == serial) local_ids_.erase(lit);
    st.wait_local = false;
  }
  if (st.wait_request && st.info.request) {
    requests_.erase({st.info.initiator,
                     static_cast<std::uint8_t>(st.info.request_ns),
                     *st.info.request});
    st.wait_request = false;
  }
  if (st.wait_remote && !remote_id_sent && st.info.remote_id) {
    auto [first, last] =
        remote_ids_.equal_range({st.info.target, *st.info.remote_id});
    for (auto rit = first; rit != last; ++rit) {
      if (rit->second == serial) {
        remote_ids_.erase(rit);
        break;
      }
    }
    st.wait_remote = false;
  }
  maybe_retire(serial);
}

void Checker::on_remote_id_lost(fabric::Rank target, std::uint64_t id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [first, last] = remote_ids_.equal_range({target, id});
  if (first == last) return;
  const std::uint64_t serial = first->second;
  remote_ids_.erase(first);
  auto oit = ops_.find(serial);
  if (oit == ops_.end()) return;
  oit->second.wait_remote = false;
  fire_anchor(oit->second, Anchor::kRemote);
  maybe_retire(serial);
}

void Checker::on_peer_dead(fabric::Rank initiator, fabric::Rank peer) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> serials;
  for (auto& [serial, st] : ops_) {
    if (st.info.initiator == initiator && st.info.target == peer)
      serials.push_back(serial);
  }
  for (const std::uint64_t serial : serials) drop_op(serial);
}

void Checker::on_peer_recovered(fabric::Rank initiator, fabric::Rank peer) {
  // Same cleanup as peer death: completions of pre-fence ops can never
  // arrive in the new epoch, and that is expected rather than a violation.
  on_peer_dead(initiator, peer);
}

void Checker::on_flush(fabric::Rank initiator, fabric::Rank peer) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> serials;
  for (auto& [serial, st] : ops_) {
    if (st.committed && st.info.initiator == initiator &&
        st.info.target == peer)
      serials.push_back(serial);
  }
  for (const std::uint64_t serial : serials) {
    auto it = ops_.find(serial);
    if (it == ops_.end()) continue;
    fire_anchor(it->second, Anchor::kFlush);
    maybe_retire(serial);
  }
}

void Checker::on_finalize(fabric::Rank rank) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> serials;
  for (auto& [serial, st] : ops_) {
    if (st.info.initiator == rank) serials.push_back(serial);
  }
  for (const std::uint64_t serial : serials) {
    auto it = ops_.find(serial);
    if (it == ops_.end()) continue;
    OpState& st = it->second;
    if (st.committed && (st.wait_local || st.wait_remote || st.wait_request)) {
      Violation v;
      v.kind = ViolationKind::kIdHygiene;
      v.op = make_ref(st, reinterpret_cast<std::uint64_t>(st.info.local_addr),
                      st.info.local_len);
      std::ostringstream os;
      os << "op still in flight at rank" << rank << " finalize (";
      const char* sep = "";
      if (st.wait_local) { os << sep << "local id undelivered"; sep = ", "; }
      if (st.wait_remote) { os << sep << "remote id undelivered"; sep = ", "; }
      if (st.wait_request) { os << sep << "request incomplete"; }
      os << ")";
      v.message = os.str();
      report(std::move(v));
    }
    drop_op(serial);
  }
}

// ---- application accesses ----------------------------------------------------

void Checker::note_user_read(fabric::Rank rank, const void* addr,
                             std::size_t len) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  OpRef who;
  who.kind = CheckOpKind::kUserAccess;
  who.initiator = rank;
  who.target = rank;
  who.addr = reinterpret_cast<std::uint64_t>(addr);
  who.len = len;
  check_access(rank, who.addr, len, AccessClass::kUserRead, who, 0);
}

void Checker::note_user_write(fabric::Rank rank, const void* addr,
                              std::size_t len) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  OpRef who;
  who.kind = CheckOpKind::kUserAccess;
  who.initiator = rank;
  who.target = rank;
  who.addr = reinterpret_cast<std::uint64_t>(addr);
  who.len = len;
  check_access(rank, who.addr, len, AccessClass::kUserWrite, who, 0);
}

}  // namespace photon::check
