// Violation vocabulary for the PhotonCheck shadow-state validator.
//
// A Violation names a protocol rule that was broken, the operation that broke
// it, and (when the rule is a conflict between two operations) the prior
// operation it collided with. Op records are small value types so reports stay
// meaningful after the offending op has completed or been recycled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "fabric/types.hpp"

namespace photon::check {

/// The protocol rule classes the checker enforces (ISSUE 2 classes 1-5).
enum class ViolationKind : std::uint8_t {
  /// Source buffer of a put was touched, re-posted, or unregistered before
  /// the local completion id was delivered (class 1).
  kUseAfterPut,
  /// A landing range was read, written, or re-advertised at the target before
  /// the remote completion id was delivered (class 2).
  kReadOfUnlanded,
  /// Overlapping concurrent puts/gets to the same remote range with no
  /// intervening completion (class 3).
  kRmaRace,
  /// Unregistered or out-of-bounds slice passed to a post (class 4).
  kBadSlice,
  /// Completion-id hygiene: duplicate outstanding local ids, orphan remote
  /// ids, double unregister, ops leaked at finalize (class 5).
  kIdHygiene,
};

/// What kind of user-facing operation an OpRef describes.
enum class CheckOpKind : std::uint8_t {
  kPut,        // put_with_completion, direct path
  kEagerSend,  // send_with_completion via eager ring
  kGet,        // get_with_completion
  kSignal,     // bare completion-id deposit
  kOsPut,      // rendezvous one-sided put against an advertised buffer
  kOsGet,      // rendezvous one-sided get against an advertised buffer
  kRndvGet,    // msg-engine rendezvous get
  kAdvert,     // rendezvous buffer advertisement (recv or send side)
  kUserAccess, // application touch of a buffer (note_user_read/write)
  kRegister,   // memory registration / deregistration
  kFinalize,   // teardown scan
};

const char* to_string(ViolationKind kind) noexcept;
const char* to_string(CheckOpKind kind) noexcept;

/// Compact record of one operation, kept alive in violation reports even
/// after the op itself retires.
struct OpRef {
  std::uint64_t serial = 0;  ///< checker-assigned, unique per fabric
  CheckOpKind kind = CheckOpKind::kUserAccess;
  fabric::Rank initiator = 0;
  fabric::Rank target = 0;
  std::uint64_t addr = 0;  ///< the span this record refers to (local or remote)
  std::size_t len = 0;
  bool has_local_id = false;
  std::uint64_t local_id = 0;
  bool has_remote_id = false;
  std::uint64_t remote_id = 0;
};

struct Violation {
  ViolationKind kind = ViolationKind::kIdHygiene;
  OpRef op;                      ///< the op that tripped the rule
  std::optional<OpRef> prior;    ///< the earlier op it conflicts with, if any
  std::string message;           ///< one-line human-readable report
};

/// Render "put#12 rank0->rank2 [0x...+128) local_id=5" style op summaries.
std::string describe(const OpRef& op);

}  // namespace photon::check
