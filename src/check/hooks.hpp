// Hook gating for the PhotonCheck shadow-state validator.
//
// The Checker object itself is always compiled and linked (it is a member of
// Fabric), but every call site in the hot paths is wrapped in
// PHOTON_CHECK_HOOK so that a PHOTON_CHECK=OFF build contains literally no
// checker code on the post/completion paths — not even a branch.
//
//   PHOTON_CHECK_HOOK(checker.commit(serial));
//
// expands to the statement when the build was configured with
// -DPHOTON_CHECK=ON (which defines PHOTON_CHECK_ENABLED=1 globally) and to
// nothing otherwise. Expressions that must still compile in OFF builds (e.g.
// a serial variable initialization) use PHOTON_CHECK_EXPR(expr, fallback).
#pragma once

#include "check/checker.hpp"  // IWYU pragma: export

#ifndef PHOTON_CHECK_ENABLED
#define PHOTON_CHECK_ENABLED 0
#endif

#if PHOTON_CHECK_ENABLED
#define PHOTON_CHECK_HOOK(stmt) \
  do {                          \
    stmt;                       \
  } while (false)
#define PHOTON_CHECK_EXPR(expr, fallback) (expr)
#else
#define PHOTON_CHECK_HOOK(stmt) \
  do {                          \
  } while (false)
#define PHOTON_CHECK_EXPR(expr, fallback) (fallback)
#endif
