#include "parcels/transport.hpp"

#include <cstring>

#include "check/hooks.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace photon::parcels {

using fabric::Rank;

namespace {
/// Wall-clock budget for draining in-flight sends at transport teardown.
/// Peer FINs normally arrive within microseconds; the bound only matters
/// when a peer died mid-protocol.
constexpr std::uint64_t kTeardownDrainNs = 2'000'000'000ULL;
}  // namespace

// ---- PhotonTransport ----------------------------------------------------------

PhotonTransport::~PhotonTransport() {
  // A large-parcel advert stays pinned until the receiver's FIN lands; the
  // FIN can arrive after our last poll(). Drain here so the registration and
  // its rendezvous request do not outlive the transport (PhotonCheck reports
  // exactly that leak at finalize).
  util::Deadline dl(kTeardownDrainNs);
  while (!pending_large_.empty() && !dl.expired()) {
    ph_.progress();
    reap_large_sends();
    if (!pending_large_.empty()) ph_.progress_jump();
  }
  if (!pending_large_.empty())
    log::warn("parcels: ", pending_large_.size(),
              " large send(s) still in flight at transport teardown");
}

Status PhotonTransport::send(Rank dst, HandlerId h,
                             std::span<const std::byte> args) {
  if (args.size() <= ph_.config().eager_threshold) {
    return ph_.send_with_completion(dst, args, std::nullopt, h);
  }

  // Large parcel: pin the body, advertise it, send a control parcel.
  LargeSend ls;
  ls.body.assign(args.begin(), args.end());
  auto desc = ph_.register_buffer(ls.body.data(), ls.body.size());
  if (!desc.ok()) return desc.status();
  ls.desc = desc.value();
  const std::uint64_t tag = next_tag_++;
  auto rq = ph_.post_send_buffer_rq(dst, ls.desc, tag);
  if (!rq.ok()) {
    ph_.unregister_buffer(ls.desc);
    return rq.status();
  }
  ls.request = rq.value();

  LargeCtrl ctrl{h, ls.body.size(), tag};
  const Status st = ph_.send_with_completion(
      dst, std::as_bytes(std::span<const LargeCtrl, 1>(&ctrl, 1)), std::nullopt,
      kLargeBit);
  if (st != Status::Ok) {
    ph_.unregister_buffer(ls.desc);
    return st;
  }
  pending_large_.push_back(std::move(ls));
  return Status::Ok;
}

Status PhotonTransport::quiesce(std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  // Pending large-send adverts first: dead peers' requests resolve with
  // PeerUnreachable via the core health sweep, live peers' via their FIN.
  while (!pending_large_.empty()) {
    ph_.progress();
    reap_large_sends();
    if (pending_large_.empty()) break;
    if (dl.expired()) return Status::Retry;
    ph_.idle_wait_step(spins);
  }
  return ph_.quiesce(timeout_ns);
}

void PhotonTransport::reap_large_sends() {
  for (std::size_t i = 0; i < pending_large_.size();) {
    bool done = false;
    const Status st = ph_.test(pending_large_[i].request, done);
    if (st != Status::Ok || done) {
      ph_.unregister_buffer(pending_large_[i].desc);
      pending_large_[i] = std::move(pending_large_.back());
      pending_large_.pop_back();
    } else {
      ++i;
    }
  }
}

std::optional<Parcel> PhotonTransport::poll() {
  reap_large_sends();
  auto ev = ph_.probe_event();
  if (!ev) return std::nullopt;

  if ((ev->id & kLargeBit) == 0) {
    Parcel p;
    p.handler = static_cast<HandlerId>(ev->id);
    p.src = ev->peer;
    p.args = std::move(ev->payload);
    return p;
  }

  // Large-parcel control: pull the body with the rendezvous protocol.
  LargeCtrl ctrl;
  if (ev->payload.size() != sizeof(ctrl)) {
    log::warn("parcels: malformed large-parcel control from ", ev->peer);
    return std::nullopt;
  }
  std::memcpy(&ctrl, ev->payload.data(), sizeof(ctrl));
  auto rb = ph_.wait_recv_rq(ev->peer, ctrl.tag);
  if (!rb.ok()) {
    log::warn("parcels: missing advert for large parcel tag ", ctrl.tag);
    return std::nullopt;
  }
  Parcel p;
  p.handler = static_cast<HandlerId>(ctrl.handler);
  p.src = ev->peer;
  p.args.resize(ctrl.size);
  auto dst = ph_.register_buffer(p.args.data(), p.args.size());
  if (!dst.ok()) return std::nullopt;
  auto get = ph_.post_os_get(ev->peer,
                             core::local_mut_slice(dst.value(), 0, ctrl.size),
                             rb.value());
  if (!get.ok() || ph_.wait(get.value()) != Status::Ok) {
    ph_.unregister_buffer(dst.value());
    return std::nullopt;
  }
  // The get's request has completed, so this read of the landed body is
  // legitimate — and the checker audits exactly that claim.
  PHOTON_CHECK_HOOK(ph_.nic().checker().note_user_read(ph_.rank(), p.args.data(),
                                                       p.args.size()));
  ph_.send_fin(ev->peer, rb.value());
  ph_.unregister_buffer(dst.value());
  return p;
}

// ---- MsgTransport ----------------------------------------------------------------

MsgTransport::~MsgTransport() {
  util::Deadline dl(kTeardownDrainNs);
  while (!in_flight_.empty() && !dl.expired()) {
    eng_.progress();
    reap_sends();
    if (!in_flight_.empty()) eng_.progress_jump();
  }
  if (!in_flight_.empty())
    log::warn("parcels: ", in_flight_.size(),
              " send(s) still in flight at transport teardown");
}

Status MsgTransport::send(Rank dst, HandlerId h,
                          std::span<const std::byte> args) {
  // isend requires the buffer to stay valid until completion; rendezvous
  // transfers read it remotely, so pin a copy until the request finishes.
  PendingSend ps;
  const bool needs_pin = args.size() > eng_.config().eager_threshold;
  std::span<const std::byte> wire = args;
  if (needs_pin) {
    ps.body.assign(args.begin(), args.end());
    wire = ps.body;
  }
  auto rq = eng_.isend(dst, h, wire);
  if (!rq.ok()) return rq.status();
  ps.request = rq.value();
  in_flight_.push_back(std::move(ps));
  reap_sends();
  return Status::Ok;
}

Status MsgTransport::quiesce(std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  while (!in_flight_.empty()) {
    eng_.progress();
    reap_sends();
    if (in_flight_.empty()) break;
    if (dl.expired()) return Status::Retry;
    eng_.idle_wait_step(spins);
  }
  return Status::Ok;
}

void MsgTransport::reap_sends() {
  for (std::size_t i = 0; i < in_flight_.size();) {
    bool done = false;
    const Status st = eng_.test(in_flight_[i].request, done);
    if (st != Status::Ok || done) {
      in_flight_[i] = std::move(in_flight_.back());
      in_flight_.pop_back();
    } else {
      ++i;
    }
  }
}

std::optional<Parcel> MsgTransport::poll() {
  reap_sends();
  auto info = eng_.iprobe(msg::kAnySource, msg::kAnyTag);
  if (!info) return std::nullopt;
  Parcel p;
  p.handler = static_cast<HandlerId>(info->tag);
  p.src = info->source;
  p.args.resize(info->len);
  auto got = eng_.recv(info->source, info->tag, p.args);
  if (!got.ok()) return std::nullopt;
  return p;
}

}  // namespace photon::parcels
