// The parcel engine: an HPX-5-flavoured active-message progress loop.
//
// Handlers run inline on the rank's thread (one scheduler per rank, as in a
// lightweight AMT runtime's network progress thread). Dispatch cost is a
// calibrated virtual-time knob. Quiescence detection uses a global
// sent/received credit count over remote atomics on rank 0 — itself an RMA
// use case.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>

#include "parcels/transport.hpp"
#include "util/timing.hpp"

namespace photon::parcels {

struct EngineConfig {
  std::uint64_t dispatch_cost_ns = 50;  ///< per-parcel scheduler cost
  std::size_t poll_batch = 16;          ///< parcels pulled per progress()
};

struct EngineStats {
  std::uint64_t sent = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t send_retries = 0;
};

class ParcelEngine {
 public:
  ParcelEngine(Transport& transport, HandlerRegistry& registry,
               const EngineConfig& cfg = {});
  /// Folds EngineStats into the process metrics registry (when enabled) as
  /// "parcels.*" counters.
  ~ParcelEngine();

  fabric::Rank rank() const { return transport_.rank(); }
  std::uint32_t size() const { return transport_.size(); }
  const EngineStats& stats() const noexcept { return stats_; }
  Transport& transport() noexcept { return transport_; }

  /// Send a parcel (blocks through transient back-pressure).
  void send(fabric::Rank dst, HandlerId h, std::span<const std::byte> args);

  /// Poll the transport and dispatch up to cfg.poll_batch parcels.
  /// Returns the number dispatched.
  std::size_t progress();

  /// Dispatch until `done()` returns true (local predicate), polling and
  /// running handlers in between. Wall-time bounded.
  template <typename Done>
  bool run_until(Done&& done, std::uint64_t timeout_ns = 30'000'000'000ULL);

  /// Local counts used by applications to build termination detection.
  std::uint64_t parcels_dispatched() const noexcept { return stats_.dispatched; }
  std::uint64_t parcels_sent() const noexcept { return stats_.sent; }

 private:
  friend class Context;
  Transport& transport_;
  HandlerRegistry& registry_;
  EngineConfig cfg_;
  EngineStats stats_;
  bool in_handler_ = false;
  std::deque<Parcel> ready_;  ///< parcels spawned while a handler runs
};

template <typename Done>
bool ParcelEngine::run_until(Done&& done, std::uint64_t timeout_ns) {
  const std::uint64_t deadline =
      timeout_ns;  // interpreted as a budget from now
  util::WallTimer timer;
  std::uint32_t spins = 0;
  while (!done()) {
    if (progress() == 0) {
      if (timer.elapsed_ns() > deadline) return false;
      // Yield before jumping so a lagging peer can publish earlier events.
      if (spins == 0) {
        ++spins;
        std::this_thread::yield();
        continue;
      }
      if (transport_.progress_jump()) {
        spins = 0;
        continue;
      }
      ++spins;
      if (spins >= 64)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      else
        std::this_thread::yield();
    } else {
      spins = 0;
    }
  }
  return true;
}

}  // namespace photon::parcels
