// Parcel (active message) types for the mini runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fabric/types.hpp"

namespace photon::parcels {

using HandlerId = std::uint32_t;
inline constexpr HandlerId kInvalidHandler = 0;

/// A parcel as delivered to a handler.
struct Parcel {
  HandlerId handler = kInvalidHandler;
  fabric::Rank src = 0;
  std::vector<std::byte> args;
};

class ParcelEngine;

/// Execution context handed to a running handler.
class Context {
 public:
  Context(ParcelEngine& engine, const Parcel& p) : engine_(engine), p_(p) {}

  fabric::Rank src() const noexcept { return p_.src; }
  HandlerId handler() const noexcept { return p_.handler; }
  std::span<const std::byte> args() const noexcept { return p_.args; }
  fabric::Rank rank() const noexcept;
  std::uint32_t size() const noexcept;

  /// Send a parcel back to the originator.
  void reply(HandlerId h, std::span<const std::byte> args);
  /// Send a parcel anywhere.
  void spawn(fabric::Rank dst, HandlerId h, std::span<const std::byte> args);

 private:
  ParcelEngine& engine_;
  const Parcel& p_;
};

using Handler = std::function<void(Context&)>;

/// Handler table; ids are stable small integers so they can ride the wire.
/// Register the same handlers in the same order on every rank (SPMD).
class HandlerRegistry {
 public:
  HandlerId add(Handler h) {
    handlers_.push_back(std::move(h));
    return static_cast<HandlerId>(handlers_.size());  // ids start at 1
  }

  const Handler* find(HandlerId id) const {
    if (id == kInvalidHandler || id > handlers_.size()) return nullptr;
    return &handlers_[id - 1];
  }

  std::size_t count() const noexcept { return handlers_.size(); }

 private:
  std::vector<Handler> handlers_;
};

}  // namespace photon::parcels
