// Transport abstraction for the parcel runtime, with adaptors over the
// Photon RMA middleware and the two-sided baseline. The pair exists so the
// runtime-integration experiment (R-7) can swap transports and measure the
// delta the paper's design targets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/photon.hpp"
#include "msg/engine.hpp"
#include "parcels/parcel.hpp"

namespace photon::parcels {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Nonblocking-ish parcel send (may progress internally; transient
  /// back-pressure is handled inside with bounded retries).
  virtual Status send(fabric::Rank dst, HandlerId h,
                      std::span<const std::byte> args) = 0;
  /// Poll for one arrived parcel.
  virtual std::optional<Parcel> poll() = 0;
  /// Drive background protocol work (FINs, credits).
  virtual void progress() = 0;
  /// Drain in-flight sends and background protocol work so teardown is
  /// leak-free even after a peer failure: work toward Down peers is
  /// reclaimed (attributed PeerUnreachable), not waited on. Retry on wall
  /// timeout.
  virtual Status quiesce(std::uint64_t timeout_ns) = 0;
  /// Idle-wait step (jump to the next pending virtual event). False if none.
  virtual bool progress_jump() = 0;

  virtual fabric::Rank rank() const = 0;
  virtual std::uint32_t size() const = 0;
  /// The owning rank's virtual clock (for runtime-level cost charging).
  virtual fabric::VClock& clock() = 0;
};

/// Parcels over Photon PWC.
///
/// Wire mapping: small parcels ride send_with_completion with
/// id = handler (eager payload = args). Large parcels advertise the source
/// buffer (post_send_buffer_rq) and send a control parcel; the receiver
/// os_gets the body, FINs, then dispatches. The control parcel uses the
/// high id bit as a marker.
class PhotonTransport final : public Transport {
 public:
  explicit PhotonTransport(core::Photon& ph) : ph_(ph) {}
  /// Drains outstanding large-send adverts (bounded) so no pinned body or
  /// rendezvous request leaks past teardown.
  ~PhotonTransport() override;

  Status send(fabric::Rank dst, HandlerId h,
              std::span<const std::byte> args) override;
  std::optional<Parcel> poll() override;
  void progress() override { ph_.progress(); reap_large_sends(); }
  Status quiesce(std::uint64_t timeout_ns) override;
  bool progress_jump() override { return ph_.progress_jump(); }

  fabric::Rank rank() const override { return ph_.rank(); }
  std::uint32_t size() const override { return ph_.size(); }
  fabric::VClock& clock() override { return ph_.clock(); }

  core::Photon& photon() noexcept { return ph_; }

 private:
  static constexpr std::uint64_t kLargeBit = 1ULL << 62;

  struct LargeSend {
    std::vector<std::byte> body;  ///< kept alive until FIN
    core::BufferDescriptor desc;
    core::RequestId request = core::kInvalidRequest;
  };
  struct LargeCtrl {
    std::uint64_t handler = 0;
    std::uint64_t size = 0;
    std::uint64_t tag = 0;
  };

  void reap_large_sends();

  core::Photon& ph_;
  std::uint64_t next_tag_ = 1;
  std::vector<LargeSend> pending_large_;
};

/// Parcels over the two-sided baseline (tag = handler id).
class MsgTransport final : public Transport {
 public:
  explicit MsgTransport(msg::Engine& eng) : eng_(eng) {}
  /// Drains in-flight sends (bounded) so pinned rendezvous bodies and their
  /// requests do not leak past teardown.
  ~MsgTransport() override;

  Status send(fabric::Rank dst, HandlerId h,
              std::span<const std::byte> args) override;
  std::optional<Parcel> poll() override;
  void progress() override { eng_.progress(); reap_sends(); }
  Status quiesce(std::uint64_t timeout_ns) override;
  bool progress_jump() override { return eng_.progress_jump(); }

  fabric::Rank rank() const override { return eng_.rank(); }
  std::uint32_t size() const override { return eng_.size(); }
  fabric::VClock& clock() override { return eng_.clock(); }

  msg::Engine& engine() noexcept { return eng_; }

 private:
  void reap_sends();

  struct PendingSend {
    msg::ReqId request;
    std::vector<std::byte> body;  ///< pinned for rendezvous-sized parcels
  };

  msg::Engine& eng_;
  std::vector<PendingSend> in_flight_;
};

}  // namespace photon::parcels
