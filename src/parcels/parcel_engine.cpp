#include "parcels/parcel_engine.hpp"

#include <stdexcept>
#include <thread>

#include "fabric/nic.hpp"
#include "telemetry/hooks.hpp"
#include "util/timing.hpp"

namespace photon::parcels {

fabric::Rank Context::rank() const noexcept { return engine_.transport().rank(); }
std::uint32_t Context::size() const noexcept { return engine_.transport().size(); }

void Context::reply(HandlerId h, std::span<const std::byte> args) {
  engine_.send(p_.src, h, args);
}

void Context::spawn(fabric::Rank dst, HandlerId h,
                    std::span<const std::byte> args) {
  engine_.send(dst, h, args);
}

ParcelEngine::ParcelEngine(Transport& transport, HandlerRegistry& registry,
                           const EngineConfig& cfg)
    : transport_(transport), registry_(registry), cfg_(cfg) {}

ParcelEngine::~ParcelEngine() {
  PHOTON_TELEM_HOOK({
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::process();
    if (reg.enabled()) {
      auto add = [&reg](const char* name, std::uint64_t v) {
        if (v != 0) reg.counter(std::string("parcels.") + name).add(v);
      };
      add("sent", stats_.sent);
      add("dispatched", stats_.dispatched);
      add("send_retries", stats_.send_retries);
    }
  });
}

void ParcelEngine::send(fabric::Rank dst, HandlerId h,
                        std::span<const std::byte> args) {
  util::Deadline dl(30'000'000'000ULL);
  std::uint32_t spins = 0;
  for (;;) {
    const Status st = transport_.send(dst, h, args);
    if (st == Status::Ok) {
      ++stats_.sent;
      return;
    }
    if (!transient(st))
      throw std::runtime_error("parcel send failed: " +
                               std::string(status_name(st)));
    ++stats_.send_retries;
    if (dl.expired()) throw std::runtime_error("parcel send timed out");
    transport_.progress();
    (void)transport_.progress_jump();
    // Back-pressure relief may require dispatching inbound parcels (the
    // peer could be blocked on us) — but never reenter a running handler.
    if (!in_handler_) (void)progress();
    ++spins;
    if (spins >= 64)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    else
      std::this_thread::yield();
  }
}

std::size_t ParcelEngine::progress() {
  if (in_handler_) return 0;
  transport_.progress();
  std::size_t dispatched = 0;
  for (std::size_t i = 0; i < cfg_.poll_batch; ++i) {
    std::optional<Parcel> p;
    if (!ready_.empty()) {
      p = std::move(ready_.front());
      ready_.pop_front();
    } else {
      p = transport_.poll();
    }
    if (!p) break;
    const Handler* h = registry_.find(p->handler);
    if (h == nullptr)
      throw std::runtime_error("parcel for unregistered handler " +
                               std::to_string(p->handler));
    transport_.clock().add(cfg_.dispatch_cost_ns);
    Context ctx(*this, *p);
    in_handler_ = true;
    (*h)(ctx);
    in_handler_ = false;
    ++stats_.dispatched;
    ++dispatched;
  }
  return dispatched;
}

}  // namespace photon::parcels
