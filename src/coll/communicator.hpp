// RMA collectives built on Photon's PWC primitives.
//
// Algorithms (the standard RDMA-friendly choices):
//   * barrier    — dissemination (log2 P rounds of pure doorbell signals)
//   * broadcast  — binomial tree of eager block pushes
//   * reduce     — binomial tree fold toward the root
//   * allreduce  — recursive doubling (with pre/post fold for non-power-of-2)
//   * allgather  — ring (P-1 steps of neighbor pushes)
//   * alltoall   — pairwise exchange (P-1 rounds)
//   * gather     — linear pushes to the root
//
// Data moves as eager-ring blocks chunked to the Photon eager threshold,
// identified by (sequence, round, chunk) packed into the 64-bit completion
// id. A reorder stash tolerates interleaving between rounds and peers.
//
// Usage contract: collectives are SPMD — every member of the active group
// calls the same collectives in the same order on the same Communicator.
// While a collective is in flight the Communicator owns the Photon event
// stream; events whose ids are outside the collective namespace are
// preserved and readable via take_foreign_events().
//
// Fault tolerance: collectives run over an *active group*, initially all P
// ranks. shrink() contracts it around peers the fabric reports Down;
// rejoin() re-admits a recovered rank after fencing a fresh epoch toward it
// and resynchronizes the collective sequence number. Block-indexed buffers
// (allgather / alltoall / gather / scatter) are laid out by *group index*,
// which equals the world rank until the group shrinks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "coll/reduce_op.hpp"
#include "core/photon.hpp"

namespace photon::coll {

/// Per-communicator collective counters (single-threaded; owned by the rank).
struct CollStats {
  std::uint64_t barriers = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t reductions = 0;   ///< reduce + allreduce (reduce_impl entries)
  std::uint64_t allgathers = 0;
  std::uint64_t alltoalls = 0;
  std::uint64_t gathers = 0;
  std::uint64_t scatters = 0;
  std::uint64_t blocks_sent = 0;  ///< eager chunks pushed by send_block
  std::uint64_t block_bytes_sent = 0;
  std::uint64_t flags_sent = 0;   ///< pure-doorbell signals
  std::uint64_t foreign_events = 0;  ///< non-collective events preserved
};

class Communicator {
 public:
  explicit Communicator(core::Photon& ph);
  /// Folds CollStats into the process metrics registry (when enabled) as
  /// "coll.*" counters.
  ~Communicator();

  fabric::Rank rank() const noexcept { return ph_.rank(); }
  std::uint32_t size() const noexcept { return ph_.size(); }
  const CollStats& stats() const noexcept { return stats_; }

  /// Active group (sorted world ranks). group_size() == size() until
  /// shrink() removes failed members.
  const std::vector<fabric::Rank>& group() const noexcept { return group_; }
  std::uint32_t group_size() const noexcept {
    return static_cast<std::uint32_t>(group_.size());
  }
  /// Remove every group member the fabric currently reports Down. Collective
  /// among survivors: each must observe the same Down set (guaranteed under
  /// a fabric-manager-style kill) and call shrink() at the same point in its
  /// collective sequence. Returns the number of members removed.
  std::size_t shrink();
  /// Re-admit `r` after its link reopens. Survivors fence a fresh epoch
  /// toward `r` (Nic::try_recover) and reinsert it; the lowest-ranked
  /// survivor then sends `r` the current collective sequence number so block
  /// ids realign. The recovering rank calls rejoin(its own rank) and adopts
  /// the sequence it receives. Collective among the post-rejoin group.
  Status rejoin(fabric::Rank r);

  void barrier();
  /// Binomial-tree broadcast: log2(P) rounds; best for small payloads.
  void broadcast(std::span<std::byte> data, fabric::Rank root);
  /// Pipelined-ring broadcast: chunks stream around the ring so every link
  /// is busy; latency ~ (P - 2 + chunks) * chunk_time. Wins for large
  /// payloads (see bench_bcast_ablation).
  void broadcast_pipelined(std::span<std::byte> data, fabric::Rank root);
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all);
  void alltoall(std::span<const std::byte> send, std::span<std::byte> recv,
                std::size_t block);
  void gather(std::span<const std::byte> mine, std::span<std::byte> all,
              fabric::Rank root);
  /// Root holds P blocks; every rank receives its own.
  void scatter(std::span<const std::byte> all, std::span<std::byte> mine,
               fabric::Rank root);

  template <typename T>
  void allreduce(std::span<T> data, ReduceOp op) {
    reduce_impl(std::as_writable_bytes(data), op, sizeof(T),
                [op](void* a, const void* b, std::size_t n) {
                  apply(op, static_cast<T*>(a), static_cast<const T*>(b), n);
                },
                /*root=*/group_.front(), /*all=*/true);
  }

  /// Reduce-scatter: elementwise reduce a group_size()*count array, the
  /// member at group index i keeps block i (count elements). Implemented as
  /// reduce-to-lowest-member + scatter.
  template <typename T>
  void reduce_scatter(std::span<T> data, std::span<T> mine, ReduceOp op) {
    if (data.size() != mine.size() * group_size())
      throw std::invalid_argument("reduce_scatter: data != P * mine");
    const fabric::Rank root = group_.front();
    reduce(data, op, root);
    scatter(std::as_bytes(data), std::as_writable_bytes(mine), root);
  }

  template <typename T>
  void reduce(std::span<T> data, ReduceOp op, fabric::Rank root) {
    reduce_impl(std::as_writable_bytes(data), op, sizeof(T),
                [op](void* a, const void* b, std::size_t n) {
                  apply(op, static_cast<T*>(a), static_cast<const T*>(b), n);
                },
                root, /*all=*/false);
  }

  /// Scalar convenience.
  template <typename T>
  T allreduce_one(T v, ReduceOp op) {
    allreduce(std::span<T>(&v, 1), op);
    return v;
  }

  /// Events that arrived during collectives but belong to the application.
  std::deque<core::ProbeEvent> take_foreign_events();

  /// Collective-id namespace marker (high bit).
  static constexpr std::uint64_t kCollBit = 1ULL << 63;

 private:
  using Combine = std::function<void(void*, const void*, std::size_t)>;

  /// Push `data` to `peer` as one or more eager chunks under (seq, round).
  void send_block(fabric::Rank peer, std::uint32_t round,
                  std::span<const std::byte> data);
  /// Await the matching block from `peer` into `out`; returns bytes received.
  std::size_t recv_block(fabric::Rank peer, std::uint32_t round,
                         std::span<std::byte> out);
  void send_flag(fabric::Rank peer, std::uint32_t round);
  void recv_flag(fabric::Rank peer, std::uint32_t round);

  void reduce_impl(std::span<std::byte> data, ReduceOp op, std::size_t elem,
                   const Combine& combine, fabric::Rank root, bool all);

  std::uint64_t block_id(std::uint32_t round, std::uint32_t chunk,
                         std::uint32_t total_chunks) const;
  /// Blocks until the event with `id` from `peer` is available; payload (may
  /// be empty for flags) is returned.
  std::vector<std::byte> await(fabric::Rank peer, std::uint64_t id);

  // Virtual-rank helpers over the active group. Algorithms do all modular
  // arithmetic in group-index space and map to world ranks at the wire.
  std::uint32_t vsize() const noexcept {
    return static_cast<std::uint32_t>(group_.size());
  }
  std::uint32_t vrank() const noexcept { return gidx_; }
  fabric::Rank world(std::uint32_t v) const noexcept { return group_[v]; }
  /// Group index of world rank `r`; throws if `r` is not an active member.
  std::uint32_t vindex_of(fabric::Rank r) const;

  core::Photon& ph_;
  CollStats stats_;
  std::uint64_t seq_ = 0;  ///< collective sequence number (same on all ranks)
  std::vector<fabric::Rank> group_;  ///< active members, sorted world ranks
  std::uint32_t gidx_ = 0;           ///< my index in group_

  struct Key {
    fabric::Rank peer;
    std::uint64_t id;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.id * 1000003u + k.peer);
    }
  };
  std::unordered_map<Key, std::deque<std::vector<std::byte>>, KeyHash> stash_;
  std::deque<core::ProbeEvent> foreign_;
};

}  // namespace photon::coll
