// Reduction operator/type dispatch for the RMA collectives.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

namespace photon::coll {

enum class ReduceOp { kSum, kProd, kMin, kMax, kBand, kBor, kBxor };

/// Apply `op` elementwise: inout[i] = inout[i] (op) in[i].
template <typename T>
void apply(ReduceOp op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) inout[i] += in[i];
      break;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < n; ++i) inout[i] *= in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
    case ReduceOp::kBand:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) inout[i] &= in[i];
      }
      break;
    case ReduceOp::kBor:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) inout[i] |= in[i];
      }
      break;
    case ReduceOp::kBxor:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) inout[i] ^= in[i];
      }
      break;
  }
}

}  // namespace photon::coll
