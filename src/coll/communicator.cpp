#include "coll/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <thread>

#include "telemetry/hooks.hpp"
#include "util/timing.hpp"

namespace photon::coll {

using fabric::Rank;

namespace {
constexpr std::uint64_t kCollTimeoutNs = 30'000'000'000ULL;  // 30 s wall
// seq_ is pre-incremented by every collective, so block_id never emits an id
// with sequence 0: the whole seq==0 subspace is free for control messages.
constexpr std::uint64_t kRejoinSyncId = Communicator::kCollBit | 0x1;
}

Communicator::Communicator(core::Photon& ph) : ph_(ph) {
  if (ph_.size() > 256)
    throw std::invalid_argument("Communicator supports up to 256 ranks");
  group_.resize(ph_.size());
  for (std::uint32_t r = 0; r < ph_.size(); ++r) group_[r] = r;
  gidx_ = ph_.rank();
}

std::uint32_t Communicator::vindex_of(Rank r) const {
  const auto it = std::find(group_.begin(), group_.end(), r);
  if (it == group_.end())
    throw std::invalid_argument("rank " + std::to_string(r) +
                                " is not in the active group");
  return static_cast<std::uint32_t>(it - group_.begin());
}

std::size_t Communicator::shrink() {
  std::vector<Rank> keep;
  keep.reserve(group_.size());
  for (const Rank r : group_)
    if (r == rank() || !ph_.peer_down(r)) keep.push_back(r);
  const std::size_t removed = group_.size() - keep.size();
  group_ = std::move(keep);
  gidx_ = vindex_of(rank());
  return removed;
}

Status Communicator::rejoin(Rank r) {
  if (r >= ph_.size()) return Status::BadArgument;
  if (r == rank()) {
    // Recovering side. Our group never shrank (the outage cut the others'
    // view of us, not ours of them): wait for the sequence resync from the
    // lowest-ranked other member so block ids line up again.
    Rank syncer = r;
    for (const Rank m : group_)
      if (m != r) {
        syncer = m;
        break;
      }
    if (syncer == r) return Status::Ok;  // singleton group
    const std::vector<std::byte> p = await(syncer, kRejoinSyncId);
    std::uint64_t s = 0;
    std::memcpy(&s, p.data(), std::min(p.size(), sizeof(s)));
    seq_ = s;
    return Status::Ok;
  }
  // Survivor side: fence a fresh epoch toward the returning rank, then
  // re-admit it at its sorted position.
  if (!ph_.nic().try_recover(r)) return Status::PeerUnreachable;
  if (std::find(group_.begin(), group_.end(), r) == group_.end()) {
    group_.insert(std::upper_bound(group_.begin(), group_.end(), r), r);
    gidx_ = vindex_of(rank());
  }
  Rank low = group_.front();
  if (low == r) low = group_[1];
  if (rank() == low) {
    const std::uint64_t s = seq_;
    const Status st = ph_.send_with_completion(
        r, std::as_bytes(std::span<const std::uint64_t>(&s, 1)), std::nullopt,
        kRejoinSyncId, kCollTimeoutNs);
    if (st != Status::Ok) return st;
  }
  return Status::Ok;
}

Communicator::~Communicator() {
  PHOTON_TELEM_HOOK({
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::process();
    if (reg.enabled()) {
      auto add = [&reg](const char* name, std::uint64_t v) {
        if (v != 0) reg.counter(std::string("coll.") + name).add(v);
      };
      add("barriers", stats_.barriers);
      add("broadcasts", stats_.broadcasts);
      add("reductions", stats_.reductions);
      add("allgathers", stats_.allgathers);
      add("alltoalls", stats_.alltoalls);
      add("gathers", stats_.gathers);
      add("scatters", stats_.scatters);
      add("blocks_sent", stats_.blocks_sent);
      add("block_bytes_sent", stats_.block_bytes_sent);
      add("flags_sent", stats_.flags_sent);
      add("foreign_events", stats_.foreign_events);
    }
  });
}

std::uint64_t Communicator::block_id(std::uint32_t round, std::uint32_t chunk,
                                     std::uint32_t) const {
  return kCollBit | ((seq_ & 0x7FFFFFFFFFULL) << 24) |
         (std::uint64_t{round & 0xFF} << 16) | (chunk & 0xFFFF);
}

std::vector<std::byte> Communicator::await(Rank peer, std::uint64_t id) {
  const Key want{peer, id};
  util::Deadline dl(kCollTimeoutNs);
  std::uint32_t spins = 0;
  for (;;) {
    if (auto it = stash_.find(want); it != stash_.end() && !it->second.empty()) {
      std::vector<std::byte> out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return out;
    }
    if (auto ev = ph_.probe_event()) {
      if (ev->id & kCollBit) {
        stash_[{ev->peer, ev->id}].push_back(std::move(ev->payload));
      } else {
        ++stats_.foreign_events;
        foreign_.push_back(std::move(*ev));
      }
      continue;
    }
    if (ph_.peer_down(peer))
      throw std::runtime_error("collective aborted: rank " +
                               std::to_string(peer) + " unreachable");
    if (dl.expired())
      throw std::runtime_error("collective timed out (mismatched calls?)");
    ph_.idle_wait_step(spins);
  }
}

void Communicator::send_block(Rank peer, std::uint32_t round,
                              std::span<const std::byte> data) {
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      data.empty() ? 1
                   : static_cast<std::uint32_t>((data.size() + cs - 1) / cs);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    const std::size_t len = std::min(cs, data.size() - off);
    const Status st = ph_.send_with_completion(
        peer, data.subspan(off, len), std::nullopt, block_id(round, c, chunks),
        kCollTimeoutNs);
    if (st != Status::Ok)
      throw std::runtime_error("collective send failed: " +
                               std::string(status_name(st)));
  }
  stats_.blocks_sent += chunks;
  stats_.block_bytes_sent += data.size();
}

std::size_t Communicator::recv_block(Rank peer, std::uint32_t round,
                                     std::span<std::byte> out) {
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      out.empty() ? 1 : static_cast<std::uint32_t>((out.size() + cs - 1) / cs);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    std::vector<std::byte> chunk = await(peer, block_id(round, c, chunks));
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    if (chunk.size() > out.size() - off)
      throw std::runtime_error("collective chunk overflow");
    if (!chunk.empty()) std::memcpy(out.data() + off, chunk.data(), chunk.size());
    total += chunk.size();
  }
  return total;
}

void Communicator::send_flag(Rank peer, std::uint32_t round) {
  const Status st = ph_.signal(peer, block_id(round, 0, 1), kCollTimeoutNs);
  if (st != Status::Ok)
    throw std::runtime_error("collective flag failed: " +
                             std::string(status_name(st)));
  ++stats_.flags_sent;
}

void Communicator::recv_flag(Rank peer, std::uint32_t round) {
  (void)await(peer, block_id(round, 0, 1));
}

std::deque<core::ProbeEvent> Communicator::take_foreign_events() {
  return std::exchange(foreign_, {});
}

// ---- barrier: dissemination ---------------------------------------------------

void Communicator::barrier() {
  ++seq_;
  ++stats_.barriers;
  const std::uint32_t n = vsize();
  std::uint32_t round = 0;
  for (std::uint32_t dist = 1; dist < n; dist <<= 1, ++round) {
    const Rank to = world((vrank() + dist) % n);
    const Rank from = world((vrank() + n - dist) % n);
    send_flag(to, round);
    recv_flag(from, round);
  }
}

// ---- broadcast: binomial tree ----------------------------------------------------

void Communicator::broadcast(std::span<std::byte> data, Rank root) {
  ++seq_;
  ++stats_.broadcasts;
  const std::uint32_t n = vsize();
  if (n == 1) return;
  const std::uint32_t vroot = vindex_of(root);
  const std::uint32_t vr = (vrank() + n - vroot) % n;

  std::uint32_t mask = 1;
  std::uint32_t round = 0;
  while (mask < n) {
    if (vr & mask) {
      const Rank parent = world(((vr ^ mask) + vroot) % n);
      recv_block(parent, round, data);
      break;
    }
    mask <<= 1;
    ++round;
  }
  // Fan out to children below our bit.
  while (mask > 1) {
    mask >>= 1;
    --round;
    if (vr + mask < n) {
      const Rank child = world((vr + mask + vroot) % n);
      send_block(child, round, data);
    }
  }
}

void Communicator::broadcast_pipelined(std::span<std::byte> data, Rank root) {
  ++seq_;
  ++stats_.broadcasts;
  const std::uint32_t n = vsize();
  if (n == 1 || data.empty()) return;
  (void)vindex_of(root);  // validate membership
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      static_cast<std::uint32_t>((data.size() + cs - 1) / cs);
  const Rank next = world((vrank() + 1) % n);
  const Rank prev = world((vrank() + n - 1) % n);
  const bool is_root = rank() == root;
  const bool is_tail = next == root;

  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    const std::size_t len = std::min(cs, data.size() - off);
    const std::uint64_t id = block_id(0, c & 0xFFFF, 1);
    if (!is_root) {
      std::vector<std::byte> chunk = await(prev, id);
      if (chunk.size() != len)
        throw std::runtime_error("pipelined bcast chunk size mismatch");
      std::memcpy(data.data() + off, chunk.data(), len);
    }
    if (!is_tail) {
      const Status st = ph_.send_with_completion(
          next, data.subspan(off, len), std::nullopt, id, kCollTimeoutNs);
      if (st != Status::Ok)
        throw std::runtime_error("pipelined bcast send failed: " +
                                 std::string(status_name(st)));
    }
  }
}

// ---- reduce / allreduce -----------------------------------------------------------

void Communicator::reduce_impl(std::span<std::byte> data, ReduceOp,
                               std::size_t elem, const Combine& combine,
                               Rank root, bool all) {
  ++stats_.reductions;
  const std::uint32_t n = vsize();
  if (n == 1) return;
  const std::size_t count = data.size() / elem;
  std::vector<std::byte> scratch(data.size());

  const bool pow2 = (n & (n - 1)) == 0;
  if (all && pow2) {
    // Recursive doubling: log2(P) rounds, everyone ends with the result.
    ++seq_;
    std::uint32_t round = 0;
    for (std::uint32_t mask = 1; mask < n; mask <<= 1, ++round) {
      const Rank partner = world(vrank() ^ mask);
      send_block(partner, round, data);
      recv_block(partner, round, scratch);
      combine(data.data(), scratch.data(), count);
    }
    return;
  }

  // Binomial fold toward root.
  ++seq_;
  const std::uint32_t vroot = vindex_of(root);
  const std::uint32_t vr = (vrank() + n - vroot) % n;
  std::uint32_t round = 0;
  for (std::uint32_t mask = 1; mask < n; mask <<= 1, ++round) {
    if (vr & mask) {
      const Rank parent = world(((vr ^ mask) + vroot) % n);
      send_block(parent, round, data);
      break;
    }
    const std::uint32_t partner_v = vr | mask;
    if (partner_v < n) {
      const Rank partner = world((partner_v + vroot) % n);
      recv_block(partner, round, scratch);
      combine(data.data(), scratch.data(), count);
    }
  }
  if (all) broadcast(data, root);
}

// ---- allgather: ring ------------------------------------------------------------------

void Communicator::allgather(std::span<const std::byte> mine,
                             std::span<std::byte> all) {
  ++seq_;
  ++stats_.allgathers;
  const std::uint32_t n = vsize();
  const std::size_t block = mine.size();
  if (all.size() < block * n)
    throw std::invalid_argument("allgather output too small");
  if (block > 0) std::memcpy(all.data() + block * vrank(), mine.data(), block);
  if (n == 1 || block == 0) return;

  const Rank next = world((vrank() + 1) % n);
  const Rank prev = world((vrank() + n - 1) % n);
  for (std::uint32_t step = 0; step < n - 1; ++step) {
    const std::uint32_t out_idx = (vrank() + n - step) % n;
    const std::uint32_t in_idx = (vrank() + n - step - 1) % n;
    send_block(next, step,
               std::span<const std::byte>(all.data() + block * out_idx, block));
    recv_block(prev, step,
               std::span<std::byte>(all.data() + block * in_idx, block));
  }
}

// ---- alltoall: pairwise rounds ------------------------------------------------------------

void Communicator::alltoall(std::span<const std::byte> send,
                            std::span<std::byte> recv, std::size_t block) {
  ++seq_;
  ++stats_.alltoalls;
  const std::uint32_t n = vsize();
  if (send.size() < block * n || recv.size() < block * n)
    throw std::invalid_argument("alltoall buffers too small");
  if (block > 0)
    std::memcpy(recv.data() + block * vrank(), send.data() + block * vrank(),
                block);
  for (std::uint32_t step = 1; step < n; ++step) {
    const std::uint32_t vto = (vrank() + step) % n;
    const std::uint32_t vfrom = (vrank() + n - step) % n;
    send_block(world(vto), step,
               std::span<const std::byte>(send.data() + block * vto, block));
    recv_block(world(vfrom), step,
               std::span<std::byte>(recv.data() + block * vfrom, block));
  }
}

// ---- gather: linear to root ----------------------------------------------------------------

void Communicator::gather(std::span<const std::byte> mine,
                          std::span<std::byte> all, Rank root) {
  ++seq_;
  ++stats_.gathers;
  const std::uint32_t n = vsize();
  const std::size_t block = mine.size();
  const std::uint32_t vroot = vindex_of(root);
  if (rank() == root) {
    if (all.size() < block * n)
      throw std::invalid_argument("gather output too small");
    if (block > 0) std::memcpy(all.data() + block * vroot, mine.data(), block);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == vroot) continue;
      recv_block(world(v), 0,
                 std::span<std::byte>(all.data() + block * v, block));
    }
  } else {
    send_block(root, 0, mine);
  }
}

// ---- scatter: root pushes each block ---------------------------------------------------

void Communicator::scatter(std::span<const std::byte> all,
                           std::span<std::byte> mine, Rank root) {
  ++seq_;
  ++stats_.scatters;
  const std::uint32_t n = vsize();
  const std::size_t block = mine.size();
  const std::uint32_t vroot = vindex_of(root);
  if (rank() == root) {
    if (all.size() < block * n)
      throw std::invalid_argument("scatter input too small");
    if (block > 0)
      std::memcpy(mine.data(), all.data() + block * vroot, block);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == vroot) continue;
      send_block(world(v), 0, all.subspan(block * v, block));
    }
  } else {
    recv_block(root, 0, mine);
  }
}

}  // namespace photon::coll
