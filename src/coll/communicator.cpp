#include "coll/communicator.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <thread>

#include "telemetry/hooks.hpp"
#include "util/timing.hpp"

namespace photon::coll {

using fabric::Rank;

namespace {
constexpr std::uint64_t kCollTimeoutNs = 30'000'000'000ULL;  // 30 s wall
}

Communicator::Communicator(core::Photon& ph) : ph_(ph) {
  if (ph_.size() > 256)
    throw std::invalid_argument("Communicator supports up to 256 ranks");
}

Communicator::~Communicator() {
  PHOTON_TELEM_HOOK({
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::process();
    if (reg.enabled()) {
      auto add = [&reg](const char* name, std::uint64_t v) {
        if (v != 0) reg.counter(std::string("coll.") + name).add(v);
      };
      add("barriers", stats_.barriers);
      add("broadcasts", stats_.broadcasts);
      add("reductions", stats_.reductions);
      add("allgathers", stats_.allgathers);
      add("alltoalls", stats_.alltoalls);
      add("gathers", stats_.gathers);
      add("scatters", stats_.scatters);
      add("blocks_sent", stats_.blocks_sent);
      add("block_bytes_sent", stats_.block_bytes_sent);
      add("flags_sent", stats_.flags_sent);
      add("foreign_events", stats_.foreign_events);
    }
  });
}

std::uint64_t Communicator::block_id(std::uint32_t round, std::uint32_t chunk,
                                     std::uint32_t) const {
  return kCollBit | ((seq_ & 0x7FFFFFFFFFULL) << 24) |
         (std::uint64_t{round & 0xFF} << 16) | (chunk & 0xFFFF);
}

std::vector<std::byte> Communicator::await(Rank peer, std::uint64_t id) {
  const Key want{peer, id};
  util::Deadline dl(kCollTimeoutNs);
  std::uint32_t spins = 0;
  for (;;) {
    if (auto it = stash_.find(want); it != stash_.end() && !it->second.empty()) {
      std::vector<std::byte> out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return out;
    }
    if (auto ev = ph_.probe_event()) {
      if (ev->id & kCollBit) {
        stash_[{ev->peer, ev->id}].push_back(std::move(ev->payload));
      } else {
        ++stats_.foreign_events;
        foreign_.push_back(std::move(*ev));
      }
      continue;
    }
    if (ph_.peer_down(peer))
      throw std::runtime_error("collective aborted: rank " +
                               std::to_string(peer) + " unreachable");
    if (dl.expired())
      throw std::runtime_error("collective timed out (mismatched calls?)");
    ph_.idle_wait_step(spins);
  }
}

void Communicator::send_block(Rank peer, std::uint32_t round,
                              std::span<const std::byte> data) {
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      data.empty() ? 1
                   : static_cast<std::uint32_t>((data.size() + cs - 1) / cs);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    const std::size_t len = std::min(cs, data.size() - off);
    const Status st = ph_.send_with_completion(
        peer, data.subspan(off, len), std::nullopt, block_id(round, c, chunks),
        kCollTimeoutNs);
    if (st != Status::Ok)
      throw std::runtime_error("collective send failed: " +
                               std::string(status_name(st)));
  }
  stats_.blocks_sent += chunks;
  stats_.block_bytes_sent += data.size();
}

std::size_t Communicator::recv_block(Rank peer, std::uint32_t round,
                                     std::span<std::byte> out) {
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      out.empty() ? 1 : static_cast<std::uint32_t>((out.size() + cs - 1) / cs);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    std::vector<std::byte> chunk = await(peer, block_id(round, c, chunks));
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    if (chunk.size() > out.size() - off)
      throw std::runtime_error("collective chunk overflow");
    if (!chunk.empty()) std::memcpy(out.data() + off, chunk.data(), chunk.size());
    total += chunk.size();
  }
  return total;
}

void Communicator::send_flag(Rank peer, std::uint32_t round) {
  const Status st = ph_.signal(peer, block_id(round, 0, 1), kCollTimeoutNs);
  if (st != Status::Ok)
    throw std::runtime_error("collective flag failed: " +
                             std::string(status_name(st)));
  ++stats_.flags_sent;
}

void Communicator::recv_flag(Rank peer, std::uint32_t round) {
  (void)await(peer, block_id(round, 0, 1));
}

std::deque<core::ProbeEvent> Communicator::take_foreign_events() {
  return std::exchange(foreign_, {});
}

// ---- barrier: dissemination ---------------------------------------------------

void Communicator::barrier() {
  ++seq_;
  ++stats_.barriers;
  const std::uint32_t n = size();
  std::uint32_t round = 0;
  for (std::uint32_t dist = 1; dist < n; dist <<= 1, ++round) {
    const Rank to = (rank() + dist) % n;
    const Rank from = (rank() + n - dist) % n;
    send_flag(to, round);
    recv_flag(from, round);
  }
}

// ---- broadcast: binomial tree ----------------------------------------------------

void Communicator::broadcast(std::span<std::byte> data, Rank root) {
  ++seq_;
  ++stats_.broadcasts;
  const std::uint32_t n = size();
  if (n == 1) return;
  const std::uint32_t vr = (rank() + n - root) % n;

  std::uint32_t mask = 1;
  std::uint32_t round = 0;
  while (mask < n) {
    if (vr & mask) {
      const Rank parent = ((vr ^ mask) + root) % n;
      recv_block(parent, round, data);
      break;
    }
    mask <<= 1;
    ++round;
  }
  // Fan out to children below our bit.
  while (mask > 1) {
    mask >>= 1;
    --round;
    if (vr + mask < n) {
      const Rank child = (vr + mask + root) % n;
      send_block(child, round, data);
    }
  }
}

void Communicator::broadcast_pipelined(std::span<std::byte> data, Rank root) {
  ++seq_;
  ++stats_.broadcasts;
  const std::uint32_t n = size();
  if (n == 1 || data.empty()) return;
  const std::size_t cs = ph_.config().eager_threshold;
  const std::uint32_t chunks =
      static_cast<std::uint32_t>((data.size() + cs - 1) / cs);
  const Rank next = (rank() + 1) % n;
  const Rank prev = (rank() + n - 1) % n;
  const bool is_root = rank() == root;
  const bool is_tail = next == root;

  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * cs;
    const std::size_t len = std::min(cs, data.size() - off);
    const std::uint64_t id = block_id(0, c & 0xFFFF, 1);
    if (!is_root) {
      std::vector<std::byte> chunk = await(prev, id);
      if (chunk.size() != len)
        throw std::runtime_error("pipelined bcast chunk size mismatch");
      std::memcpy(data.data() + off, chunk.data(), len);
    }
    if (!is_tail) {
      const Status st = ph_.send_with_completion(
          next, data.subspan(off, len), std::nullopt, id, kCollTimeoutNs);
      if (st != Status::Ok)
        throw std::runtime_error("pipelined bcast send failed: " +
                                 std::string(status_name(st)));
    }
  }
}

// ---- reduce / allreduce -----------------------------------------------------------

void Communicator::reduce_impl(std::span<std::byte> data, ReduceOp,
                               std::size_t elem, const Combine& combine,
                               Rank root, bool all) {
  ++stats_.reductions;
  const std::uint32_t n = size();
  if (n == 1) return;
  const std::size_t count = data.size() / elem;
  std::vector<std::byte> scratch(data.size());

  const bool pow2 = (n & (n - 1)) == 0;
  if (all && pow2) {
    // Recursive doubling: log2(P) rounds, everyone ends with the result.
    ++seq_;
    std::uint32_t round = 0;
    for (std::uint32_t mask = 1; mask < n; mask <<= 1, ++round) {
      const Rank partner = rank() ^ mask;
      send_block(partner, round, data);
      recv_block(partner, round, scratch);
      combine(data.data(), scratch.data(), count);
    }
    return;
  }

  // Binomial fold toward root.
  ++seq_;
  const std::uint32_t vr = (rank() + n - root) % n;
  std::uint32_t round = 0;
  for (std::uint32_t mask = 1; mask < n; mask <<= 1, ++round) {
    if (vr & mask) {
      const Rank parent = ((vr ^ mask) + root) % n;
      send_block(parent, round, data);
      break;
    }
    const std::uint32_t partner_v = vr | mask;
    if (partner_v < n) {
      const Rank partner = (partner_v + root) % n;
      recv_block(partner, round, scratch);
      combine(data.data(), scratch.data(), count);
    }
  }
  if (all) broadcast(data, root);
}

// ---- allgather: ring ------------------------------------------------------------------

void Communicator::allgather(std::span<const std::byte> mine,
                             std::span<std::byte> all) {
  ++seq_;
  ++stats_.allgathers;
  const std::uint32_t n = size();
  const std::size_t block = mine.size();
  if (all.size() < block * n)
    throw std::invalid_argument("allgather output too small");
  if (block > 0) std::memcpy(all.data() + block * rank(), mine.data(), block);
  if (n == 1 || block == 0) return;

  const Rank next = (rank() + 1) % n;
  const Rank prev = (rank() + n - 1) % n;
  for (std::uint32_t step = 0; step < n - 1; ++step) {
    const std::uint32_t out_idx = (rank() + n - step) % n;
    const std::uint32_t in_idx = (rank() + n - step - 1) % n;
    send_block(next, step,
               std::span<const std::byte>(all.data() + block * out_idx, block));
    recv_block(prev, step,
               std::span<std::byte>(all.data() + block * in_idx, block));
  }
}

// ---- alltoall: pairwise rounds ------------------------------------------------------------

void Communicator::alltoall(std::span<const std::byte> send,
                            std::span<std::byte> recv, std::size_t block) {
  ++seq_;
  ++stats_.alltoalls;
  const std::uint32_t n = size();
  if (send.size() < block * n || recv.size() < block * n)
    throw std::invalid_argument("alltoall buffers too small");
  if (block > 0)
    std::memcpy(recv.data() + block * rank(), send.data() + block * rank(),
                block);
  for (std::uint32_t step = 1; step < n; ++step) {
    const Rank to = (rank() + step) % n;
    const Rank from = (rank() + n - step) % n;
    send_block(to, step,
               std::span<const std::byte>(send.data() + block * to, block));
    recv_block(from, step,
               std::span<std::byte>(recv.data() + block * from, block));
  }
}

// ---- gather: linear to root ----------------------------------------------------------------

void Communicator::gather(std::span<const std::byte> mine,
                          std::span<std::byte> all, Rank root) {
  ++seq_;
  ++stats_.gathers;
  const std::uint32_t n = size();
  const std::size_t block = mine.size();
  if (rank() == root) {
    if (all.size() < block * n)
      throw std::invalid_argument("gather output too small");
    if (block > 0) std::memcpy(all.data() + block * root, mine.data(), block);
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == root) continue;
      recv_block(r, 0, std::span<std::byte>(all.data() + block * r, block));
    }
  } else {
    send_block(root, 0, mine);
  }
}

// ---- scatter: root pushes each block ---------------------------------------------------

void Communicator::scatter(std::span<const std::byte> all,
                           std::span<std::byte> mine, Rank root) {
  ++seq_;
  ++stats_.scatters;
  const std::uint32_t n = size();
  const std::size_t block = mine.size();
  if (rank() == root) {
    if (all.size() < block * n)
      throw std::invalid_argument("scatter input too small");
    if (block > 0)
      std::memcpy(mine.data(), all.data() + block * root, block);
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == root) continue;
      send_block(r, 0, all.subspan(block * r, block));
    }
  } else {
    recv_block(root, 0, mine);
  }
}

}  // namespace photon::coll
