// Workload generators shared by the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace photon::benchsupport {

/// Power-of-two message-size sweep [lo, hi].
inline std::vector<std::size_t> size_sweep(std::size_t lo, std::size_t hi,
                                           std::size_t multiplier = 2) {
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= multiplier) out.push_back(s);
  return out;
}

/// GUPS-style random update stream: each entry is (target_rank, slot).
struct Update {
  std::uint32_t rank;
  std::uint32_t slot;
};

inline std::vector<Update> gups_stream(std::size_t n, std::uint32_t nranks,
                                       std::uint32_t slots_per_rank,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Update> out(n);
  for (auto& u : out) {
    u.rank = static_cast<std::uint32_t>(rng.below(nranks));
    u.slot = static_cast<std::uint32_t>(rng.below(slots_per_rank));
  }
  return out;
}

/// 2-D halo-exchange geometry on a Px x Py rank grid.
struct HaloGeometry {
  std::uint32_t px, py;      ///< rank grid
  std::size_t nx, ny;        ///< local interior cells per rank
  std::uint32_t rank;

  std::uint32_t cx() const { return rank % px; }
  std::uint32_t cy() const { return rank / px; }
  /// Neighbor rank or UINT32_MAX at the boundary.
  std::uint32_t west() const { return cx() == 0 ? UINT32_MAX : rank - 1; }
  std::uint32_t east() const { return cx() == px - 1 ? UINT32_MAX : rank + 1; }
  std::uint32_t north() const { return cy() == 0 ? UINT32_MAX : rank - px; }
  std::uint32_t south() const {
    return cy() == py - 1 ? UINT32_MAX : rank + px;
  }
};

/// Deterministic payload for integrity checks.
inline std::vector<std::byte> payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  util::Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

}  // namespace photon::benchsupport
