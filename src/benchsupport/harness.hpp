// Shared harness for the paper-figure benchmarks.
//
// Every experiment is one SPMD section on a fresh cluster; the measurement
// is *virtual* time (see fabric/vclock.hpp), so results are deterministic
// and host-independent. Each bench binary registers its sweep with
// google-benchmark (manual time = virtual seconds) and prints a paper-style
// table of the same series at the end.
#pragma once

#include <functional>

#include "core/photon.hpp"
#include "msg/engine.hpp"
#include "runtime/cluster.hpp"
#include "util/timing.hpp"

namespace photon::benchsupport {

/// Run `body` SPMD on a fresh cluster; returns the maximum virtual-clock
/// value across ranks at the end (clocks start at zero).
inline std::uint64_t run_spmd_vtime(
    const fabric::FabricConfig& fcfg,
    const std::function<void(runtime::Env&)>& body) {
  runtime::Cluster cluster(fcfg);
  cluster.run(body);
  std::uint64_t vt = 0;
  for (fabric::Rank r = 0; r < cluster.size(); ++r)
    vt = std::max(vt, cluster.fabric().nic(r).clock().now());
  return vt;
}

/// Collective: fence all ranks, zero every virtual clock and all wire
/// resource timestamps, fence again. Call after setup so measurements start
/// from a clean virtual t=0 (setup traffic like bounce pre-posting and
/// descriptor exchange is excluded, as a real benchmark's warmup would be).
inline void sync_reset(runtime::Env& env) {
  env.bootstrap.barrier(env.rank);
  if (env.rank == 0) env.cluster.reset_virtual_time();
  env.bootstrap.barrier(env.rank);
}

/// Default calibrated fabric (wire model ON) with `n` ranks.
inline fabric::FabricConfig bench_fabric(std::uint32_t n) {
  fabric::FabricConfig cfg;
  cfg.nranks = n;
  return cfg;
}

inline double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// MB/s for `bytes` moved in `ns` of virtual time.
inline double mbps(std::uint64_t bytes, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(ns) / 1e9) / 1e6;
}

/// Million ops per second.
inline double mops(std::uint64_t ops, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(ops) / (static_cast<double>(ns) / 1e9) / 1e6;
}

}  // namespace photon::benchsupport
