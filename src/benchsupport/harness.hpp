// Shared harness for the paper-figure benchmarks.
//
// Every experiment is one SPMD section on a fresh cluster; the measurement
// is *virtual* time (see fabric/vclock.hpp), so results are deterministic
// and host-independent. Each bench binary registers its sweep with
// google-benchmark (manual time = virtual seconds) and prints a paper-style
// table of the same series at the end.
#pragma once

#include <functional>
#include <string>

#include "benchsupport/table.hpp"
#include "core/photon.hpp"
#include "msg/engine.hpp"
#include "runtime/cluster.hpp"
#include "telemetry/metrics.hpp"
#include "util/timing.hpp"

namespace photon::benchsupport {

/// Process-wide accumulation of reliable-delivery counters across every
/// fabric run_spmd_vtime constructs (each experiment tears its fabric down,
/// so per-run totals are folded in here for end-of-bench reporting). This
/// struct is the raw backing store; register_bench_probes() exposes it in
/// the metrics registry as "bench.resilience.*" snapshot columns.
inline fabric::Fabric::ResilienceTotals& resilience_accum() {
  static fabric::Fabric::ResilienceTotals t;
  return t;
}

/// Expose resilience_accum() and friends as registry probes (idempotent;
/// BenchReport calls this). The probes read the raw accumulator at snapshot
/// time, so the registry is a view, not a copy.
inline void register_bench_probes() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  auto& reg = telemetry::MetricsRegistry::process();
  auto& acc = resilience_accum();
  reg.register_probe(&acc, "bench.resilience.retransmits",
                     [&acc] { return acc.retransmits; });
  reg.register_probe(&acc, "bench.resilience.crc_rejects",
                     [&acc] { return acc.crc_rejects; });
  reg.register_probe(&acc, "bench.resilience.dup_suppressed",
                     [&acc] { return acc.dup_suppressed; });
  reg.register_probe(&acc, "bench.resilience.wire_faults_fired",
                     [&acc] { return acc.wire_faults_fired; });
  reg.register_probe(&acc, "bench.resilience.op_timeouts",
                     [&acc] { return acc.op_timeouts; });
  reg.register_probe(&acc, "bench.resilience.recoveries",
                     [&acc] { return acc.recoveries; });
  reg.register_probe(&acc, "bench.resilience.stale_epoch_drops",
                     [&acc] { return acc.stale_epoch_drops; });
}

/// Run `body` SPMD on a fresh cluster; returns the maximum virtual-clock
/// value across ranks at the end (clocks start at zero). The per-run virtual
/// time also accumulates into the registry counter "bench.vtime_ns" (the
/// denominator of every BENCH_*.json ops/s figure), and the fabric's own
/// counters fold into the registry when its destructor runs at scope exit.
inline std::uint64_t run_spmd_vtime(
    const fabric::FabricConfig& fcfg,
    const std::function<void(runtime::Env&)>& body) {
  runtime::Cluster cluster(fcfg);
  cluster.run(body);
  std::uint64_t vt = 0;
  for (fabric::Rank r = 0; r < cluster.size(); ++r)
    vt = std::max(vt, cluster.fabric().nic(r).clock().now());
  const auto rt = cluster.fabric().resilience_totals();
  auto& acc = resilience_accum();
  acc.retransmits += rt.retransmits;
  acc.crc_rejects += rt.crc_rejects;
  acc.dup_suppressed += rt.dup_suppressed;
  acc.wire_faults_fired += rt.wire_faults_fired;
  acc.op_timeouts += rt.op_timeouts;
  acc.recoveries += rt.recoveries;
  acc.stale_epoch_drops += rt.stale_epoch_drops;
  auto& reg = telemetry::MetricsRegistry::process();
  if (reg.enabled()) reg.counter("bench.vtime_ns").add(vt);
  return vt;
}

/// Collective: fence all ranks, zero every virtual clock and all wire
/// resource timestamps, fence again. Call after setup so measurements start
/// from a clean virtual t=0 (setup traffic like bounce pre-posting and
/// descriptor exchange is excluded, as a real benchmark's warmup would be).
inline void sync_reset(runtime::Env& env) {
  env.bootstrap.barrier(env.rank);
  if (env.rank == 0) env.cluster.reset_virtual_time();
  env.bootstrap.barrier(env.rank);
}

/// Default calibrated fabric (wire model ON) with `n` ranks.
inline fabric::FabricConfig bench_fabric(std::uint32_t n) {
  fabric::FabricConfig cfg;
  cfg.nranks = n;
  return cfg;
}

inline double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// MB/s for `bytes` moved in `ns` of virtual time.
inline double mbps(std::uint64_t bytes, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(ns) / 1e9) / 1e6;
}

/// Million ops per second.
inline double mops(std::uint64_t ops, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return static_cast<double>(ops) / (static_cast<double>(ns) / 1e9) / 1e6;
}

/// Print the accumulated reliable-delivery counters when anything fired —
/// a lossy-wire run (PHOTON_WIRE_* env) shows how much retransmission /
/// backoff the reported numbers absorbed; a clean run prints nothing.
/// Reads the raw accumulator (same numbers as the registry's
/// "bench.resilience.*" probe columns and BENCH_*.json "resilience").
inline void print_resilience_table() {
  const auto& t = resilience_accum();
  if (t.wire_faults_fired == 0 && t.retransmits == 0 && t.op_timeouts == 0)
    return;
  Table tbl("Reliable delivery (accumulated fabric totals)");
  tbl.columns({"faults fired", "retransmits", "crc rejects", "dups suppressed",
               "op timeouts"});
  tbl.row({std::to_string(t.wire_faults_fired), std::to_string(t.retransmits),
           std::to_string(t.crc_rejects), std::to_string(t.dup_suppressed),
           std::to_string(t.op_timeouts)});
  tbl.print();
}

}  // namespace photon::benchsupport
