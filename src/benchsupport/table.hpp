// Aligned-column table printer for paper-style benchmark output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace photon::benchsupport {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string bytes(std::uint64_t n);

  /// Render to stdout.
  void print() const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace photon::benchsupport
