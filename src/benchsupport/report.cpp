#include "benchsupport/report.hpp"

#include <cstdlib>
#include <fstream>

#include "benchsupport/harness.hpp"
#include "telemetry/metrics.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace photon::benchsupport {

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void emit_env(util::JsonWriter& w, const char* name) {
  const char* v = std::getenv(name);
  w.key(name);
  if (v == nullptr)
    w.null();
  else
    w.value(std::string_view(v));
}

void emit_hist(util::JsonWriter& w, const char* key,
               const telemetry::HistogramSnapshot& h) {
  w.key(key).begin_object();
  w.key("count").value(h.total);
  w.key("mean_ns").value(h.mean());
  w.key("p50_ns").value(h.percentile(50));
  w.key("p99_ns").value(h.percentile(99));
  w.key("p999_ns").value(h.percentile(99.9));
  w.end_object();
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  if (!env_flag("PHOTON_BENCH_NO_TELEMETRY")) {
    auto& reg = telemetry::MetricsRegistry::process();
    reg.reset();
    reg.set_enabled(true);
    register_bench_probes();
  }
}

BenchReport::~BenchReport() {
  if (!written_) write();
}

void BenchReport::metric(std::string_view name, double value) {
  metrics_[std::string(name)] = value;
}

std::string BenchReport::path() const {
  const char* dir = std::getenv("PHOTON_BENCH_DIR");
  std::string p = dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  return p + "BENCH_" + name_ + ".json";
}

std::string BenchReport::to_json() const {
  const telemetry::Snapshot s = telemetry::MetricsRegistry::process().snapshot();
  const std::uint64_t vtime_ns = s.counter_or("bench.vtime_ns", 0);
  const std::uint64_t ops = s.counter_or("fabric.puts", 0) +
                            s.counter_or("fabric.gets", 0) +
                            s.counter_or("fabric.sends", 0) +
                            s.counter_or("fabric.atomics", 0);
  const double vsecs = static_cast<double>(vtime_ns) / 1e9;

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value(name_);
  w.key("schema").value(1);
  w.key("deterministic").value(deterministic_);

  w.key("config").begin_object();
  w.key("telemetry_compiled").value(PHOTON_TELEMETRY_ENABLED != 0);
#if defined(PHOTON_CHECK_ENABLED)
  w.key("check_compiled").value(true);
#else
  w.key("check_compiled").value(false);
#endif
  w.key("telemetry_runtime")
      .value(telemetry::MetricsRegistry::process().enabled());
  emit_env(w, "PHOTON_WIRE_DROP");
  emit_env(w, "PHOTON_WIRE_CORRUPT");
  emit_env(w, "PHOTON_WIRE_DELAY");
  emit_env(w, "PHOTON_WIRE_DELAY_NS");
  emit_env(w, "PHOTON_WIRE_SEED");
  w.end_object();

  w.key("vtime_ns").value(vtime_ns);
  w.key("ops").value(ops);
  w.key("ops_per_sec").value(vsecs > 0 ? static_cast<double>(ops) / vsecs : 0.0);
  w.key("bytes_moved").value(s.counter_or("fabric.bytes_out", 0));

  w.key("vlat").begin_object();
  emit_hist(w, "local", s.merged_histogram("photon.vlat.local."));
  emit_hist(w, "remote", s.merged_histogram("photon.vlat.remote."));
  w.end_object();

  const auto& rt = resilience_accum();
  w.key("resilience").begin_object();
  w.key("retransmits").value(rt.retransmits);
  w.key("crc_rejects").value(rt.crc_rejects);
  w.key("dup_suppressed").value(rt.dup_suppressed);
  w.key("wire_faults_fired").value(rt.wire_faults_fired);
  w.key("op_timeouts").value(rt.op_timeouts);
  w.key("recoveries").value(rt.recoveries);
  w.key("stale_epoch_drops").value(rt.stale_epoch_drops);
  w.end_object();

  w.key("metrics").begin_object();
  for (const auto& [k, v] : metrics_) w.key(k).value(v);
  w.end_object();

  // Full registry snapshot, for humans and future tooling; the gate only
  // reads the derived fields above.
  w.key("snapshot").raw(s.to_json());
  w.end_object();
  return w.str();
}

bool BenchReport::write() {
  written_ = true;
  const std::string p = path();
  std::ofstream out(p, std::ios::trunc);
  if (!out) {
    log::error("bench report: cannot open ", p);
    return false;
  }
  out << to_json() << '\n';
  if (!out.flush()) {
    log::error("bench report: write failed for ", p);
    return false;
  }
  log::info("bench report written: ", p);
  return true;
}

}  // namespace photon::benchsupport
