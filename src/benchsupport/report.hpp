// Machine-readable bench reports: every bench binary owns one BenchReport
// and gets a BENCH_<name>.json next to it (or in $PHOTON_BENCH_DIR) at exit.
//
// The report is assembled from the process telemetry registry — the
// BenchReport constructor enables it (set PHOTON_BENCH_NO_TELEMETRY=1 to
// measure the disabled-telemetry hot path), the harness accumulates
// "bench.vtime_ns" per SPMD section, fabrics/engines fold their counters at
// teardown, and the Photon data path records per-op virtual-time latency
// histograms. From those the report derives:
//
//   * ops        — fabric-level operation count (puts+gets+sends+atomics)
//   * ops_per_sec— ops over accumulated *virtual* seconds (deterministic)
//   * vlat.local / vlat.remote — p50/p99/p999/mean over all per-(op,peer)
//     virtual-latency series (deterministic)
//   * resilience — retransmits / crc rejects / dups / faults / timeouts
//   * config     — fingerprint of compiled features + wire-fault env
//   * metrics    — bench-specific scalars added via metric() (wall-clock
//     values go here; tools/perf_gate.sh gates them loosely or not at all)
//
// tools/perf_gate.sh diffs two directories of these files per-metric.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace photon::benchsupport {

class BenchReport {
 public:
  /// `name` keys the output file: BENCH_<name>.json. Enables the process
  /// metrics registry (unless PHOTON_BENCH_NO_TELEMETRY=1) and resets it so
  /// the report covers exactly this process's work.
  explicit BenchReport(std::string name);
  /// Writes the report if write() was not already called.
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Attach a bench-specific scalar (appears under "metrics"). Metrics named
  /// "wall_*" are understood by the gate as nondeterministic.
  void metric(std::string_view name, double value);

  /// Declare that this bench's op counts depend on real thread interleaving
  /// (e.g. optimistic-retry loops under genuine contention). The gate then
  /// applies its relative tolerance to the exact-match metrics instead of
  /// requiring zero drift. Default: deterministic.
  void deterministic(bool d) { deterministic_ = d; }

  /// Destination path: $PHOTON_BENCH_DIR/BENCH_<name>.json (cwd by default).
  std::string path() const;

  /// Serialize the full report (also what gets written to path()).
  std::string to_json() const;

  /// Write to path(); returns false (and logs) on I/O failure.
  bool write();

 private:
  std::string name_;
  std::map<std::string, double> metrics_;
  bool deterministic_ = true;
  bool written_ = false;
};

}  // namespace photon::benchsupport
