#include "benchsupport/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace photon::benchsupport {

Table& Table::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::bytes(std::uint64_t n) {
  char buf[64];
  if (n >= (1ULL << 20) && n % (1ULL << 20) == 0)
    std::snprintf(buf, sizeof(buf), "%lluM", static_cast<unsigned long long>(n >> 20));
  else if (n >= (1ULL << 10) && n % (1ULL << 10) == 0)
    std::snprintf(buf, sizeof(buf), "%lluK", static_cast<unsigned long long>(n >> 10));
  else
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << v;
      if (c + 1 < widths.size())
        os << std::string(widths[c] - v.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace photon::benchsupport
