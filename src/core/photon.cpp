#include "core/photon.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "check/hooks.hpp"
#include "resilience/crc32c.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace photon::core {

using fabric::Rank;

namespace {
constexpr std::size_t kCreditCellStride = 32;  // two u64 counters + padding

std::uint64_t load_u64(const std::byte* p) {
  return std::atomic_ref<const std::uint64_t>(
             *reinterpret_cast<const std::uint64_t*>(p))
      .load(std::memory_order_acquire);
}
}  // namespace

// ---- layout -------------------------------------------------------------------

std::size_t Photon::ring_off(Rank src) const {
  return static_cast<std::size_t>(src) * cfg_.eager_ring_bytes;
}
std::size_t Photon::ledger_off(Rank src) const {
  return static_cast<std::size_t>(nranks_) * cfg_.eager_ring_bytes +
         static_cast<std::size_t>(src) * cfg_.ledger_entries * sizeof(LedgerEntry);
}
std::size_t Photon::credit_off(Rank dst) const {
  return static_cast<std::size_t>(nranks_) * cfg_.eager_ring_bytes +
         static_cast<std::size_t>(nranks_) * cfg_.ledger_entries * sizeof(LedgerEntry) +
         static_cast<std::size_t>(dst) * kCreditCellStride;
}
std::size_t Photon::staging_off() const {
  return credit_off(static_cast<Rank>(nranks_));
}
std::size_t Photon::slab_size() const {
  return staging_off() + ring_footprint(cfg_.eager_threshold);
}

// ---- construction ---------------------------------------------------------------

Photon::Photon(fabric::Nic& nic, runtime::Exchanger& oob, const Config& cfg)
    : nic_(nic), oob_(oob), nranks_(oob.size()), cfg_(cfg) {
  if (cfg_.eager_ring_bytes % 8 != 0 ||
      cfg_.eager_ring_bytes < 2 * ring_footprint(cfg_.eager_threshold)) {
    throw std::invalid_argument(
        "eager_ring_bytes must be 8-byte aligned and hold >= 2 max messages");
  }
  if (cfg_.ledger_entries < 2)
    throw std::invalid_argument("ledger_entries must be >= 2");
  if (cfg_.credit_return_denominator < 2)
    throw std::invalid_argument("credit_return_denominator must be >= 2");
  if (ring_footprint(cfg_.eager_threshold) < sizeof(AdvertBody) + sizeof(EagerHeader))
    throw std::invalid_argument("eager_threshold too small for control messages");

  slab_.assign(slab_size(), std::byte{0});
  auto mr = nic_.registry().register_memory(slab_.data(), slab_.size(),
                                            fabric::kAccessAll);
  if (!mr.ok()) throw std::runtime_error("slab registration failed");
  slab_desc_ = {mr.value().begin(), slab_.size(), mr.value().rkey,
                mr.value().lkey};

  senders_.resize(nranks_);
  receivers_.resize(nranks_);
  peer_failed_.assign(nranks_, false);
  peer_down_done_.assign(nranks_, false);
  deferred_pending_.assign(nranks_, 0);
  tx_epoch_seen_.assign(nranks_, 0);
  rx_epoch_seen_.assign(nranks_, 0);
  cq_batch_.resize(std::max<std::size_t>(1, cfg_.max_probe_batch));

  const SlabInfo mine{slab_desc_.addr, slab_desc_.rkey};
  auto infos = oob.all_gather(rank(), mine);
  peer_slabs_.assign(infos.begin(), infos.end());

  PHOTON_TELEM_HOOK(oplat_.bind(cfg_.metrics != nullptr
                                    ? *cfg_.metrics
                                    : telemetry::MetricsRegistry::process(),
                                nranks_));
}

Photon::~Photon() {
  PHOTON_CHECK_HOOK(nic_.checker().on_finalize(rank()));
  PHOTON_TELEM_HOOK(fold_stats());
  nic_.registry().deregister(slab_desc_.lkey);
}

void Photon::fold_stats() const {
  telemetry::MetricsRegistry& reg = cfg_.metrics != nullptr
                                        ? *cfg_.metrics
                                        : telemetry::MetricsRegistry::process();
  if (!reg.enabled()) return;
  auto add = [&reg](const char* name, std::uint64_t v) {
    if (v != 0) reg.counter(std::string("core.") + name).add(v);
  };
  add("eager_sent", stats_.eager_sent);
  add("eager_bytes", stats_.eager_bytes);
  add("direct_puts", stats_.direct_puts);
  add("gets", stats_.gets);
  add("signals", stats_.signals);
  add("pads", stats_.pads);
  add("credit_returns", stats_.credit_returns);
  add("credit_stalls", stats_.credit_stalls);
  add("ledger_stalls", stats_.ledger_stalls);
  add("events_delivered", stats_.events_delivered);
  add("local_completions", stats_.local_completions);
  add("adverts_sent", stats_.adverts_sent);
  add("fins_sent", stats_.fins_sent);
  add("op_errors", stats_.op_errors);
}

// ---- registration ----------------------------------------------------------------

util::Result<BufferDescriptor> Photon::register_buffer(void* addr, std::size_t len) {
  auto mr = nic_.registry().register_memory(addr, len, fabric::kAccessAll);
  if (!mr.ok()) return mr.status();
  return BufferDescriptor{mr.value().begin(), len, mr.value().rkey,
                          mr.value().lkey};
}

Status Photon::unregister_buffer(const BufferDescriptor& d) {
  return nic_.registry().deregister(d.lkey);
}

std::vector<BufferDescriptor> Photon::exchange_descriptors(
    const BufferDescriptor& mine) {
  // Peers only need {addr, size, rkey}; the lkey stays private (each rank
  // restores its own full descriptor below). Exchange rides the bootstrap
  // (PMI-equivalent) channel, exactly like the real library's rkey exchange.
  struct Wire {
    std::uint64_t addr;
    std::uint64_t size;
    std::uint64_t rkey;
  } w{mine.addr, mine.size, mine.rkey};
  auto all = oob_.all_gather(rank(), w);
  std::vector<BufferDescriptor> out(nranks_);
  for (Rank r = 0; r < nranks_; ++r)
    out[r] = BufferDescriptor{all[r].addr, static_cast<std::size_t>(all[r].size),
                              all[r].rkey, fabric::kInvalidKey};
  out[rank()] = mine;
  return out;
}

// ---- credits ----------------------------------------------------------------------

std::uint64_t Photon::ring_consumed_by(Rank dst) const {
  return load_u64(slab_ptr(credit_off(dst)));
}
std::uint64_t Photon::ledger_consumed_by(Rank dst) const {
  return load_u64(slab_ptr(credit_off(dst) + 8));
}

std::uint64_t Photon::ring_outstanding(Rank dst) const {
  const std::uint64_t head = senders_[dst].ring_head;
  const std::uint64_t consumed = ring_consumed_by(dst);
  // consumed > head only when a pre-fence credit return landed after the
  // cell reset in on_peer_up. Treating it as zero progress (outstanding ==
  // head) can only under-report credits — never lets a send overwrite
  // unconsumed ring bytes — and heals when a fresh return arrives.
  return consumed > head ? head : head - consumed;
}
std::uint64_t Photon::ledger_outstanding(Rank dst) const {
  const std::uint64_t head = senders_[dst].ledger_head;
  const std::uint64_t consumed = ledger_consumed_by(dst);
  return consumed > head ? head : head - consumed;
}

std::size_t Photon::ring_credits_available(Rank dst) const {
  return cfg_.eager_ring_bytes - static_cast<std::size_t>(ring_outstanding(dst));
}
std::size_t Photon::ledger_slots_available(Rank dst) const {
  return cfg_.ledger_entries - static_cast<std::size_t>(ledger_outstanding(dst));
}

bool Photon::fabric_headroom(Rank dst, std::size_t k) const {
  return nic_.in_flight(dst) + k <= nic_.config().sq_depth;
}

void Photon::maybe_return_credits(Rank src) {
  ReceiverState& rs = receivers_[src];
  const std::size_t ring_thresh =
      cfg_.eager_ring_bytes / cfg_.credit_return_denominator;
  const std::size_t ledger_thresh =
      std::max<std::size_t>(1, cfg_.ledger_entries / cfg_.credit_return_denominator);
  const bool ring_due = rs.ring_tail - rs.ring_returned >= ring_thresh;
  const bool ledger_due = rs.ledger_tail - rs.ledger_returned >= ledger_thresh;
  if (!ring_due && !ledger_due) return;
  if (!fabric_headroom(src, 2)) return;  // retried on the next consume

  const fabric::RemoteRef ring_cell{
      peer_slabs_[src].addr + credit_off(rank()), peer_slabs_[src].rkey};
  const fabric::RemoteRef ledger_cell{
      peer_slabs_[src].addr + credit_off(rank()) + 8, peer_slabs_[src].rkey};
  const std::uint64_t ring_val = rs.ring_tail;
  const std::uint64_t ledger_val = rs.ledger_tail;
  // Two 8-byte (atomic) puts; the second carries the credit doorbell so a
  // sender blocked on credits wakes with a virtual timestamp.
  if (nic_.post_put_inline(src, &ring_val, 8, ring_cell, 0, 0, false, false) !=
      Status::Ok)
    return;
  if (nic_.post_put_inline(src, &ledger_val, 8, ledger_cell,
                           encode_imm(ImmKind::kCredit, 0), 0, false, true,
                           /*chained=*/true) != Status::Ok)
    return;
  rs.ring_returned = ring_val;
  rs.ledger_returned = ledger_val;
  ++stats_.credit_returns;
}

// ---- op records / requests ----------------------------------------------------------

std::uint64_t Photon::alloc_op(OpRecord rec) {
  rec.in_use = true;
  if (!free_ops_.empty()) {
    const std::uint64_t idx = free_ops_.back();
    free_ops_.pop_back();
    ops_[idx] = rec;
    return idx;
  }
  ops_.push_back(rec);
  return ops_.size() - 1;
}

RequestId Photon::alloc_request(Rank peer, bool remote) {
  const RequestId rq = next_request_++;
  ReqInfo info;
  info.peer = peer;
  info.remote = remote;
  requests_.emplace(rq, info);
  return rq;
}

void Photon::complete_request(RequestId rq, Status st) {
  auto it = requests_.find(rq);
  if (it == requests_.end()) {
    log::warn("photon: FIN/completion for unknown request ", rq);
    return;
  }
  // First resolution wins: a request failed with PeerUnreachable at peer
  // death must stay failed even if the peer recovers and a late FIN for the
  // same id arrives (at-most-once; the remote side already dropped the op).
  if (it->second.done) return;
  it->second.done = true;
  it->second.status = st;
  PHOTON_CHECK_HOOK(
      nic_.checker().on_request_done(rank(), check::RequestNs::kCore, rq));
}

// ---- eager path -------------------------------------------------------------------

Status Photon::eager_send(Rank dst, MsgKind kind, std::uint64_t id,
                          std::span<const std::byte> payload,
                          std::optional<std::uint64_t> local_id, OpKind op_kind,
                          RequestId request, std::uint64_t check_serial) {
  if (peer_failed_[dst]) return Status::Disconnected;
  const std::size_t R = cfg_.eager_ring_bytes;
  const std::size_t footprint = ring_footprint(payload.size());
  SenderState& ss = senders_[dst];

  std::size_t pos = static_cast<std::size_t>(ss.ring_head % R);
  const std::size_t pad = (pos + footprint > R) ? (R - pos) : 0;
  if (ring_outstanding(dst) + pad + footprint > R) {
    ++stats_.credit_stalls;
    trace(util::TraceKind::kStall, dst, static_cast<std::uint32_t>(footprint), 0);
    return Status::Retry;
  }
  if (!fabric_headroom(dst, 2)) return Status::QueueFull;

  const std::uint64_t ring_base = peer_slabs_[dst].addr + ring_off(rank());
  const fabric::MrKey rkey = peer_slabs_[dst].rkey;

  if (pad != 0) {
    EagerHeader padh;
    padh.kind = static_cast<std::uint16_t>(MsgKind::kPad);
    padh.size = static_cast<std::uint32_t>(pad - sizeof(EagerHeader));
    const Status st = nic_.post_put_inline(
        dst, &padh, sizeof(padh), fabric::RemoteRef{ring_base + pos, rkey}, 0, 0,
        false, false);
    if (st != Status::Ok) return st;
    ss.ring_head += pad;
    pos = 0;
    ++stats_.pads;
  }

  // Stage header + payload contiguously in the registered staging area and
  // RDMA-write it as one message. The staging copy is the eager path's CPU
  // cost and is charged to the virtual clock.
  std::byte* staging = slab_ptr(staging_off());
  EagerHeader h;
  h.id = id;
  h.size = static_cast<std::uint32_t>(payload.size());
  h.kind = static_cast<std::uint16_t>(kind);
  if (!payload.empty() && nic_.faults().wire_armed()) {
    h.crc = resilience::crc32c(payload.data(), payload.size());
    h.flags |= kEagerFlagCrc;
  }
  std::memcpy(staging, &h, sizeof(h));
  if (!payload.empty())
    std::memcpy(staging + sizeof(h), payload.data(), payload.size());
  clock().add(static_cast<std::uint64_t>(static_cast<double>(payload.size()) *
                                         cfg_.eager_copy_per_byte_ns));

  // Eager imm aux bits are otherwise unused: carry the post vtime so the
  // target can measure post→delivery without growing any wire structure.
  const std::uint64_t post_vt = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
  std::uint64_t wr_id = 0;
  const bool signaled = local_id.has_value() || request != kInvalidRequest;
  if (signaled) {
    OpRecord rec;
    rec.kind = op_kind;
    rec.peer = dst;
    rec.has_local_id = local_id.has_value();
    rec.local_id = local_id.value_or(0);
    rec.request = request;
    rec.check_serial = check_serial;
    rec.post_vtime = post_vt;
    wr_id = alloc_op(rec);
  }
  const Status st = nic_.post_put_imm(
      dst, fabric::LocalRef{staging, footprint, slab_desc_.lkey},
      fabric::RemoteRef{ring_base + pos, rkey},
      encode_imm(ImmKind::kEager, post_vt), wr_id, signaled);
  if (st != Status::Ok) {
    if (signaled) {
      ops_[wr_id].in_use = false;
      free_ops_.push_back(wr_id);
    }
    return st;
  }
  ss.ring_head += footprint;
  if (kind == MsgKind::kUser) {
    ++stats_.eager_sent;
    stats_.eager_bytes += payload.size();
    trace(util::TraceKind::kEagerSend, dst,
          static_cast<std::uint32_t>(payload.size()), id);
  }
  return Status::Ok;
}

Status Photon::ledger_signal(Rank dst, std::uint64_t id, bool from_get,
                             std::optional<std::uint64_t> local_id, bool chained,
                             [[maybe_unused]] std::uint64_t origin_vtime) {
  if (peer_failed_[dst]) return Status::Disconnected;
  SenderState& ss = senders_[dst];
  if (ledger_outstanding(dst) >= cfg_.ledger_entries) {
    ++stats_.ledger_stalls;
    return Status::Retry;
  }
  if (!fabric_headroom(dst, 1)) return Status::QueueFull;

  const std::uint64_t slot = ss.ledger_head % cfg_.ledger_entries;
  // Spare meta bits carry the originating op's post vtime to the target
  // (pure-signal ops originate here, so stamp the current clock for them).
  const std::uint64_t post_vt = PHOTON_TELEM_EXPR(
      origin_vtime != 0 ? origin_vtime
                        : (oplat_.armed() ? clock().now() : 0),
      0);
  LedgerEntry e{id, ledger_meta_pack(from_get, chained && !from_get, post_vt)};
  const fabric::RemoteRef ref{
      peer_slabs_[dst].addr + ledger_off(rank()) + slot * sizeof(LedgerEntry),
      peer_slabs_[dst].rkey};

  std::uint64_t wr_id = 0;
  const bool signaled = local_id.has_value();
  if (signaled) {
    OpRecord rec;
    rec.kind = OpKind::kSignal;
    rec.peer = dst;
    rec.has_local_id = true;
    rec.local_id = *local_id;
    rec.post_vtime = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
    wr_id = alloc_op(rec);
  }
  const Status st = nic_.post_put_inline(dst, &e, sizeof(e), ref,
                                         encode_imm(ImmKind::kSignal, slot),
                                         wr_id, signaled, true, chained);
  if (st != Status::Ok) {
    if (signaled) {
      ops_[wr_id].in_use = false;
      free_ops_.push_back(wr_id);
    }
    return st;
  }
  ++ss.ledger_head;
  ++stats_.signals;
  trace(util::TraceKind::kSignal, dst, 0, id);
  return Status::Ok;
}

// ---- PWC / GWC ---------------------------------------------------------------------

Status Photon::try_put_with_completion(Rank dst, LocalSlice src,
                                       RemoteSlice dst_slice,
                                       std::optional<std::uint64_t> local_id,
                                       std::optional<std::uint64_t> remote_id) {
  if (dst >= nranks_) return Status::BadArgument;
  if (src.len > dst_slice.len) return Status::BadArgument;
  if (!ensure_peer(dst)) return Status::PeerUnreachable;
  if (remote_id && ledger_outstanding(dst) >= cfg_.ledger_entries) {
    ++stats_.ledger_stalls;
    return Status::Retry;
  }
  if (!fabric_headroom(dst, 2)) return Status::QueueFull;

  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kPut;
    pi.initiator = rank();
    pi.target = dst;
    pi.local_addr = src.addr;
    pi.local_len = src.len;
    pi.local_lkey = src.lkey;
    pi.remote_addr = dst_slice.addr;
    pi.remote_len = src.len;
    pi.remote_rkey = dst_slice.rkey;
    pi.local_id = local_id;
    pi.remote_id = remote_id;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif

  const std::uint64_t post_vt = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
  std::uint64_t wr_id = 0;
  const bool signaled = local_id.has_value();
  if (signaled) {
    OpRecord rec;
    rec.kind = OpKind::kPwcDirect;
    rec.peer = dst;
    rec.has_local_id = true;
    rec.local_id = *local_id;
    rec.has_remote_id = remote_id.has_value();
    rec.remote_id = remote_id.value_or(0);
    rec.check_serial = check_serial;
    rec.post_vtime = post_vt;
    wr_id = alloc_op(rec);
  }
  const Status st =
      nic_.post_put(dst, fabric::LocalRef{src.addr, src.len, src.lkey},
                    fabric::RemoteRef{dst_slice.addr, dst_slice.rkey}, wr_id,
                    signaled);
  if (st != Status::Ok) {
    if (signaled) {
      ops_[wr_id].in_use = false;
      free_ops_.push_back(wr_id);
    }
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  ++stats_.direct_puts;
  trace(util::TraceKind::kPut, dst, static_cast<std::uint32_t>(src.len),
        remote_id.value_or(0));
  if (remote_id) {
    // Slot availability was checked above; headroom was reserved.
    // Chained onto the payload WR: one doorbell posts both (verbs WR list).
    const Status sig = ledger_signal(dst, *remote_id, false, std::nullopt,
                                     /*chained=*/true, post_vt);
    if (sig != Status::Ok) {
      // Payload already landed but the doorbell could not be rung; surface
      // loudly — this indicates a headroom accounting bug.
      log::error("photon: pwc doorbell failed after payload: ",
                 status_name(sig));
      PHOTON_CHECK_HOOK(nic_.checker().on_remote_id_lost(dst, *remote_id));
      return Status::ProtocolError;
    }
  }
  return Status::Ok;
}

Status Photon::try_send_with_completion(Rank dst,
                                        std::span<const std::byte> payload,
                                        std::optional<std::uint64_t> local_id,
                                        std::uint64_t remote_id) {
  if (dst >= nranks_) return Status::BadArgument;
  if (payload.size() > cfg_.eager_threshold) return Status::BadArgument;
  if (!ensure_peer(dst)) return Status::PeerUnreachable;
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    // The payload is copied into the staging slab at post time, so the
    // caller's buffer is immediately reusable: the shadow op claims no spans
    // and only tracks the completion ids.
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kEagerSend;
    pi.initiator = rank();
    pi.target = dst;
    pi.local_id = local_id;
    pi.remote_id = remote_id;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  const Status st = eager_send(dst, MsgKind::kUser, remote_id, payload, local_id,
                               OpKind::kPwcEager, kInvalidRequest, check_serial);
  if (st == Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  } else {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
  }
  return st;
}

Status Photon::try_get_with_completion(Rank src_rank, LocalMutSlice dst,
                                       RemoteSlice src_slice,
                                       std::optional<std::uint64_t> local_id,
                                       std::optional<std::uint64_t> remote_id) {
  if (src_rank >= nranks_) return Status::BadArgument;
  if (dst.len > src_slice.len) return Status::BadArgument;
  if (!ensure_peer(src_rank)) return Status::PeerUnreachable;
  if (!fabric_headroom(src_rank, 1)) return Status::QueueFull;

  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kGet;
    pi.initiator = rank();
    pi.target = src_rank;
    pi.local_addr = dst.addr;
    pi.local_len = dst.len;
    pi.local_lkey = dst.lkey;
    pi.remote_addr = src_slice.addr;
    pi.remote_len = dst.len;
    pi.remote_rkey = src_slice.rkey;
    pi.local_id = local_id;
    pi.remote_id = remote_id;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif

  OpRecord rec;
  rec.kind = OpKind::kGwc;
  rec.peer = src_rank;
  rec.has_local_id = local_id.has_value();
  rec.local_id = local_id.value_or(0);
  rec.has_remote_id = remote_id.has_value();
  rec.remote_id = remote_id.value_or(0);
  rec.check_serial = check_serial;
  rec.post_vtime = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
  const std::uint64_t wr_id = alloc_op(rec);

  const Status st =
      nic_.post_get(src_rank, fabric::LocalMutRef{dst.addr, dst.len, dst.lkey},
                    fabric::RemoteRef{src_slice.addr, src_slice.rkey}, wr_id);
  if (st != Status::Ok) {
    ops_[wr_id].in_use = false;
    free_ops_.push_back(wr_id);
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  ++stats_.gets;
  trace(util::TraceKind::kGet, src_rank, static_cast<std::uint32_t>(dst.len),
        remote_id.value_or(0));
  return Status::Ok;
}

Status Photon::try_signal(Rank dst, std::uint64_t remote_id) {
  if (dst >= nranks_) return Status::BadArgument;
  if (!ensure_peer(dst)) return Status::PeerUnreachable;
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kSignal;
    pi.initiator = rank();
    pi.target = dst;
    pi.remote_id = remote_id;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  const Status st = ledger_signal(dst, remote_id, false, std::nullopt);
  if (st == Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  } else {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
  }
  return st;
}

// ---- blocking wrappers ----------------------------------------------------------------

void Photon::idle_pause(std::uint32_t& spins) {
  ++spins;
  if (spins < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Photon::idle_wait_step(std::uint32_t& spins) {
  // Yield once before consuming a future event: on an oversubscribed host a
  // lagging peer may be about to publish an *earlier* arrival, and jumping
  // too eagerly would inflate this rank's virtual clock past it.
  if (spins == 0) {
    ++spins;
    std::this_thread::yield();
    return;
  }
  if (progress_jump()) {
    spins = 0;
    return;
  }
  idle_pause(spins);
}

namespace {
template <typename Fn>
Status run_blocking(Photon& p, Fn&& try_once, std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    const Status st = try_once();
    if (!transient(st) || st == Status::NotFound) return st;
    if (dl.expired()) return Status::Retry;
    p.progress();
    p.idle_wait_step(spins);
  }
}
}  // namespace

Status Photon::put_with_completion(Rank dst, LocalSlice src, RemoteSlice dst_slice,
                                   std::optional<std::uint64_t> local_id,
                                   std::optional<std::uint64_t> remote_id,
                                   std::uint64_t timeout_ns) {
  return run_blocking(
      *this,
      [&] { return try_put_with_completion(dst, src, dst_slice, local_id, remote_id); },
      timeout_ns);
}

Status Photon::send_with_completion(Rank dst, std::span<const std::byte> payload,
                                    std::optional<std::uint64_t> local_id,
                                    std::uint64_t remote_id,
                                    std::uint64_t timeout_ns) {
  return run_blocking(
      *this,
      [&] { return try_send_with_completion(dst, payload, local_id, remote_id); },
      timeout_ns);
}

Status Photon::get_with_completion(Rank src_rank, LocalMutSlice dst,
                                   RemoteSlice src_slice,
                                   std::optional<std::uint64_t> local_id,
                                   std::optional<std::uint64_t> remote_id,
                                   std::uint64_t timeout_ns) {
  return run_blocking(
      *this,
      [&] {
        return try_get_with_completion(src_rank, dst, src_slice, local_id,
                                       remote_id);
      },
      timeout_ns);
}

Status Photon::signal(Rank dst, std::uint64_t remote_id, std::uint64_t timeout_ns) {
  return run_blocking(*this, [&] { return try_signal(dst, remote_id); },
                      timeout_ns);
}

Status Photon::flush(Rank dst, std::uint64_t timeout_ns) {
  if (dst >= nranks_) return Status::BadArgument;
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    progress();
    if (nic_.in_flight(dst) == 0 && deferred_pending_[dst] == 0) {
      PHOTON_CHECK_HOOK(nic_.checker().on_flush(rank(), dst));
      return Status::Ok;
    }
    if (dl.expired()) return Status::Retry;
    idle_wait_step(spins);
  }
}

// ---- progress & probing -----------------------------------------------------------------

void Photon::sweep_peer_health() {
  const std::uint64_t gen = nic_.health().down_generation();
  if (gen == health_gen_seen_) return;
  health_gen_seen_ = gen;
  for (Rank r = 0; r < nranks_; ++r)
    if (r != rank() && !peer_down_done_[r] && nic_.peer_down(r))
      on_peer_down(r);
}

void Photon::on_peer_down(Rank r) {
  peer_down_done_[r] = true;
  peer_failed_[r] = true;
  PHOTON_CHECK_HOOK(nic_.checker().on_peer_dead(rank(), r));
  // Deferred GWC notifies toward the dead peer can never be delivered.
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (it->dst != r) {
      ++it;
      continue;
    }
    --deferred_pending_[r];
    ++stats_.op_errors;
    error_q_.push_back(Status::PeerUnreachable);
    PHOTON_CHECK_HOOK(nic_.checker().on_remote_id_lost(r, it->id));
    it = deferred_.erase(it);
  }
  // Adverts received *from* the dead peer describe windows nobody will FIN;
  // handing them out would wedge the rendezvous protocol.
  for (auto it = adverts_.begin(); it != adverts_.end();) {
    if (it->first.peer == r)
      it = adverts_.erase(it);
    else
      ++it;
  }
  // Requests whose completion depends on the peer (advertised windows
  // waiting for its FIN) resolve now. Locally-completing requests (os
  // put/get) keep their fabric completion, which carries Timeout if the op
  // was cut off on the wire.
  for (auto& [rq, info] : requests_) {
    if (info.done || !info.remote || info.peer != r) continue;
    complete_request(rq, Status::PeerUnreachable);
  }
}

bool Photon::ensure_peer(Rank dst) {
  const std::uint32_t ep = nic_.tx_epoch(dst);
  if (ep != tx_epoch_seen_[dst]) on_peer_up(dst, ep);
  if (!nic_.peer_down(dst)) return true;
  if (!nic_.config().auto_recover || !nic_.try_recover(dst)) return false;
  on_peer_up(dst, nic_.tx_epoch(dst));
  return true;
}

void Photon::on_peer_up(Rank dst, std::uint32_t epoch) {
  tx_epoch_seen_[dst] = epoch;
  // The new connection's go-back-N stream restarts at sequence zero, so the
  // eager ring / ledger cursors toward dst restart with it.
  senders_[dst] = SenderState{};
  // The credit cells dst writes into count the dead epoch's consumption and
  // the recovered peer restarts both cursors at zero. Mirror load_u64's
  // atomics: a stale in-flight credit return may still race these stores
  // (ring_outstanding's clamp absorbs that).
  auto zero_cell = [this](std::size_t off) {
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(slab_ptr(off)))
        .store(0, std::memory_order_release);
  };
  zero_cell(credit_off(dst));
  zero_cell(credit_off(dst) + 8);
  // Un-latch the verbs-style QP-error state. Ops that already failed with
  // PeerUnreachable stay failed (at-most-once); only new posts flow again.
  peer_failed_[dst] = false;
  peer_down_done_[dst] = false;
  // Outstanding shadow ops toward dst belong to the dead epoch — their
  // completions can never arrive, which is expected rather than a leak.
  PHOTON_CHECK_HOOK(nic_.checker().on_peer_recovered(rank(), dst));
}

Status Photon::quiesce(std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    progress();
    bool idle = deferred_.empty();
    for (Rank r = 0; idle && r < nranks_; ++r)
      if (nic_.in_flight(r) != 0) idle = false;
    if (idle) return Status::Ok;
    if (dl.expired()) return Status::Retry;
    idle_wait_step(spins);
  }
}

void Photon::flush_deferred() {
  std::size_t n = deferred_.size();
  while (n-- > 0 && !deferred_.empty()) {
    DeferredSignal d = deferred_.front();
    deferred_.pop_front();
    const Status st = ledger_signal(d.dst, d.id, d.from_get, std::nullopt,
                                    /*chained=*/false, d.post_vtime);
    if (transient(st)) {
      deferred_.push_back(d);  // try again on a later progress call
    } else {
      --deferred_pending_[d.dst];
      if (st != Status::Ok) {
        ++stats_.op_errors;
        error_q_.push_back(st);
        PHOTON_CHECK_HOOK(nic_.checker().on_remote_id_lost(d.dst, d.id));
      }
    }
  }
}

bool Photon::drain_send_cq() {
  const std::size_t n = nic_.poll_send_batch(
      std::span(cq_batch_.data(), cfg_.max_probe_batch));
  for (std::size_t i = 0; i < n; ++i) {
    nic_.charge_consume();
    handle_local_completion(cq_batch_[i]);
  }
  return n != 0;
}

bool Photon::drain_recv_cq() {
  const std::size_t n = nic_.poll_recv_batch(
      std::span(cq_batch_.data(), cfg_.max_probe_batch));
  for (std::size_t i = 0; i < n; ++i) {
    nic_.charge_consume();
    handle_recv_event(cq_batch_[i]);
  }
  return n != 0;
}

void Photon::progress() {
  sweep_peer_health();
  flush_deferred();
  drain_send_cq();
  drain_recv_cq();
}

bool Photon::progress_jump() {
  flush_deferred();
  const auto smin = nic_.send_cq().min_vtime();
  const auto rmin = nic_.recv_cq().min_vtime();
  fabric::Completion c;
  if (rmin && (!smin || *rmin <= *smin)) {
    if (nic_.jump_recv(c) == Status::Ok) {
      handle_recv_event(c);
      return true;
    }
  }
  if (nic_.jump_send(c) == Status::Ok) {
    handle_local_completion(c);
    return true;
  }
  if (nic_.jump_recv(c) == Status::Ok) {
    handle_recv_event(c);
    return true;
  }
  return false;
}

void Photon::handle_local_completion(const fabric::Completion& c) {
  if (c.wr_id >= ops_.size() || !ops_[c.wr_id].in_use) {
    // Unsignaled op that failed remotely — no record to consult. Every
    // unsignaled op the middleware posts (pads, control messages, credit
    // returns, doorbells) is part of sequenced per-peer state, so latch the
    // peer dead.
    if (c.status != Status::Ok) {
      ++stats_.op_errors;
      error_q_.push_back(c.status);
      // Completions stamped with a pre-fence epoch report ops that died
      // with the old connection; they must not re-latch a recovered link.
      if (c.peer < peer_failed_.size() && c.epoch == nic_.tx_epoch(c.peer)) {
        peer_failed_[c.peer] = true;
        PHOTON_CHECK_HOOK(nic_.checker().on_peer_dead(rank(), c.peer));
      }
    }
    return;
  }
  OpRecord rec = ops_[c.wr_id];
  ops_[c.wr_id].in_use = false;
  free_ops_.push_back(c.wr_id);

  if (c.status != Status::Ok) {
    ++stats_.op_errors;
    error_q_.push_back(c.status);
    // A failed direct put's doorbell is a separately chained WR, so its
    // remote id may still be delivered; every other kind takes the id down
    // with the payload.
    PHOTON_CHECK_HOOK(nic_.checker().on_op_error(
        rec.check_serial, rec.kind == OpKind::kPwcDirect));
    if (rec.request != kInvalidRequest) complete_request(rec.request, c.status);
    // A failed eager/ledger op leaves a hole in sequenced shared state; the
    // peer connection is latched dead (verbs QP error semantics) — unless
    // the failure belongs to an epoch a later fence already superseded.
    if ((rec.kind == OpKind::kPwcEager || rec.kind == OpKind::kSignal) &&
        c.epoch == nic_.tx_epoch(rec.peer)) {
      peer_failed_[rec.peer] = true;
      PHOTON_CHECK_HOOK(nic_.checker().on_peer_dead(rank(), rec.peer));
    }
    return;
  }

  PHOTON_TELEM_HOOK(oplat_.record_local(op_class_of(rec.kind), rec.peer,
                                        sat_sub(c.vtime, rec.post_vtime)));

  switch (rec.kind) {
    case OpKind::kPwcDirect:
    case OpKind::kPwcEager:
    case OpKind::kSignal:
      if (rec.has_local_id) {
        local_q_.push_back({rec.local_id, rec.peer});
        ++stats_.local_completions;
        trace(util::TraceKind::kLocalDone, rec.peer, c.byte_len, rec.local_id);
      }
      break;
    case OpKind::kGwc:
      if (rec.has_local_id) {
        local_q_.push_back({rec.local_id, rec.peer});
        ++stats_.local_completions;
      }
      if (rec.has_remote_id) {
        const Status st =
            ledger_signal(rec.peer, rec.remote_id, true, std::nullopt,
                          /*chained=*/false, rec.post_vtime);
        if (transient(st)) {
          deferred_.push_back({rec.peer, rec.remote_id, true, rec.post_vtime});
          ++deferred_pending_[rec.peer];
        } else if (st != Status::Ok) {
          error_q_.push_back(st);
          PHOTON_CHECK_HOOK(
              nic_.checker().on_remote_id_lost(rec.peer, rec.remote_id));
        }
      }
      break;
    case OpKind::kOsPut:
    case OpKind::kOsGet:
      complete_request(rec.request, Status::Ok);
      break;
  }
}

void Photon::handle_recv_event(const fabric::Completion& c) {
  if (c.peer < nranks_ && c.epoch != rx_epoch_seen_[c.peer]) {
    // First delivery of a new receive epoch: the peer fenced a fresh
    // connection and restarted its ring/ledger cursors at zero. Mirror it,
    // and drop adverts it sent over the dead incarnation — its side already
    // failed those requests, so their FINs can never be matched.
    rx_epoch_seen_[c.peer] = c.epoch;
    receivers_[c.peer] = ReceiverState{};
    for (auto it = adverts_.begin(); it != adverts_.end();) {
      if (it->first.peer == c.peer)
        it = adverts_.erase(it);
      else
        ++it;
    }
  }
  if (c.status != Status::Ok) {
    ++stats_.op_errors;
    error_q_.push_back(c.status);
    return;
  }
  switch (imm_kind(c.imm)) {
    case ImmKind::kEager:
      consume_eager(c.peer, imm_aux(c.imm), c.vtime);
      break;
    case ImmKind::kSignal:
      consume_ledger(c.peer, imm_aux(c.imm), c.vtime);
      break;
    case ImmKind::kCredit:
      break;  // the credit cells are already readable; clock advanced on pop
    default:
      log::warn("photon: unknown imm kind ", c.imm);
      break;
  }
}

void Photon::consume_eager(Rank src, [[maybe_unused]] std::uint64_t post_vt,
                           [[maybe_unused]] std::uint64_t deliver_vt) {
  const std::size_t R = cfg_.eager_ring_bytes;
  ReceiverState& rs = receivers_[src];
  const std::byte* ring = slab_ptr(ring_off(src));

  for (;;) {
    const std::size_t pos = static_cast<std::size_t>(rs.ring_tail % R);
    EagerHeader h;
    std::memcpy(&h, ring + pos, sizeof(h));
    if (h.kind == static_cast<std::uint16_t>(MsgKind::kPad)) {
      if (pos == 0) {
        // A pad can never legitimately start at offset 0 (messages are at
        // most half a ring): the cursor has desynchronized (e.g. a dropped
        // message left a hole). Surface instead of spinning.
        log::error("photon: eager ring desync from rank ", src);
        error_q_.push_back(Status::ProtocolError);
        return;
      }
      rs.ring_tail += R - pos;
      continue;
    }
    if (h.kind > static_cast<std::uint16_t>(MsgKind::kFin)) {
      log::error("photon: corrupt eager header kind ", h.kind, " from rank ",
                 src);
      error_q_.push_back(Status::ProtocolError);
      return;
    }
    const std::byte* body = ring + pos + sizeof(EagerHeader);
    if ((h.flags & kEagerFlagCrc) != 0 &&
        resilience::crc32c(body, h.size) != h.crc) {
      log::error("photon: eager payload CRC mismatch from rank ", src);
      error_q_.push_back(Status::ProtocolError);
      return;
    }
    const MsgKind kind = static_cast<MsgKind>(h.kind);
    if (kind == MsgKind::kUser) {
      ProbeEvent ev;
      ev.id = h.id;
      ev.peer = src;
      ev.payload.assign(body, body + h.size);
      clock().add(static_cast<std::uint64_t>(static_cast<double>(h.size) *
                                             cfg_.eager_copy_per_byte_ns));
      trace(util::TraceKind::kRemoteEvent, src, h.size, ev.id);
      // Each kEager completion delivers exactly one non-pad message, in
      // order, so this completion's imm-carried post vtime is this
      // message's post vtime.
      PHOTON_TELEM_HOOK(oplat_.record_remote(telemetry::OpClass::kEager, src,
                                             sat_sub(deliver_vt, post_vt)));
      event_q_.push_back(std::move(ev));
      ++stats_.events_delivered;
    } else {
      handle_control(src, h, body);
    }
    rs.ring_tail += ring_footprint(h.size);
    break;
  }
  maybe_return_credits(src);
}

void Photon::consume_ledger(Rank src, std::uint64_t slot,
                            [[maybe_unused]] std::uint64_t deliver_vt) {
  ReceiverState& rs = receivers_[src];
  const std::uint64_t expected = rs.ledger_tail % cfg_.ledger_entries;
  if (slot != expected) {
    log::warn("photon: ledger slot out of order (got ", slot, " expected ",
              expected, ")");
    error_q_.push_back(Status::ProtocolError);
    return;
  }
  LedgerEntry e;
  std::memcpy(&e, slab_ptr(ledger_off(src) + slot * sizeof(LedgerEntry)),
              sizeof(e));
  ProbeEvent ev;
  ev.id = e.id;
  ev.peer = src;
  ev.from_get = ledger_meta_from_get(e.meta);
  PHOTON_TELEM_HOOK({
    const telemetry::OpClass oc =
        ledger_meta_from_get(e.meta)      ? telemetry::OpClass::kGet
        : ledger_meta_put_chained(e.meta) ? telemetry::OpClass::kPut
                                          : telemetry::OpClass::kSignal;
    oplat_.record_remote(oc, src,
                         sat_sub(deliver_vt, ledger_meta_vtime(e.meta)));
  });
  trace(util::TraceKind::kRemoteEvent, src, 0, ev.id);
  event_q_.push_back(std::move(ev));
  ++stats_.events_delivered;
  ++rs.ledger_tail;
  maybe_return_credits(src);
}

void Photon::handle_control(Rank src, const EagerHeader& h, const std::byte* body) {
  switch (static_cast<MsgKind>(h.kind)) {
    case MsgKind::kAdvert: {
      AdvertBody b;
      std::memcpy(&b, body, sizeof(b));
      RendezvousBuffer rb;
      rb.peer = src;
      rb.addr = b.addr;
      rb.size = b.size;
      rb.rkey = b.rkey;
      rb.tag = b.tag;
      rb.remote_request = b.request;
      rb.get_side = b.get_side != 0;
      adverts_[{src, b.tag}].push_back(rb);
      break;
    }
    case MsgKind::kFin: {
      FinBody b;
      std::memcpy(&b, body, sizeof(b));
      complete_request(b.request, Status::Ok);
      break;
    }
    default:
      log::warn("photon: unknown control kind ", h.kind);
      error_q_.push_back(Status::ProtocolError);
      break;
  }
}

std::optional<LocalComplete> Photon::probe_local() {
  if (local_q_.empty()) progress();
  if (local_q_.empty()) return std::nullopt;
  LocalComplete out = local_q_.front();
  local_q_.pop_front();
  PHOTON_CHECK_HOOK(nic_.checker().on_local_id_popped(rank(), out.id));
  return out;
}

std::optional<ProbeEvent> Photon::probe_event() {
  if (event_q_.empty()) progress();
  if (event_q_.empty()) return std::nullopt;
  ProbeEvent out = std::move(event_q_.front());
  event_q_.pop_front();
  PHOTON_CHECK_HOOK(nic_.checker().on_remote_id_popped(rank(), out.id));
  return out;
}

std::optional<ProbeEvent> Photon::probe_event_from(Rank peer) {
  if (event_q_.empty()) progress();
  for (auto it = event_q_.begin(); it != event_q_.end(); ++it) {
    if (it->peer == peer) {
      ProbeEvent out = std::move(*it);
      event_q_.erase(it);
      PHOTON_CHECK_HOOK(nic_.checker().on_remote_id_popped(rank(), out.id));
      return out;
    }
  }
  return std::nullopt;
}

Status Photon::wait_event_from(Rank peer, ProbeEvent& out,
                               std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    if (auto e = probe_event_from(peer)) {
      out = std::move(*e);
      return Status::Ok;
    }
    if (nic_.peer_down(peer)) return Status::PeerUnreachable;
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

std::optional<Status> Photon::probe_error() {
  if (error_q_.empty()) progress();
  if (error_q_.empty()) (void)progress_jump();
  if (error_q_.empty()) return std::nullopt;
  const Status out = error_q_.front();
  error_q_.pop_front();
  return out;
}

Status Photon::wait_local(LocalComplete& out, std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    if (auto l = probe_local()) {
      out = *l;
      return Status::Ok;
    }
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

Status Photon::wait_event(ProbeEvent& out, std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    if (auto e = probe_event()) {
      out = std::move(*e);
      return Status::Ok;
    }
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

// ---- rendezvous ------------------------------------------------------------------------

Status Photon::send_advert(Rank peer, const BufferDescriptor& buf,
                           std::uint64_t tag, RequestId rq, bool get_side) {
  AdvertBody b;
  b.addr = buf.addr;
  b.size = buf.size;
  b.rkey = buf.rkey;
  b.tag = tag;
  b.request = rq;
  b.get_side = get_side ? 1 : 0;
  const auto bytes = std::as_bytes(std::span<const AdvertBody, 1>(&b, 1));
  // Control messages must eventually go through; retry briefly here so
  // callers see only hard failures.
  const Status st = run_blocking(
      *this,
      [&] {
        return eager_send(peer, MsgKind::kAdvert, 0, bytes, std::nullopt,
                          OpKind::kPwcEager, kInvalidRequest);
      },
      kDefaultTimeoutNs);
  if (st == Status::Ok) ++stats_.adverts_sent;
  return st;
}

util::Result<RequestId> Photon::post_recv_buffer_rq(Rank peer,
                                                    const BufferDescriptor& buf,
                                                    std::uint64_t tag) {
  if (peer >= nranks_ || !buf.valid()) return Status::BadArgument;
  if (tag == kAnyTag) return Status::BadArgument;
  if (!ensure_peer(peer)) return Status::PeerUnreachable;
  const RequestId rq = alloc_request(peer, /*remote=*/true);
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kAdvert;
    pi.initiator = rank();
    pi.target = peer;
    pi.local_addr = reinterpret_cast<const void*>(buf.addr);
    pi.local_len = buf.size;
    pi.local_lkey = buf.lkey;
    pi.request = rq;
    pi.advert_is_send = false;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  const Status st = send_advert(peer, buf, tag, rq, /*get_side=*/false);
  if (st != Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    requests_.erase(rq);
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  return rq;
}

util::Result<RequestId> Photon::post_send_buffer_rq(Rank peer,
                                                    const BufferDescriptor& buf,
                                                    std::uint64_t tag) {
  if (peer >= nranks_ || !buf.valid()) return Status::BadArgument;
  if (tag == kAnyTag) return Status::BadArgument;
  if (!ensure_peer(peer)) return Status::PeerUnreachable;
  const RequestId rq = alloc_request(peer, /*remote=*/true);
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kAdvert;
    pi.initiator = rank();
    pi.target = peer;
    pi.local_addr = reinterpret_cast<const void*>(buf.addr);
    pi.local_len = buf.size;
    pi.local_lkey = buf.lkey;
    pi.request = rq;
    pi.advert_is_send = true;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  const Status st = send_advert(peer, buf, tag, rq, /*get_side=*/true);
  if (st != Status::Ok) {
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    requests_.erase(rq);
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  return rq;
}

namespace {
std::optional<RendezvousBuffer> take_matching(
    std::deque<RendezvousBuffer>& q, bool get_side) {
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->get_side == get_side) {
      RendezvousBuffer rb = *it;
      q.erase(it);
      return rb;
    }
  }
  return std::nullopt;
}
}  // namespace

util::Result<RendezvousBuffer> Photon::wait_send_rq(Rank peer, std::uint64_t tag,
                                                    std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    progress();
    if (tag != kAnyTag) {
      auto it = adverts_.find({peer, tag});
      if (it != adverts_.end()) {
        if (auto rb = take_matching(it->second, false)) return *rb;
      }
    } else {
      for (auto& [key, q] : adverts_) {
        if (key.peer != peer) continue;
        if (auto rb = take_matching(q, false)) return *rb;
      }
    }
    if (peer < nranks_ && nic_.peer_down(peer)) return Status::PeerUnreachable;
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

util::Result<RendezvousBuffer> Photon::wait_recv_rq(Rank peer, std::uint64_t tag,
                                                    std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    progress();
    if (tag != kAnyTag) {
      auto it = adverts_.find({peer, tag});
      if (it != adverts_.end()) {
        if (auto rb = take_matching(it->second, true)) return *rb;
      }
    } else {
      for (auto& [key, q] : adverts_) {
        if (key.peer != peer) continue;
        if (auto rb = take_matching(q, true)) return *rb;
      }
    }
    if (peer < nranks_ && nic_.peer_down(peer)) return Status::PeerUnreachable;
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

util::Result<RequestId> Photon::post_os_put(Rank peer, LocalSlice src,
                                            const RendezvousBuffer& rb) {
  if (peer != rb.peer || src.len > rb.size) return Status::BadArgument;
  if (!ensure_peer(peer)) return Status::PeerUnreachable;
  if (!fabric_headroom(peer, 1)) return Status::QueueFull;
  const RequestId rq = alloc_request(peer, /*remote=*/false);
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    // The remote window stays claimed by the peer's advert op; this op only
    // pins its local source and conflict-checks the remote range.
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kOsPut;
    pi.initiator = rank();
    pi.target = peer;
    pi.local_addr = src.addr;
    pi.local_len = src.len;
    pi.local_lkey = src.lkey;
    pi.remote_addr = rb.addr;
    pi.remote_len = src.len;
    pi.remote_rkey = rb.rkey;
    pi.request = rq;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  OpRecord rec;
  rec.kind = OpKind::kOsPut;
  rec.peer = peer;
  rec.request = rq;
  rec.check_serial = check_serial;
  rec.post_vtime = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
  const std::uint64_t wr_id = alloc_op(rec);
  const Status st =
      nic_.post_put(peer, fabric::LocalRef{src.addr, src.len, src.lkey},
                    fabric::RemoteRef{rb.addr, rb.rkey}, wr_id, true);
  if (st != Status::Ok) {
    ops_[wr_id].in_use = false;
    free_ops_.push_back(wr_id);
    requests_.erase(rq);
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  return rq;
}

util::Result<RequestId> Photon::post_os_get(Rank peer, LocalMutSlice dst,
                                            const RendezvousBuffer& rb) {
  if (peer != rb.peer || dst.len > rb.size) return Status::BadArgument;
  if (!ensure_peer(peer)) return Status::PeerUnreachable;
  if (!fabric_headroom(peer, 1)) return Status::QueueFull;
  const RequestId rq = alloc_request(peer, /*remote=*/false);
  [[maybe_unused]] std::uint64_t check_serial = 0;
#if PHOTON_CHECK_ENABLED
  {
    check::PostInfo pi;
    pi.kind = check::CheckOpKind::kOsGet;
    pi.initiator = rank();
    pi.target = peer;
    pi.local_addr = dst.addr;
    pi.local_len = dst.len;
    pi.local_lkey = dst.lkey;
    pi.remote_addr = rb.addr;
    pi.remote_len = dst.len;
    pi.remote_rkey = rb.rkey;
    pi.request = rq;
    check_serial = nic_.checker().begin_op(pi);
  }
#endif
  OpRecord rec;
  rec.kind = OpKind::kOsGet;
  rec.peer = peer;
  rec.request = rq;
  rec.check_serial = check_serial;
  rec.post_vtime = PHOTON_TELEM_EXPR(oplat_.armed() ? clock().now() : 0, 0);
  const std::uint64_t wr_id = alloc_op(rec);
  const Status st =
      nic_.post_get(peer, fabric::LocalMutRef{dst.addr, dst.len, dst.lkey},
                    fabric::RemoteRef{rb.addr, rb.rkey}, wr_id);
  if (st != Status::Ok) {
    ops_[wr_id].in_use = false;
    free_ops_.push_back(wr_id);
    requests_.erase(rq);
    PHOTON_CHECK_HOOK(nic_.checker().abort_post(check_serial));
    return st;
  }
  PHOTON_CHECK_HOOK(nic_.checker().commit(check_serial));
  return rq;
}

Status Photon::send_fin(Rank peer, const RendezvousBuffer& rb) {
  if (peer != rb.peer) return Status::BadArgument;
  FinBody b{rb.tag, rb.remote_request};
  const auto bytes = std::as_bytes(std::span<const FinBody, 1>(&b, 1));
  const Status st = run_blocking(
      *this,
      [&] {
        return eager_send(peer, MsgKind::kFin, 0, bytes, std::nullopt,
                          OpKind::kPwcEager, kInvalidRequest);
      },
      kDefaultTimeoutNs);
  if (st == Status::Ok) ++stats_.fins_sent;
  return st;
}

Status Photon::test(RequestId rq, bool& done) {
  progress();
  auto it = requests_.find(rq);
  if (it == requests_.end()) return Status::BadArgument;
  done = it->second.done;
  if (!done) return Status::Ok;
  const Status st = it->second.status;
  requests_.erase(it);
  return st;
}

util::Result<std::size_t> Photon::wait_any(std::span<const RequestId> rqs,
                                           std::uint64_t timeout_ns) {
  if (rqs.empty()) return Status::BadArgument;
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    progress();
    for (std::size_t i = 0; i < rqs.size(); ++i) {
      auto it = requests_.find(rqs[i]);
      if (it == requests_.end()) return Status::BadArgument;
      if (it->second.done) {
        const Status st = it->second.status;
        requests_.erase(it);
        if (st != Status::Ok) return st;
        return i;
      }
    }
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

Status Photon::wait(RequestId rq, std::uint64_t timeout_ns) {
  util::Deadline dl(timeout_ns);
  std::uint32_t spins = 0;
  for (;;) {
    bool done = false;
    const Status st = test(rq, done);
    if (st != Status::Ok) return st;
    if (done) return Status::Ok;
    if (dl.expired()) return Status::NotFound;
    idle_wait_step(spins);
  }
}

}  // namespace photon::core
