// Photon: RMA middleware with put/get-with-completion, completion ledgers,
// eager rings, and rendezvous buffer-request protocols.
//
// One Photon instance per rank; construction is collective (it allocates and
// registers the per-peer ledgers/rings and exchanges their descriptors over
// the out-of-band bootstrap channel, as the real library does over PMI).
//
// Threading: a Photon object is owned by its rank's thread. All methods are
// non-reentrant; only the underlying fabric is cross-thread.
//
// Core semantics (mirrors the published photon API):
//   * put_with_completion(dst, src, dst_slice, local_id, remote_id)
//       - one-sided write into a peer-published buffer;
//       - `local_id` pops from probe_local() when the source is reusable;
//       - `remote_id` pops from the *target's* probe_event() when the data
//         has landed (delivered via a completion-ledger entry + doorbell).
//   * send_with_completion: like PWC but the payload rides the per-peer
//     eager ring — no target buffer needs to be known; the target's
//     probe_event() yields the payload.
//   * get_with_completion: one-sided read; local_id on completion at the
//     initiator; remote_id notifies the target its buffer was read.
//   * post_{recv,send}_buffer_rq / wait_{send,recv}_rq / post_os_{put,get} /
//     send_fin: the rendezvous protocol for large transfers into/out of
//     caller-owned registered buffers.
//
// Flow control: eager-ring bytes and ledger slots are credit-managed per
// peer. try_* calls return Status::Retry when credits are exhausted; the
// blocking wrappers progress until credits return (credit returns arrive as
// doorbell events carrying virtual timestamps, so stalls are visible in
// virtual time).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/buffer.hpp"
#include "core/config.hpp"
#include "core/events.hpp"
#include "core/wire_format.hpp"
#include "fabric/nic.hpp"
#include "runtime/bootstrap.hpp"
#include "telemetry/hooks.hpp"
#include "telemetry/oplat.hpp"
#include "util/expected.hpp"
#include "util/trace.hpp"

namespace photon::core {

/// Middleware-level statistics (single-threaded; owned by the rank).
struct CoreStats {
  std::uint64_t eager_sent = 0;
  std::uint64_t eager_bytes = 0;
  std::uint64_t direct_puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t signals = 0;
  std::uint64_t pads = 0;
  std::uint64_t credit_returns = 0;
  std::uint64_t credit_stalls = 0;   ///< try_* rejected for ring credits
  std::uint64_t ledger_stalls = 0;   ///< try_* rejected for ledger slots
  std::uint64_t events_delivered = 0;
  std::uint64_t local_completions = 0;
  std::uint64_t adverts_sent = 0;
  std::uint64_t fins_sent = 0;
  std::uint64_t op_errors = 0;
};

class Photon {
 public:
  static constexpr std::uint64_t kAnyTag = ~std::uint64_t{0};
  static constexpr std::uint64_t kDefaultTimeoutNs = 10'000'000'000ULL;  // 10 s

  /// Collective across all ranks of the fabric.
  Photon(fabric::Nic& nic, runtime::Exchanger& oob, const Config& cfg);
  ~Photon();

  Photon(const Photon&) = delete;
  Photon& operator=(const Photon&) = delete;

  fabric::Rank rank() const noexcept { return nic_.rank(); }
  std::uint32_t size() const noexcept { return nranks_; }
  const Config& config() const noexcept { return cfg_; }
  fabric::Nic& nic() noexcept { return nic_; }
  const CoreStats& stats() const noexcept { return stats_; }
  fabric::VClock& clock() noexcept { return nic_.clock(); }

  /// Attach (or detach with nullptr) a virtual-time tracer. The tracer is
  /// owned by the caller and must outlive its attachment; single-threaded
  /// like the Photon object itself.
  void set_tracer(util::Tracer* t) noexcept { tracer_ = t; }

  // ---- registration --------------------------------------------------------
  util::Result<BufferDescriptor> register_buffer(void* addr, std::size_t len);
  Status unregister_buffer(const BufferDescriptor& d);
  /// Collective: allgather of one descriptor per rank.
  std::vector<BufferDescriptor> exchange_descriptors(const BufferDescriptor& mine);

  // ---- one-sided with completion -------------------------------------------
  Status try_put_with_completion(fabric::Rank dst, LocalSlice src,
                                 RemoteSlice dst_slice,
                                 std::optional<std::uint64_t> local_id,
                                 std::optional<std::uint64_t> remote_id);
  Status try_send_with_completion(fabric::Rank dst,
                                  std::span<const std::byte> payload,
                                  std::optional<std::uint64_t> local_id,
                                  std::uint64_t remote_id);
  Status try_get_with_completion(fabric::Rank src_rank, LocalMutSlice dst,
                                 RemoteSlice src_slice,
                                 std::optional<std::uint64_t> local_id,
                                 std::optional<std::uint64_t> remote_id);
  /// Zero-byte PWC: pure remote doorbell.
  Status try_signal(fabric::Rank dst, std::uint64_t remote_id);

  /// Blocking wrappers: progress+retry until posted or `timeout_ns` of wall
  /// time elapses (returns Retry on timeout).
  Status put_with_completion(fabric::Rank dst, LocalSlice src,
                             RemoteSlice dst_slice,
                             std::optional<std::uint64_t> local_id,
                             std::optional<std::uint64_t> remote_id,
                             std::uint64_t timeout_ns = kDefaultTimeoutNs);
  Status send_with_completion(fabric::Rank dst, std::span<const std::byte> payload,
                              std::optional<std::uint64_t> local_id,
                              std::uint64_t remote_id,
                              std::uint64_t timeout_ns = kDefaultTimeoutNs);
  Status get_with_completion(fabric::Rank src_rank, LocalMutSlice dst,
                             RemoteSlice src_slice,
                             std::optional<std::uint64_t> local_id,
                             std::optional<std::uint64_t> remote_id,
                             std::uint64_t timeout_ns = kDefaultTimeoutNs);
  Status signal(fabric::Rank dst, std::uint64_t remote_id,
                std::uint64_t timeout_ns = kDefaultTimeoutNs);

  /// Block until every operation this rank posted toward `dst` has
  /// completed at the fabric level and all deferred protocol work (GWC
  /// notifies) has been issued. Completed local ids are queued for
  /// probe_local() as usual. Retry on wall timeout.
  Status flush(fabric::Rank dst, std::uint64_t timeout_ns = kDefaultTimeoutNs);

  // ---- peer health ----------------------------------------------------------
  /// True once the fabric declared `peer` Down (Fabric::kill or repeated
  /// reliable-delivery timeouts). New operations toward it fail fast with
  /// Status::PeerUnreachable; pending ones resolve promptly instead of
  /// hanging (deadline Timeout for in-flight ops, PeerUnreachable for
  /// protocol state the peer can no longer advance).
  bool peer_down(fabric::Rank peer) const noexcept {
    return nic_.peer_down(peer);
  }
  /// Drain until no fabric op is in flight and no deferred protocol work
  /// remains queued toward any peer. Work toward Down peers is reclaimed,
  /// not waited on, so this returns promptly after a failure. Retry on wall
  /// timeout. Use before teardown when peers may have died.
  Status quiesce(std::uint64_t timeout_ns = kDefaultTimeoutNs);

  // ---- progress & probing ---------------------------------------------------
  /// Drain bounded batches of *arrived* fabric completions into the event
  /// queues (never advances virtual time past the present).
  void progress();
  /// Idle-wait step: consume the earliest pending completion even if its
  /// virtual arrival is in the future, jumping the clock to it. Returns
  /// false when nothing is pending. Use only when the rank has nothing
  /// better to do (wait loops call it automatically).
  bool progress_jump();
  /// One iteration of an idle *wait*: yields once (a lagging peer may be
  /// about to publish an earlier arrival), then jumps to the earliest
  /// pending virtual event, then backs off. Used by all blocking loops;
  /// public so layered waits (collectives, runtimes) share the discipline.
  void idle_wait_step(std::uint32_t& spins);
  /// Next initiator-side completion (local ids), if any.
  std::optional<LocalComplete> probe_local();
  /// Next target-side event (remote ids / eager payloads), if any.
  std::optional<ProbeEvent> probe_event();
  /// Per-peer probe (the published API probes per proc): next event from
  /// `peer` only; events from other peers stay queued in order.
  std::optional<ProbeEvent> probe_event_from(fabric::Rank peer);
  /// Next asynchronous operation error (fault injection, remote access
  /// violations), if any.
  std::optional<Status> probe_error();
  /// Blocking probes (wall-time bounded; NotFound on timeout).
  Status wait_local(LocalComplete& out, std::uint64_t timeout_ns = kDefaultTimeoutNs);
  Status wait_event(ProbeEvent& out, std::uint64_t timeout_ns = kDefaultTimeoutNs);
  Status wait_event_from(fabric::Rank peer, ProbeEvent& out,
                         std::uint64_t timeout_ns = kDefaultTimeoutNs);

  // ---- rendezvous (buffer-request) protocol ---------------------------------
  /// Receiver advertises a registered landing buffer; the returned request
  /// completes when the peer FINs (data is then in place).
  util::Result<RequestId> post_recv_buffer_rq(fabric::Rank peer,
                                              const BufferDescriptor& buf,
                                              std::uint64_t tag);
  /// Sender advertises a registered source buffer for the peer to os_get
  /// from; the request completes on FIN (buffer then reusable).
  util::Result<RequestId> post_send_buffer_rq(fabric::Rank peer,
                                              const BufferDescriptor& buf,
                                              std::uint64_t tag);
  /// Data-sender side: wait for a peer's recv-buffer advertisement.
  util::Result<RendezvousBuffer> wait_send_rq(fabric::Rank peer, std::uint64_t tag,
                                              std::uint64_t timeout_ns = kDefaultTimeoutNs);
  /// Data-receiver side: wait for a peer's send-buffer advertisement.
  util::Result<RendezvousBuffer> wait_recv_rq(fabric::Rank peer, std::uint64_t tag,
                                              std::uint64_t timeout_ns = kDefaultTimeoutNs);
  /// Write directly into an advertised buffer. Completes locally (test/wait).
  util::Result<RequestId> post_os_put(fabric::Rank peer, LocalSlice src,
                                      const RendezvousBuffer& rb);
  /// Read directly from an advertised buffer. Completes locally (test/wait).
  util::Result<RequestId> post_os_get(fabric::Rank peer, LocalMutSlice dst,
                                      const RendezvousBuffer& rb);
  /// Tell the advertiser the transfer is done (completes their request).
  Status send_fin(fabric::Rank peer, const RendezvousBuffer& rb);

  /// Nonblocking request check; consumes the request when done.
  Status test(RequestId rq, bool& done);
  /// Blocking request wait; consumes the request on success.
  Status wait(RequestId rq, std::uint64_t timeout_ns = kDefaultTimeoutNs);
  /// Wait for any of `rqs` to complete; on success returns its index and
  /// consumes that request (the others stay pending). NotFound on timeout.
  util::Result<std::size_t> wait_any(std::span<const RequestId> rqs,
                                     std::uint64_t timeout_ns = kDefaultTimeoutNs);

  // ---- introspection (tests/benches) ----------------------------------------
  std::size_t ring_credits_available(fabric::Rank dst) const;
  std::size_t ledger_slots_available(fabric::Rank dst) const;

 private:
  struct SenderState {
    std::uint64_t ring_head = 0;    ///< cumulative bytes written
    std::uint64_t ledger_head = 0;  ///< cumulative entries written
  };
  struct ReceiverState {
    std::uint64_t ring_tail = 0;      ///< cumulative bytes consumed
    std::uint64_t ring_returned = 0;  ///< credits last written back
    std::uint64_t ledger_tail = 0;
    std::uint64_t ledger_returned = 0;
  };
  struct SlabInfo {
    std::uint64_t addr = 0;
    fabric::MrKey rkey = fabric::kInvalidKey;
  };
  enum class OpKind : std::uint8_t {
    kPwcDirect, kPwcEager, kGwc, kOsPut, kOsGet, kSignal,
  };
  struct OpRecord {
    OpKind kind = OpKind::kPwcDirect;
    bool has_local_id = false;
    std::uint64_t local_id = 0;
    fabric::Rank peer = 0;
    bool has_remote_id = false;  ///< GWC: send signal after completion
    std::uint64_t remote_id = 0;
    RequestId request = kInvalidRequest;
    std::uint64_t check_serial = 0;  ///< PhotonCheck shadow-op serial (0 = none)
    std::uint64_t post_vtime = 0;    ///< telemetry: virtual post timestamp
    bool in_use = false;
  };
  struct ReqInfo {
    bool done = false;
    Status status = Status::Ok;
    fabric::Rank peer = 0;
    bool remote = false;  ///< completion needs peer action (advert FIN); such
                          ///< requests fail with PeerUnreachable on peer death
  };
  struct DeferredSignal {
    fabric::Rank dst;
    std::uint64_t id;
    bool from_get;
    std::uint64_t post_vtime = 0;  ///< telemetry: originating op's post vtime
  };

  // Slab layout helpers (uniform across ranks).
  std::size_t ring_off(fabric::Rank src) const;
  std::size_t ledger_off(fabric::Rank src) const;
  std::size_t credit_off(fabric::Rank dst) const;
  std::size_t staging_off() const;
  std::size_t slab_size() const;

  // Credit accounting.
  std::uint64_t ring_consumed_by(fabric::Rank dst) const;  ///< read my cell
  std::uint64_t ledger_consumed_by(fabric::Rank dst) const;
  /// Ring bytes / ledger entries posted but not yet credited back. Clamped
  /// for the recovery race where a stale (pre-fence) credit return lands
  /// after on_peer_up reset the cells: a consumed cursor ahead of our head
  /// reads as zero progress (conservative; fresh returns overwrite it).
  std::uint64_t ring_outstanding(fabric::Rank dst) const;
  std::uint64_t ledger_outstanding(fabric::Rank dst) const;
  void maybe_return_credits(fabric::Rank src);

  /// True when the fabric can absorb `k` more posts to `dst` right now.
  bool fabric_headroom(fabric::Rank dst, std::size_t k) const;

  // Eager-ring send path (user payloads and control messages).
  // `check_serial` ties the op record to its PhotonCheck shadow op, if any.
  Status eager_send(fabric::Rank dst, MsgKind kind, std::uint64_t id,
                    std::span<const std::byte> payload,
                    std::optional<std::uint64_t> local_id, OpKind op_kind,
                    RequestId request, std::uint64_t check_serial = 0);
  /// Write a ledger entry + doorbell to `dst`. `chained` rides the previous
  /// post's doorbell (no extra CPU overhead charge). `origin_vtime` is the
  /// originating op's post vtime, carried to the target in the entry's spare
  /// meta bits for remote-latency telemetry (0 = stamp the current clock).
  Status ledger_signal(fabric::Rank dst, std::uint64_t id, bool from_get,
                       std::optional<std::uint64_t> local_id,
                       bool chained = false, std::uint64_t origin_vtime = 0);
  Status send_advert(fabric::Rank peer, const BufferDescriptor& buf,
                     std::uint64_t tag, RequestId rq, bool get_side);

  // Progress internals.
  /// React to peers newly declared Down by the NIC health tracker (gated on
  /// its generation counter, so the common case is one relaxed load).
  void sweep_peer_health();
  /// One-shot per peer: latch the failure, reclaim deferred signals and
  /// rendezvous adverts, and fail pending remote-dependent requests with
  /// Status::PeerUnreachable.
  void on_peer_down(fabric::Rank r);
  /// Gate for every post path toward `dst`. Syncs sender-side state when
  /// the NIC fenced a new connection epoch toward `dst` since the last post
  /// (on_peer_up), and — when NicConfig::auto_recover is set — runs the
  /// reconnect/fence protocol for a Down peer before giving up. Returns
  /// false when the peer stays unusable (callers fail fast with
  /// Status::PeerUnreachable).
  bool ensure_peer(fabric::Rank dst);
  /// Tx-epoch edge: the NIC fenced a fresh connection incarnation toward
  /// `dst`. Restart the eager-ring/ledger cursors at the new epoch's zero,
  /// zero the credit cells `dst` writes into, and clear the failure latches
  /// so new posts flow again (ops that already failed stay failed).
  void on_peer_up(fabric::Rank dst, std::uint32_t epoch);
  void flush_deferred();
  bool drain_send_cq();
  bool drain_recv_cq();
  void handle_local_completion(const fabric::Completion& c);
  void handle_recv_event(const fabric::Completion& c);
  /// `post_vt` is the initiator's wire-carried post vtime (0 when absent),
  /// `deliver_vt` the delivering completion's vtime — telemetry only.
  void consume_eager(fabric::Rank src, std::uint64_t post_vt,
                     std::uint64_t deliver_vt);
  void consume_ledger(fabric::Rank src, std::uint64_t slot,
                      std::uint64_t deliver_vt);
  void handle_control(fabric::Rank src, const EagerHeader& h,
                      const std::byte* body);

  // Op records / requests.
  std::uint64_t alloc_op(OpRecord rec);
  RequestId alloc_request(fabric::Rank peer, bool remote);
  void complete_request(RequestId rq, Status st);

  std::byte* slab_ptr(std::size_t off) { return slab_.data() + off; }
  const std::byte* slab_ptr(std::size_t off) const { return slab_.data() + off; }

  /// One iteration of a blocking loop: progress, then yield/sleep when idle.
  void idle_pause(std::uint32_t& spins);

  fabric::Nic& nic_;
  runtime::Exchanger& oob_;
  std::uint32_t nranks_;
  Config cfg_;
  CoreStats stats_;

  std::vector<std::byte> slab_;
  BufferDescriptor slab_desc_;
  std::vector<SlabInfo> peer_slabs_;

  std::vector<SenderState> senders_;
  std::vector<ReceiverState> receivers_;
  /// Per-peer failure latch (verbs QP-error semantics): an asynchronous
  /// error on an op that shares sequenced state with the peer (eager ring,
  /// completion ledger) would desynchronize the cursors, so the connection
  /// is marked dead and further sequenced ops return Disconnected. Errors
  /// on direct puts/gets touch no shared cursors and leave the peer usable.
  std::vector<bool> peer_failed_;
  /// One-shot guard for on_peer_down (peer_failed_ can also latch from
  /// completion errors without the health machinery, so it can't serve).
  std::vector<bool> peer_down_done_;
  /// Last NIC health down-generation this rank has reacted to.
  std::uint64_t health_gen_seen_ = 0;
  /// Last NIC connection epochs this layer synchronized its sequenced
  /// per-peer state to: tx (my fences toward the peer; see ensure_peer) and
  /// rx (the peer's fences toward me; see handle_recv_event).
  std::vector<std::uint32_t> tx_epoch_seen_;
  std::vector<std::uint32_t> rx_epoch_seen_;

  util::Tracer* tracer_ = nullptr;
  void trace(util::TraceKind kind, fabric::Rank peer, std::uint32_t bytes,
             std::uint64_t id) {
    if (tracer_ != nullptr) tracer_->record(clock().now(), kind, peer, bytes, id);
  }

  /// Per-(op class, peer) virtual-latency recorder, bound to cfg_.metrics
  /// (or the process registry) at construction. Clocks can rewind to zero
  /// between bench phases (sync_reset), so latencies subtract saturating.
  telemetry::OpLatencyRecorder oplat_;
  static telemetry::OpClass op_class_of(OpKind k) noexcept {
    switch (k) {
      case OpKind::kPwcDirect: return telemetry::OpClass::kPut;
      case OpKind::kPwcEager: return telemetry::OpClass::kEager;
      case OpKind::kGwc: return telemetry::OpClass::kGet;
      case OpKind::kOsPut: return telemetry::OpClass::kOsPut;
      case OpKind::kOsGet: return telemetry::OpClass::kOsGet;
      case OpKind::kSignal: return telemetry::OpClass::kSignal;
    }
    return telemetry::OpClass::kSignal;
  }
  static std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
    return a >= b ? a - b : 0;
  }
  /// Add CoreStats into the bound registry as "core.*" counters (destructor;
  /// no-op while the registry is disabled).
  void fold_stats() const;

  std::vector<OpRecord> ops_;
  std::vector<std::uint64_t> free_ops_;

  std::deque<LocalComplete> local_q_;
  std::deque<ProbeEvent> event_q_;
  std::deque<Status> error_q_;
  std::deque<DeferredSignal> deferred_;
  /// Per-peer count of entries in deferred_, so flush() tests a counter
  /// instead of rescanning the deque every spin.
  std::vector<std::uint32_t> deferred_pending_;
  /// Reusable scratch for batched CQ drains (sized max_probe_batch).
  std::vector<fabric::Completion> cq_batch_;

  std::unordered_map<RequestId, ReqInfo> requests_;
  RequestId next_request_ = 1;

  struct AdvertKey {
    fabric::Rank peer;
    std::uint64_t tag;
    bool operator==(const AdvertKey&) const = default;
  };
  struct AdvertKeyHash {
    std::size_t operator()(const AdvertKey& k) const noexcept {
      // splitmix64 finalizer over a golden-ratio mix of (peer, tag); a plain
      // shift-xor collides whole classes of tags (e.g. any pair differing
      // only in high bits).
      std::uint64_t x =
          k.tag + 0x9e3779b97f4a7c15ULL * (std::uint64_t{k.peer} + 1);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  std::unordered_map<AdvertKey, std::deque<RendezvousBuffer>, AdvertKeyHash>
      adverts_;
};

}  // namespace photon::core
