// On-the-wire formats for the Photon middleware: eager-ring message headers,
// completion-ledger entries, and the immediate-data encoding.
//
// Everything here lands in registered memory via RDMA writes, so layouts are
// fixed, trivially copyable, and 8-byte aligned.
#pragma once

#include <cstddef>
#include <cstdint>

namespace photon::core {

/// Immediate-data encoding. Low 3 bits = kind; the rest is kind-specific.
enum class ImmKind : std::uint64_t {
  kEager = 1,   ///< one eager-ring message landed (consume at ring cursor)
  kSignal = 2,  ///< completion-ledger slot written; aux = slot index
  kCredit = 3,  ///< credit-return doorbell (cells already updated in place)
};

inline std::uint64_t encode_imm(ImmKind kind, std::uint64_t aux) noexcept {
  return static_cast<std::uint64_t>(kind) | (aux << 3);
}
inline ImmKind imm_kind(std::uint64_t imm) noexcept {
  return static_cast<ImmKind>(imm & 0x7u);
}
inline std::uint64_t imm_aux(std::uint64_t imm) noexcept { return imm >> 3; }

/// Eager-ring message kinds.
enum class MsgKind : std::uint16_t {
  kPad = 0,       ///< skip to ring start; header only, `size` = dead bytes
  kUser = 1,      ///< user payload from send_with_completion
  kAdvert = 2,    ///< rendezvous buffer advertisement (payload: AdvertBody)
  kFin = 3,       ///< rendezvous completion notification (payload: FinBody)
};

/// EagerHeader::flags bit: `crc` holds a CRC32C of the payload. Stamped only
/// when the fabric has in-flight faults armed (end-to-end integrity check on
/// top of the wire-level frame CRC); zero-cost otherwise.
inline constexpr std::uint16_t kEagerFlagCrc = 1;

/// 24-byte header preceding every eager-ring message.
struct EagerHeader {
  std::uint64_t id = 0;     ///< remote completion id (kUser) / unused
  std::uint32_t size = 0;   ///< payload bytes (excludes header & padding)
  std::uint32_t crc = 0;    ///< CRC32C of the payload (kEagerFlagCrc)
  std::uint16_t kind = 0;   ///< MsgKind
  std::uint16_t flags = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(EagerHeader) == 24);

/// Rendezvous advertisement payload.
struct AdvertBody {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  std::uint64_t rkey = 0;
  std::uint64_t tag = 0;
  std::uint64_t request = 0;  ///< advertiser-side request id, echoed in FIN
  std::uint64_t get_side = 0; ///< 1: advertiser is the data *source* (os_get)
};
static_assert(sizeof(AdvertBody) == 48);

/// Rendezvous FIN payload.
struct FinBody {
  std::uint64_t tag = 0;
  std::uint64_t request = 0;  ///< the advertiser's request id to complete
};
static_assert(sizeof(FinBody) == 16);

/// 16-byte completion-ledger entry (written remotely, read on probe).
///
/// `meta` layout (spare bits double as the telemetry timestamp carrier, so
/// the entry stays 16 bytes and wire byte counts never change):
///   bit 0   — 1 = produced by a GWC (the entry's buffer was *read*)
///   bit 1   — 1 = chained onto a direct put's payload (remote put delivery)
///   bits 2+ — originating op's post vtime in ns (62 bits ≈ 146 years)
struct LedgerEntry {
  std::uint64_t id = 0;
  std::uint64_t meta = 0;
};
static_assert(sizeof(LedgerEntry) == 16);

inline std::uint64_t ledger_meta_pack(bool from_get, bool put_chained,
                                      std::uint64_t post_vtime) noexcept {
  return (from_get ? 1u : 0u) | (put_chained ? 2u : 0u) | (post_vtime << 2);
}
inline bool ledger_meta_from_get(std::uint64_t meta) noexcept {
  return (meta & 1u) != 0;
}
inline bool ledger_meta_put_chained(std::uint64_t meta) noexcept {
  return (meta & 2u) != 0;
}
inline std::uint64_t ledger_meta_vtime(std::uint64_t meta) noexcept {
  return meta >> 2;
}

/// Round a payload size up to 8-byte alignment inside the ring.
inline std::size_t ring_pad8(std::size_t n) noexcept { return (n + 7u) & ~std::size_t{7}; }

/// Total ring footprint of a message with `payload` bytes.
inline std::size_t ring_footprint(std::size_t payload) noexcept {
  return sizeof(EagerHeader) + ring_pad8(payload);
}

}  // namespace photon::core
