// Completion events surfaced by probing.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/types.hpp"

namespace photon::core {

/// Initiator-side completion: one of this rank's puts/gets/sends finished
/// (its source buffer is reusable / its destination buffer is filled).
struct LocalComplete {
  std::uint64_t id = 0;   ///< the local_id passed at post time
  fabric::Rank peer = 0;
};

/// Target-side event: a peer's operation delivered a remote completion id
/// here. Eager messages carry their payload (copied out of the ring).
struct ProbeEvent {
  std::uint64_t id = 0;   ///< the remote_id chosen by the initiator
  fabric::Rank peer = 0;  ///< initiating rank
  bool from_get = false;  ///< true when raised by a get_with_completion
  std::vector<std::byte> payload;  ///< eager data; empty for direct PWC/GWC
};

/// Handle for rendezvous requests (test/wait).
using RequestId = std::uint64_t;
inline constexpr RequestId kInvalidRequest = 0;

/// A peer's advertised rendezvous buffer, as seen by the transfer initiator.
struct RendezvousBuffer {
  fabric::Rank peer = 0;
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  fabric::MrKey rkey = fabric::kInvalidKey;
  std::uint64_t tag = 0;
  std::uint64_t remote_request = 0;  ///< advertiser's request id (for FIN)
  bool get_side = false;             ///< advertiser is the data source
};

}  // namespace photon::core
