// Buffer descriptors: the {addr, rkey, size} triples Photon exchanges out of
// band so peers can address each other's registered memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fabric/types.hpp"

namespace photon::core {

/// A remotely accessible registered buffer, as published to peers.
/// Trivially copyable so it can ride the bootstrap exchange or the wire.
struct BufferDescriptor {
  std::uint64_t addr = 0;
  std::size_t size = 0;
  fabric::MrKey rkey = fabric::kInvalidKey;
  fabric::MrKey lkey = fabric::kInvalidKey;  ///< meaningful to the owner only

  bool valid() const noexcept { return rkey != fabric::kInvalidKey; }
};

/// A window into a remote registered buffer.
struct RemoteSlice {
  std::uint64_t addr = 0;
  std::size_t len = 0;
  fabric::MrKey rkey = fabric::kInvalidKey;
};

/// A window into a locally registered buffer.
struct LocalSlice {
  const void* addr = nullptr;
  std::size_t len = 0;
  fabric::MrKey lkey = fabric::kInvalidKey;
};

struct LocalMutSlice {
  void* addr = nullptr;
  std::size_t len = 0;
  fabric::MrKey lkey = fabric::kInvalidKey;
};

/// Slice helpers (offset/len are the caller's responsibility to keep in
/// range; the fabric validates on use).
inline RemoteSlice slice(const BufferDescriptor& d, std::size_t offset,
                         std::size_t len) noexcept {
  return RemoteSlice{d.addr + offset, len, d.rkey};
}

inline LocalSlice local_slice(const BufferDescriptor& d, std::size_t offset,
                              std::size_t len) noexcept {
  return LocalSlice{reinterpret_cast<const void*>(d.addr + offset), len, d.lkey};
}

inline LocalMutSlice local_mut_slice(const BufferDescriptor& d, std::size_t offset,
                                     std::size_t len) noexcept {
  return LocalMutSlice{reinterpret_cast<void*>(d.addr + offset), len, d.lkey};
}

}  // namespace photon::core
