// Photon middleware configuration.
#pragma once

#include <cstddef>
#include <cstdint>

namespace photon::telemetry {
class MetricsRegistry;
}

namespace photon::core {

struct Config {
  /// Per-peer eager ring capacity (bytes) hosted at each receiver.
  std::size_t eager_ring_bytes = 1u << 20;

  /// Largest payload allowed on the eager (send_with_completion) path.
  std::size_t eager_threshold = 8192;

  /// Per-peer completion-ledger slots (bounds outstanding remote-id signals).
  std::size_t ledger_entries = 512;

  /// Return eager-ring credits once this fraction of the ring is consumed
  /// since the last return (1/denominator; 4 = quarter ring).
  std::size_t credit_return_denominator = 4;

  /// CPU cost knobs charged to the virtual clock by the middleware.
  double eager_copy_per_byte_ns = 0.05;  ///< staging copy-in and copy-out

  /// Sanity limits.
  std::size_t max_probe_batch = 64;  ///< completions drained per progress()

  /// Metrics sink for per-op latency histograms and stat folds. nullptr
  /// selects telemetry::MetricsRegistry::process(). Recording only happens
  /// while the chosen registry is enabled (and only in PHOTON_TELEMETRY=ON
  /// builds); either way telemetry never perturbs protocol behavior or
  /// virtual time.
  telemetry::MetricsRegistry* metrics = nullptr;
};

}  // namespace photon::core
