// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over payload bytes.
//
// This is the checksum carried in wire-frame and message headers by the
// reliable-delivery layer: the NIC stamps it at post time and the target
// verifies it before any memory is touched, so a payload corrupted in
// flight is rejected (and NACKed for retransmission) rather than applied.
// CRC32C detects all single- and double-bit errors and all burst errors up
// to 32 bits, which covers the fault injector's bit-flip corruption model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace photon::resilience {

/// CRC32C of `len` bytes at `data`. `seed` allows incremental computation:
/// crc32c(b, n1+n2) == crc32c(b+n1, n2, crc32c(b, n1)).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0) noexcept;

}  // namespace photon::resilience
