// Retransmission policy: exponential backoff with deterministic jitter and a
// per-op virtual-time deadline.
//
// All times are in virtual nanoseconds on the fabric's LogGP clock, so a
// retry storm costs simulated time (and shows up in latency figures), never
// wall-clock time. Jitter is a pure function of (seed, stream key, attempt),
// which keeps lossy runs bit-reproducible while still decorrelating the
// retransmit schedules of concurrent streams.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace photon::resilience {

struct RetryPolicy {
  /// Total transmission attempts per op, including the first (>= 1).
  std::uint32_t max_attempts = 8;
  /// Backoff before the first retransmission (doubles each attempt).
  std::uint64_t rto_ns = 10'000;
  /// Backoff ceiling.
  std::uint64_t max_backoff_ns = 1'000'000;
  /// Per-op virtual-time budget measured from the first attempt; when it
  /// expires the op completes with Status::Timeout.
  std::uint64_t deadline_ns = 100'000'000;
  /// Seed folded into the jitter hash (shared by all streams of one NIC).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;

  /// Virtual-time wait before retransmission number `attempt` (1 = first
  /// retransmit) on the stream identified by `key`: doubled rto capped at
  /// max_backoff_ns, plus deterministic jitter in [0, backoff/4].
  std::uint64_t backoff_ns(std::uint32_t attempt,
                           std::uint64_t key) const noexcept {
    std::uint64_t b = rto_ns;
    for (std::uint32_t i = 1; i < attempt && b < max_backoff_ns; ++i) b <<= 1;
    if (b > max_backoff_ns) b = max_backoff_ns;
    util::SplitMix64 h(jitter_seed ^ key ^
                       (static_cast<std::uint64_t>(attempt) << 48));
    const std::uint64_t jitter_span = b / 4 + 1;
    return b + h.next() % jitter_span;
  }
};

}  // namespace photon::resilience
