// Per-peer health tracking: the Up -> Suspect -> Down -> Probing ->
// Recovering -> Up lattice.
//
// Each NIC owns one PeerHealth table. Transitions are driven from three
// sources:
//   * observation — reliable delivery records a failure whenever an op
//     exhausts its retry/deadline budget toward a peer, and a success on
//     every acked transmission (which clears Suspect back to Up);
//   * notification — Fabric::kill() models a fabric-manager peer-death
//     event by forcing Down on every NIC at once;
//   * recovery — the NIC's reconnect/fence protocol (Nic::try_recover)
//     moves Down -> Probing (begin_probe) while it waits for the link to
//     reopen, Probing -> Recovering (mark_recovering) while the three-way
//     fence handshake is in flight, and Recovering -> Up
//     (complete_recovery) once both sides agree on a new, strictly larger
//     per-peer epoch. A failure in any recovery state falls back to Down.
//
// Down is *latched against observations*: no interleaving of
// record_success/record_failure/force_down can resurrect a peer — only the
// explicit begin_probe/mark_recovering/complete_recovery fence path does,
// so every return to Up is paired with an epoch bump that lets both ends
// discard state from the dead connection.
//
// Generation counters are cheap edge-detectors so upper layers re-scan
// peer states only when something moved:
//   * down_generation() — bumped once per transition into Down;
//   * up_generation()   — bumped once per fenced recovery back to Up
//     (the mirror edge: msg/parcel transports re-open per-peer channels
//     on it);
//   * epoch(peer)       — monotonically increasing per-peer connection
//     incarnation; frames and completions stamped with an older epoch are
//     stale and must be dropped, never delivered.
//
// The table is written by the owning rank's thread (and by whoever calls
// force_down) and read from any thread, so all fields are relaxed/acquire
// atomics; the recovery transitions use CAS so concurrent probers cannot
// both win.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace photon::resilience {

enum class PeerState : std::uint8_t {
  kUp = 0,
  kSuspect = 1,
  kDown = 2,
  kProbing = 3,     ///< Down peer under active probe (awaiting link reopen)
  kRecovering = 4,  ///< fence handshake in flight
};

inline const char* peer_state_name(PeerState s) noexcept {
  switch (s) {
    case PeerState::kUp: return "Up";
    case PeerState::kSuspect: return "Suspect";
    case PeerState::kDown: return "Down";
    case PeerState::kProbing: return "Probing";
    case PeerState::kRecovering: return "Recovering";
  }
  return "Unknown";
}

struct PeerHealthConfig {
  std::uint32_t suspect_after = 1;  ///< consecutive failures -> Suspect
  std::uint32_t down_after = 3;     ///< consecutive failures -> Down
};

class PeerHealth {
 public:
  explicit PeerHealth(std::uint32_t npeers, PeerHealthConfig cfg = {})
      : cfg_(cfg), slots_(npeers) {}

  PeerHealth(const PeerHealth&) = delete;
  PeerHealth& operator=(const PeerHealth&) = delete;

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  PeerState state(std::uint32_t peer) const noexcept {
    return static_cast<PeerState>(
        slots_[peer].state.load(std::memory_order_acquire));
  }

  bool down(std::uint32_t peer) const noexcept {
    return state(peer) == PeerState::kDown;
  }

  /// True when posts toward the peer may proceed (Up or Suspect). Down,
  /// Probing, and Recovering all fast-fail new posts.
  bool usable(std::uint32_t peer) const noexcept {
    const PeerState s = state(peer);
    return s == PeerState::kUp || s == PeerState::kSuspect;
  }

  /// Connection incarnation toward this peer. Bumped only by
  /// complete_recovery; anything stamped with an older epoch is stale.
  std::uint32_t epoch(std::uint32_t peer) const noexcept {
    return slots_[peer].epoch.load(std::memory_order_acquire);
  }

  /// An acked transmission: clears the failure streak; Suspect returns to
  /// Up. Down/Probing/Recovering are unaffected (latched against
  /// observations — only the fence path resurrects).
  void record_success(std::uint32_t peer) noexcept {
    Slot& s = slots_[peer];
    const auto cur = s.state.load(std::memory_order_relaxed);
    if (cur != static_cast<std::uint8_t>(PeerState::kUp) &&
        cur != static_cast<std::uint8_t>(PeerState::kSuspect))
      return;
    s.fails.store(0, std::memory_order_relaxed);
    s.state.store(static_cast<std::uint8_t>(PeerState::kUp),
                  std::memory_order_release);
  }

  /// A retry/deadline budget exhausted toward this peer. Returns the state
  /// after accounting for the failure. In Probing/Recovering a failure
  /// aborts the recovery attempt straight back to Down.
  PeerState record_failure(std::uint32_t peer) noexcept {
    Slot& s = slots_[peer];
    const auto cur = s.state.load(std::memory_order_relaxed);
    if (cur == static_cast<std::uint8_t>(PeerState::kDown))
      return PeerState::kDown;
    if (cur == static_cast<std::uint8_t>(PeerState::kProbing) ||
        cur == static_cast<std::uint8_t>(PeerState::kRecovering)) {
      mark_down(s);
      return PeerState::kDown;
    }
    const std::uint32_t fails =
        s.fails.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fails >= cfg_.down_after) {
      mark_down(s);
      return PeerState::kDown;
    }
    if (fails >= cfg_.suspect_after) {
      s.state.store(static_cast<std::uint8_t>(PeerState::kSuspect),
                    std::memory_order_release);
      return PeerState::kSuspect;
    }
    return PeerState::kUp;
  }

  /// Scripted/fabric-notified peer death: transition straight to Down.
  /// Also aborts an in-flight probe/recovery (any state -> Down).
  void force_down(std::uint32_t peer) noexcept { mark_down(slots_[peer]); }

  // ---- recovery (fence) transitions -----------------------------------------
  // Exactly one path resurrects a Down peer:
  //   begin_probe -> mark_recovering -> complete_recovery(new_epoch)
  // Each step is a CAS from the expected predecessor state, so concurrent
  // probers serialize and a force_down anywhere in between aborts cleanly.

  /// Down -> Probing. Returns false if the peer was not Down (already Up,
  /// or another prober won the race).
  bool begin_probe(std::uint32_t peer) noexcept {
    auto expected = static_cast<std::uint8_t>(PeerState::kDown);
    return slots_[peer].state.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(PeerState::kProbing),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Probing -> Recovering (the fence handshake is starting).
  bool mark_recovering(std::uint32_t peer) noexcept {
    auto expected = static_cast<std::uint8_t>(PeerState::kProbing);
    return slots_[peer].state.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(PeerState::kRecovering),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Recovering -> Up with a strictly larger epoch. The epoch is published
  /// before the state flip so any reader that observes Up also observes the
  /// new epoch. Bumps up_generation once per successful fence.
  bool complete_recovery(std::uint32_t peer, std::uint32_t new_epoch) noexcept {
    Slot& s = slots_[peer];
    if (new_epoch <= s.epoch.load(std::memory_order_relaxed)) return false;
    s.epoch.store(new_epoch, std::memory_order_release);
    s.fails.store(0, std::memory_order_relaxed);
    auto expected = static_cast<std::uint8_t>(PeerState::kRecovering);
    if (!s.state.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(PeerState::kUp),
            std::memory_order_acq_rel, std::memory_order_acquire))
      return false;  // force_down raced the fence; stay Down
    up_gen_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  /// Bumped once per transition into Down; lets upper layers detect "some
  /// peer just died" without scanning the table on every progress call.
  std::uint64_t down_generation() const noexcept {
    return down_gen_.load(std::memory_order_acquire);
  }

  /// Bumped once per fenced recovery back to Up — the mirror edge of
  /// down_generation; transports re-open per-peer channels when it moves.
  std::uint64_t up_generation() const noexcept {
    return up_gen_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint8_t> state{0};
    std::atomic<std::uint32_t> fails{0};
    std::atomic<std::uint32_t> epoch{0};
  };

  void mark_down(Slot& s) noexcept {
    const auto prev = s.state.exchange(
        static_cast<std::uint8_t>(PeerState::kDown), std::memory_order_acq_rel);
    if (prev != static_cast<std::uint8_t>(PeerState::kDown))
      down_gen_.fetch_add(1, std::memory_order_acq_rel);
  }

  PeerHealthConfig cfg_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> down_gen_{0};
  std::atomic<std::uint64_t> up_gen_{0};
};

}  // namespace photon::resilience
