// Per-peer health tracking: Up -> Suspect -> Down.
//
// Each NIC owns one PeerHealth table. Transitions are driven from two
// sources:
//   * observation — reliable delivery records a failure whenever an op
//     exhausts its retry/deadline budget toward a peer, and a success on
//     every acked transmission (which clears Suspect back to Up);
//   * notification — Fabric::kill() models a fabric-manager peer-death
//     event by forcing Down on every NIC at once.
// Down is latched: recovering a dead peer would need a reconnect/fence
// protocol the middleware does not implement, so once Down, new posts
// fast-fail with Status::PeerUnreachable and pending work is reclaimed.
//
// The table is written by the owning rank's thread (and by whoever calls
// force_down) and read from any thread, so all fields are relaxed/acquire
// atomics. down_generation() is a cheap edge-detector: upper layers re-scan
// peer states only when it moves.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace photon::resilience {

enum class PeerState : std::uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

inline const char* peer_state_name(PeerState s) noexcept {
  switch (s) {
    case PeerState::kUp: return "Up";
    case PeerState::kSuspect: return "Suspect";
    case PeerState::kDown: return "Down";
  }
  return "Unknown";
}

struct PeerHealthConfig {
  std::uint32_t suspect_after = 1;  ///< consecutive failures -> Suspect
  std::uint32_t down_after = 3;     ///< consecutive failures -> Down
};

class PeerHealth {
 public:
  explicit PeerHealth(std::uint32_t npeers, PeerHealthConfig cfg = {})
      : cfg_(cfg), slots_(npeers) {}

  PeerHealth(const PeerHealth&) = delete;
  PeerHealth& operator=(const PeerHealth&) = delete;

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  PeerState state(std::uint32_t peer) const noexcept {
    return static_cast<PeerState>(
        slots_[peer].state.load(std::memory_order_acquire));
  }

  bool down(std::uint32_t peer) const noexcept {
    return state(peer) == PeerState::kDown;
  }

  /// An acked transmission: clears the failure streak; Suspect returns to
  /// Up. Down stays Down (latched).
  void record_success(std::uint32_t peer) noexcept {
    Slot& s = slots_[peer];
    if (s.state.load(std::memory_order_relaxed) ==
        static_cast<std::uint8_t>(PeerState::kDown))
      return;
    s.fails.store(0, std::memory_order_relaxed);
    s.state.store(static_cast<std::uint8_t>(PeerState::kUp),
                  std::memory_order_release);
  }

  /// A retry/deadline budget exhausted toward this peer. Returns the state
  /// after accounting for the failure.
  PeerState record_failure(std::uint32_t peer) noexcept {
    Slot& s = slots_[peer];
    if (s.state.load(std::memory_order_relaxed) ==
        static_cast<std::uint8_t>(PeerState::kDown))
      return PeerState::kDown;
    const std::uint32_t fails =
        s.fails.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fails >= cfg_.down_after) {
      mark_down(s);
      return PeerState::kDown;
    }
    if (fails >= cfg_.suspect_after) {
      s.state.store(static_cast<std::uint8_t>(PeerState::kSuspect),
                    std::memory_order_release);
      return PeerState::kSuspect;
    }
    return PeerState::kUp;
  }

  /// Scripted/fabric-notified peer death: transition straight to Down.
  void force_down(std::uint32_t peer) noexcept { mark_down(slots_[peer]); }

  /// Bumped once per transition into Down; lets upper layers detect "some
  /// peer just died" without scanning the table on every progress call.
  std::uint64_t down_generation() const noexcept {
    return down_gen_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint8_t> state{0};
    std::atomic<std::uint32_t> fails{0};
  };

  void mark_down(Slot& s) noexcept {
    const auto prev = s.state.exchange(
        static_cast<std::uint8_t>(PeerState::kDown), std::memory_order_acq_rel);
    if (prev != static_cast<std::uint8_t>(PeerState::kDown))
      down_gen_.fetch_add(1, std::memory_order_acq_rel);
  }

  PeerHealthConfig cfg_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> down_gen_{0};
};

}  // namespace photon::resilience
