#include "resilience/crc32c.hpp"

#include <array>

namespace photon::resilience {

namespace {

// Reflected-table driver for the Castagnoli polynomial. Table generated once
// at first use; slice-by-4 keeps the soak-mode overhead modest without
// needing SSE4.2 intrinsics (the simulator must build on any host).
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Crc32cTables() noexcept {
    constexpr std::uint32_t kPolyReflected = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Crc32cTables& tables() noexcept {
  static const Crc32cTables tbl;
  return tbl;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed) noexcept {
  const auto& tbl = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tbl.t[3][crc & 0xffu] ^ tbl.t[2][(crc >> 8) & 0xffu] ^
          tbl.t[1][(crc >> 16) & 0xffu] ^ tbl.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) crc = (crc >> 8) ^ tbl.t[0][(crc ^ *p++) & 0xffu];
  return ~crc;
}

}  // namespace photon::resilience
