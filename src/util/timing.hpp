// Wall-clock helpers. Virtual (simulated) time lives in fabric/vclock.hpp;
// these are for harness-level timeouts and coarse reporting only.
#pragma once

#include <chrono>
#include <cstdint>

namespace photon::util {

/// Monotonic wall-clock nanoseconds.
std::uint64_t now_ns() noexcept;

/// Simple scope timer over wall time.
class WallTimer {
 public:
  WallTimer() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

/// Deadline helper for bounded waits in tests.
class Deadline {
 public:
  explicit Deadline(std::uint64_t budget_ns) : end_(now_ns() + budget_ns) {}
  bool expired() const noexcept { return now_ns() >= end_; }

 private:
  std::uint64_t end_;
};

}  // namespace photon::util
