// Small deterministic RNGs for workload generation and property tests.
// (std::mt19937_64 is fine too, but these are cheap, seedable, and make the
// benches' access patterns reproducible across standard libraries.)
#pragma once

#include <cstdint>

namespace photon::util {

/// splitmix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — main workload generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace photon::util
