#include "util/log.hpp"

#include <atomic>

namespace photon::log {

namespace {
std::atomic<Level> g_threshold{Level::Warn};
std::mutex g_mutex;
}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level lvl) noexcept {
  g_threshold.store(lvl, std::memory_order_relaxed);
}

void emit(Level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace photon::log
