#include "util/trace.hpp"

#include <sstream>

#include "util/json.hpp"

namespace photon::util {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kPut: return "put";
    case TraceKind::kEagerSend: return "eager";
    case TraceKind::kGet: return "get";
    case TraceKind::kSignal: return "signal";
    case TraceKind::kLocalDone: return "local_done";
    case TraceKind::kRemoteEvent: return "remote_event";
    case TraceKind::kStall: return "stall";
  }
  return "unknown";
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os << "vtime_ns,kind,peer,bytes,id\n";
  for (const auto& e : events_) {
    os << e.vtime << ',' << trace_kind_name(e.kind) << ',' << e.peer << ','
       << e.bytes << ',' << e.id << '\n';
  }
  return os.str();
}

std::string Tracer::to_chrome_json(std::uint32_t rank) const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  for (const auto& e : events_) {
    w.begin_object();
    w.key("name").value(trace_kind_name(e.kind));
    w.key("ph").value("i");
    w.key("s").value("t");
    w.key("pid").value(0);
    w.key("tid").value(rank);
    w.key("ts").value(static_cast<double>(e.vtime) / 1000.0);
    w.key("args").begin_object();
    w.key("peer").value(e.peer);
    w.key("bytes").value(e.bytes);
    w.key("id").value(e.id);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace photon::util
