#include "util/trace.hpp"

#include <sstream>

namespace photon::util {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kPut: return "put";
    case TraceKind::kEagerSend: return "eager";
    case TraceKind::kGet: return "get";
    case TraceKind::kSignal: return "signal";
    case TraceKind::kLocalDone: return "local_done";
    case TraceKind::kRemoteEvent: return "remote_event";
    case TraceKind::kStall: return "stall";
  }
  return "unknown";
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os << "vtime_ns,kind,peer,bytes,id\n";
  for (const auto& e : events_) {
    os << e.vtime << ',' << trace_kind_name(e.kind) << ',' << e.peer << ','
       << e.bytes << ',' << e.id << '\n';
  }
  return os.str();
}

}  // namespace photon::util
