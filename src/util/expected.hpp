// Tiny Status-or-value result type (std::expected is C++23; we target C++20).
#pragma once

#include <cassert>
#include <utility>

#include "util/status.hpp"

namespace photon::util {

template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status s) : status_(s) { assert(s != Status::Ok); }          // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return status_ == Status::Ok; }
  Status status() const noexcept { return status_; }

  T& value() & {
    assert(ok());
    return value_;
  }
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  /// value() or a fallback when not ok.
  T value_or(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

}  // namespace photon::util
