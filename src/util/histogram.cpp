#include "util/histogram.hpp"

#include <bit>
#include <sstream>

namespace photon::util {

int Histogram::bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  return std::bit_width(v);  // 1..64
}

void Histogram::add(std::uint64_t value) noexcept {
  int b = bucket_of(value);
  if (b >= kBuckets) b = kBuckets - 1;
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[static_cast<std::size_t>(b)];
    if (seen > rank) {
      // Upper bound of bucket b is 2^b - 1 (bucket 0 holds only value 0).
      return b == 0 ? 0 : ((b >= 64) ? ~0ULL : ((1ULL << b) - 1));
    }
  }
  return ~0ULL;
}

void Histogram::merge(const Histogram& o) noexcept {
  for (int b = 0; b < kBuckets; ++b)
    counts_[static_cast<std::size_t>(b)] += o.counts_[static_cast<std::size_t>(b)];
  total_ += o.total_;
}

void Histogram::reset() noexcept {
  counts_.fill(0);
  total_ = 0;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (int b = 0; b < kBuckets; ++b) {
    const auto c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
    const std::uint64_t hi = b == 0 ? 0 : ((1ULL << b) - 1);
    os << '[' << lo << ", " << hi << "]: " << c << '\n';
  }
  return os.str();
}

}  // namespace photon::util
