#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace photon::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  pre_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  pre_value();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  pre_value();
  out_ += json;
  return *this;
}

}  // namespace photon::util
