// Online (Welford) summary statistics used by benches and the fabric's
// counters to summarize per-op costs without storing samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace photon::util {

class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const double total = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace photon::util
