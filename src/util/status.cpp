#include "util/status.hpp"

namespace photon {

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "Ok";
    case Status::Retry: return "Retry";
    case Status::QueueFull: return "QueueFull";
    case Status::NotFound: return "NotFound";
    case Status::InvalidKey: return "InvalidKey";
    case Status::OutOfBounds: return "OutOfBounds";
    case Status::AccessDenied: return "AccessDenied";
    case Status::Misaligned: return "Misaligned";
    case Status::BadArgument: return "BadArgument";
    case Status::Truncated: return "Truncated";
    case Status::Disconnected: return "Disconnected";
    case Status::ProtocolError: return "ProtocolError";
    case Status::FaultInjected: return "FaultInjected";
    case Status::Timeout: return "Timeout";
    case Status::PeerUnreachable: return "PeerUnreachable";
  }
  return "UnknownStatus";
}

}  // namespace photon
