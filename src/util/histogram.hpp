// Log2-bucketed latency histogram with percentile estimation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace photon::util {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value) noexcept;
  std::uint64_t count() const noexcept { return total_; }

  /// Approximate percentile (p in [0,100]); returns the upper bound of the
  /// bucket containing the requested rank. 0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  std::uint64_t bucket_count(int b) const noexcept { return counts_[static_cast<std::size_t>(b)]; }

  void merge(const Histogram& o) noexcept;
  void reset() noexcept;

  /// Multi-line human-readable dump (non-empty buckets only).
  std::string to_string() const;

 private:
  static int bucket_of(std::uint64_t v) noexcept;
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace photon::util
