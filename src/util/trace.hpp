// Virtual-time event tracer.
//
// A per-rank, single-threaded record of middleware activity stamped with
// the rank's virtual clock — the raw material for the timelines a
// performance paper plots. Disabled tracers cost one branch per hook.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace photon::util {

enum class TraceKind : std::uint8_t {
  kPut,          // direct PWC posted
  kEagerSend,    // eager message posted
  kGet,          // GWC posted
  kSignal,       // ledger doorbell posted
  kLocalDone,    // initiator-side completion consumed
  kRemoteEvent,  // target-side event consumed
  kStall,        // back-pressure (Retry) observed
};

const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  std::uint64_t vtime = 0;
  TraceKind kind = TraceKind::kPut;
  std::uint32_t peer = 0;
  std::uint32_t bytes = 0;
  std::uint64_t id = 0;
};

class Tracer {
 public:
  void record(std::uint64_t vtime, TraceKind kind, std::uint32_t peer,
              std::uint32_t bytes, std::uint64_t id) {
    events_.push_back({vtime, kind, peer, bytes, id});
  }

  std::span<const TraceEvent> events() const noexcept { return events_; }
  std::size_t count(TraceKind k) const noexcept {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.kind == k) ++n;
    return n;
  }
  void clear() { events_.clear(); }

  /// CSV: vtime_ns,kind,peer,bytes,id — one line per event.
  std::string to_csv() const;

  /// Chrome about:tracing JSON ({"traceEvents":[...]}) with every event as
  /// an instant on thread `rank`. Names are escaped; an empty trace yields a
  /// valid empty traceEvents array. For span derivation across ranks use
  /// telemetry::ChromeTrace::add_tracer instead.
  std::string to_chrome_json(std::uint32_t rank = 0) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace photon::util
