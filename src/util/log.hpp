// Minimal leveled, thread-safe logger.
//
// Logging in the data path is compiled in but disabled by default; the
// benches and tests raise the level explicitly when diagnosing.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace photon::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Global threshold; messages below it are dropped.
Level threshold() noexcept;
void set_threshold(Level lvl) noexcept;

/// Emit one line (already formatted) at the given level.
void emit(Level lvl, const std::string& line);

namespace detail {
template <typename... Args>
void logf(Level lvl, const char* tag, Args&&... args) {
  if (lvl < threshold()) return;
  std::ostringstream os;
  os << '[' << tag << "] ";
  (os << ... << args);
  emit(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void trace(Args&&... a) { detail::logf(Level::Trace, "trace", std::forward<Args>(a)...); }
template <typename... Args>
void debug(Args&&... a) { detail::logf(Level::Debug, "debug", std::forward<Args>(a)...); }
template <typename... Args>
void info(Args&&... a) { detail::logf(Level::Info, "info ", std::forward<Args>(a)...); }
template <typename... Args>
void warn(Args&&... a) { detail::logf(Level::Warn, "warn ", std::forward<Args>(a)...); }
template <typename... Args>
void error(Args&&... a) { detail::logf(Level::Error, "error", std::forward<Args>(a)...); }

}  // namespace photon::log
