// Bounded multi-producer/multi-consumer queue.
//
// Mutex + condvar rather than a lock-free design: this host is effectively
// single-core, so blocking (which yields the core) beats spinning, and the
// queue is never on the modeled critical path — costs on that path are
// charged in virtual time by the fabric's wire model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace photon::util {

template <typename T>
class SyncQueue {
 public:
  explicit SyncQueue(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  /// Non-blocking push; false when full.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push (waits for space).
  void push(T value) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Blocking pop; returns nullopt only once the queue is closed and empty.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Wake all waiters; subsequent pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace photon::util
