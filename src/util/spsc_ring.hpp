// Fixed-capacity single-producer/single-consumer ring buffer.
//
// Used where one rank produces and exactly one consumes (per-peer parcel
// staging); capacity must be a power of two.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace photon::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2) : slots_(capacity_pow2) {
    assert(capacity_pow2 >= 2 && (capacity_pow2 & (capacity_pow2 - 1)) == 0 &&
           "capacity must be a power of two");
  }

  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) return false;
    slots_[head & (slots_.size() - 1)] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> out{std::move(slots_[tail & (slots_.size() - 1)])};
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return slots_.size(); }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace photon::util
