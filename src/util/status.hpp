// Typed error codes shared across the whole stack.
//
// The fabric and the middleware never throw for expected runtime conditions
// (full queues, flow-control back-pressure, invalid remote keys injected by
// fault tests); they return a Status. Exceptions are reserved for programmer
// errors (violated preconditions) and unrecoverable setup failures.
#pragma once

#include <string_view>

namespace photon {

enum class Status : int {
  Ok = 0,
  // Transient conditions the caller is expected to retry after progress.
  Retry,         // resource temporarily exhausted (credits, ledger slots)
  QueueFull,     // send-queue or completion-queue depth exceeded
  NotFound,      // probe/test found nothing
  // Hard errors.
  InvalidKey,    // rkey/lkey does not name a registered region
  OutOfBounds,   // access outside the registered region
  AccessDenied,  // region registered without the required access bits
  Misaligned,    // atomic target not naturally aligned
  BadArgument,   // malformed request (zero length where forbidden, bad rank)
  Truncated,     // receive buffer smaller than matched message
  Disconnected,  // peer NIC has been torn down
  ProtocolError, // middleware-internal invariant violated by wire data
  FaultInjected, // failure produced by the fault-injection hooks
  Timeout,         // retry/deadline budget exhausted by reliable delivery
  PeerUnreachable, // peer declared Down by health tracking; op not attempted
};

/// Number of Status enumerators (codes are contiguous from 0). Keep in sync
/// with the enum above; the util_test round-trip test guards the boundary.
inline constexpr int kStatusCount = 15;

/// Human-readable name for a status code.
std::string_view status_name(Status s) noexcept;

/// True for Ok.
constexpr bool ok(Status s) noexcept { return s == Status::Ok; }

/// True for conditions that a progress+retry loop is expected to clear.
constexpr bool transient(Status s) noexcept {
  return s == Status::Retry || s == Status::QueueFull || s == Status::NotFound;
}

}  // namespace photon
