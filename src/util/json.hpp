// Minimal JSON emission helpers shared by the telemetry snapshot exporter,
// the Chrome-trace writer, and the bench BENCH_*.json reports.
//
// This is a *writer* only — no parsing, no DOM. JsonWriter produces compact,
// well-formed JSON with correct comma placement (safe for empty objects and
// arrays) and full string escaping, which is all the repo needs and keeps the
// exporters free of hand-rolled stringstream concatenation bugs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace photon::util {

/// Escape a string for inclusion inside JSON double quotes (quotes are NOT
/// added). Handles quote, backslash, and all control characters (\uXXXX).
std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma handling.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("bench_latency");
///   w.key("metrics").begin_object(); ... w.end_object();
///   w.end_object();
///   std::string out = w.str();
///
/// Scalars: strings (escaped), bool, integers, doubles (finite doubles are
/// printed with enough digits to round-trip; NaN/Inf are emitted as null,
/// which keeps the output well-formed JSON).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double d);
  JsonWriter& null();

  /// Verbatim pre-rendered JSON fragment used as one value (caller
  /// guarantees validity — e.g. splicing one writer's output into another).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const noexcept { return out_; }

 private:
  void pre_value();
  std::string out_;
  /// One flag per open container: true once it holds at least one element.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

}  // namespace photon::util
